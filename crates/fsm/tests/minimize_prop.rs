//! Property tests for Mealy state minimization and synthesis over random
//! deterministic complete machines.

use proptest::prelude::*;
use tauhls_fsm::{
    equivalent_behaviour, minimize_states, synthesize, verify_synthesis, Encoding, Fsm,
};
use tauhls_logic::{AreaModel, Expr};

/// Builds a random deterministic, complete Mealy machine: one transition
/// per (state, input minterm).
fn random_fsm(
    num_states: usize,
    num_inputs: usize,
    num_outputs: usize,
    table: &[(usize, u64)], // per (state, minterm): (next, output bitmask)
) -> Fsm {
    let mut fsm = Fsm::new("rand");
    let states: Vec<_> = (0..num_states)
        .map(|i| fsm.add_state(format!("Q{i}")))
        .collect();
    let inputs: Vec<_> = (0..num_inputs)
        .map(|i| fsm.add_input(format!("i{i}")))
        .collect();
    let outputs: Vec<_> = (0..num_outputs)
        .map(|o| fsm.add_output(format!("o{o}")))
        .collect();
    let minterms = 1u64 << num_inputs;
    for s in 0..num_states {
        for m in 0..minterms {
            let (next, outs) = table[s * minterms as usize + m as usize];
            let guard = Expr::all((0..num_inputs).map(|v| {
                let e = Expr::var(inputs[v]);
                if m >> v & 1 == 1 {
                    e
                } else {
                    e.not()
                }
            }));
            let asserted: Vec<usize> = (0..num_outputs)
                .filter(|&o| outs >> o & 1 == 1)
                .map(|o| outputs[o])
                .collect();
            fsm.add_transition(states[s], states[next % num_states], guard, asserted);
        }
    }
    fsm
}

fn fsm_strategy() -> impl Strategy<Value = Fsm> {
    (2usize..7, 1usize..3, 1usize..3).prop_flat_map(|(ns, ni, no)| {
        let cells = ns * (1 << ni);
        (
            Just((ns, ni, no)),
            proptest::collection::vec((0usize..ns, 0u64..1 << no), cells),
        )
            .prop_map(move |((ns, ni, no), table)| random_fsm(ns, ni, no, &table))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimization_preserves_behaviour(fsm in fsm_strategy()) {
        prop_assert!(fsm.check().is_ok());
        let min = minimize_states(&fsm);
        prop_assert!(min.check().is_ok());
        prop_assert!(min.num_states() <= fsm.num_states());
        prop_assert!(equivalent_behaviour(&fsm, &min));
        // Idempotence.
        let min2 = minimize_states(&min);
        prop_assert_eq!(min.num_states(), min2.num_states());
    }

    #[test]
    fn synthesis_correct_for_random_machines(fsm in fsm_strategy()) {
        for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            let syn = synthesize(&fsm, enc, &AreaModel::default());
            prop_assert!(
                verify_synthesis(&fsm, &syn, enc),
                "{:?} encoding diverged", enc
            );
        }
    }

    #[test]
    fn minimized_machine_synthesizes_no_larger_seq(fsm in fsm_strategy()) {
        let min = minimize_states(&fsm);
        let a = synthesize(&fsm, Encoding::Binary, &AreaModel::default());
        let b = synthesize(&min, Encoding::Binary, &AreaModel::default());
        prop_assert!(b.flip_flops() <= a.flip_flops());
        prop_assert!(b.area().sequential <= a.area().sequential);
    }
}
