//! Property tests for Mealy state minimization and synthesis over random
//! deterministic complete machines.

use tauhls_check::{forall, Gen};
use tauhls_fsm::{
    equivalent_behaviour, minimize_states, synthesize, verify_synthesis, Encoding, Fsm,
};
use tauhls_logic::{AreaModel, Expr};

/// Builds a random deterministic, complete Mealy machine: one transition
/// per (state, input minterm).
fn random_fsm(
    num_states: usize,
    num_inputs: usize,
    num_outputs: usize,
    table: &[(usize, u64)], // per (state, minterm): (next, output bitmask)
) -> Fsm {
    let mut fsm = Fsm::new("rand");
    let states: Vec<_> = (0..num_states)
        .map(|i| fsm.add_state(format!("Q{i}")))
        .collect();
    let inputs: Vec<_> = (0..num_inputs)
        .map(|i| fsm.add_input(format!("i{i}")))
        .collect();
    let outputs: Vec<_> = (0..num_outputs)
        .map(|o| fsm.add_output(format!("o{o}")))
        .collect();
    let minterms = 1u64 << num_inputs;
    for s in 0..num_states {
        for m in 0..minterms {
            let (next, outs) = table[s * minterms as usize + m as usize];
            let guard = Expr::all((0..num_inputs).map(|v| {
                let e = Expr::var(inputs[v]);
                if m >> v & 1 == 1 {
                    e
                } else {
                    e.not()
                }
            }));
            let asserted: Vec<usize> = (0..num_outputs)
                .filter(|&o| outs >> o & 1 == 1)
                .map(|o| outputs[o])
                .collect();
            fsm.add_transition(states[s], states[next % num_states], guard, asserted);
        }
    }
    fsm
}

/// Draws a random machine: 2-6 states, 1-2 inputs, 1-2 outputs.
fn draw_fsm(g: &mut Gen) -> Fsm {
    let ns = g.usize(2..7);
    let ni = g.usize(1..3);
    let no = g.usize(1..3);
    let cells = ns * (1 << ni);
    let table = g.vec(cells, |g| (g.usize(0..ns), g.u64(0..1 << no)));
    random_fsm(ns, ni, no, &table)
}

#[test]
fn minimization_preserves_behaviour() {
    forall("minimization_preserves_behaviour", 64, |g| {
        let fsm = draw_fsm(g);
        assert!(fsm.check().is_ok());
        let min = minimize_states(&fsm);
        assert!(min.check().is_ok());
        assert!(min.num_states() <= fsm.num_states());
        assert!(equivalent_behaviour(&fsm, &min));
        // Idempotence.
        let min2 = minimize_states(&min);
        assert_eq!(min.num_states(), min2.num_states());
    });
}

#[test]
fn synthesis_correct_for_random_machines() {
    forall("synthesis_correct_for_random_machines", 64, |g| {
        let fsm = draw_fsm(g);
        for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            let syn = synthesize(&fsm, enc, &AreaModel::default());
            assert!(
                verify_synthesis(&fsm, &syn, enc),
                "{enc:?} encoding diverged"
            );
        }
    });
}

#[test]
fn minimized_machine_synthesizes_no_larger_seq() {
    forall("minimized_machine_synthesizes_no_larger_seq", 64, |g| {
        let fsm = draw_fsm(g);
        let min = minimize_states(&fsm);
        let a = synthesize(&fsm, Encoding::Binary, &AreaModel::default());
        let b = synthesize(&min, Encoding::Binary, &AreaModel::default());
        assert!(b.flip_flops() <= a.flip_flops());
        assert!(b.area().sequential <= a.area().sequential);
    });
}
