//! The controller FSM model: Mealy machines whose transitions are guarded
//! by boolean expressions over named input signals and assert named output
//! signals.

use std::collections::HashMap;
use std::fmt;
use tauhls_logic::Expr;

/// Identifier of a state within an [`Fsm`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st{}", self.0)
    }
}

/// A guarded Mealy transition.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Guard over the FSM's *input* signal indices.
    pub guard: Expr,
    /// Indices (into the FSM's output list) asserted when taken.
    pub outputs: Vec<usize>,
}

/// Errors reported by [`Fsm::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsmError {
    /// Two transitions out of the same state are simultaneously enabled for
    /// some input assignment.
    Nondeterministic(StateId),
    /// No transition out of the state is enabled for some input assignment.
    Incomplete(StateId),
    /// A transition references an unknown state, input, or output index.
    DanglingReference,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::Nondeterministic(s) => {
                write!(f, "overlapping guards out of state {s:?}")
            }
            FsmError::Incomplete(s) => write!(f, "uncovered input assignment in state {s:?}"),
            FsmError::DanglingReference => write!(f, "transition references unknown entity"),
        }
    }
}

impl std::error::Error for FsmError {}

/// A Mealy finite-state machine with named states, inputs, and outputs.
///
/// # Examples
///
/// ```
/// use tauhls_fsm::{Fsm, StateId};
/// use tauhls_logic::Expr;
///
/// let mut fsm = Fsm::new("toggle");
/// let s0 = fsm.add_state("S0");
/// let s1 = fsm.add_state("S1");
/// let go = fsm.add_input("go");
/// let tick = fsm.add_output("tick");
/// fsm.add_transition(s0, s1, Expr::var(go), vec![tick]);
/// fsm.add_transition(s0, s0, Expr::var(go).not(), vec![]);
/// fsm.add_transition(s1, s0, Expr::truth(), vec![]);
/// fsm.check().unwrap();
/// let (next, outs) = fsm.step(s0, |_| true);
/// assert_eq!(next, s1);
/// assert_eq!(outs, vec![tick]);
/// ```
#[derive(Clone, Debug)]
pub struct Fsm {
    name: String,
    states: Vec<String>,
    inputs: Vec<String>,
    outputs: Vec<String>,
    transitions: Vec<Transition>,
    initial: StateId,
}

impl Fsm {
    /// Creates an empty machine; the first added state becomes initial.
    pub fn new(name: impl Into<String>) -> Self {
        Fsm {
            name: name.into(),
            states: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            transitions: Vec::new(),
            initial: StateId(0),
        }
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a named state and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.states.push(name.into());
        StateId(self.states.len() - 1)
    }

    /// Declares an input signal, returning its index. Re-declaring an
    /// existing name returns the existing index.
    pub fn add_input(&mut self, name: impl Into<String>) -> usize {
        let name = name.into();
        if let Some(i) = self.inputs.iter().position(|n| *n == name) {
            return i;
        }
        self.inputs.push(name);
        self.inputs.len() - 1
    }

    /// Declares an output signal, returning its index. Re-declaring an
    /// existing name returns the existing index.
    pub fn add_output(&mut self, name: impl Into<String>) -> usize {
        let name = name.into();
        if let Some(i) = self.outputs.iter().position(|n| *n == name) {
            return i;
        }
        self.outputs.push(name);
        self.outputs.len() - 1
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: StateId, to: StateId, guard: Expr, outputs: Vec<usize>) {
        self.transitions.push(Transition {
            from,
            to,
            guard,
            outputs,
        });
    }

    /// Sets the initial state (defaults to the first added state).
    pub fn set_initial(&mut self, s: StateId) {
        self.initial = s;
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// State name by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.states[s.0]
    }

    /// State name by id, or `None` when `s` does not name a state (e.g. a
    /// corrupted state register after fault injection).
    pub fn state_name_opt(&self, s: StateId) -> Option<&str> {
        self.states.get(s.0).map(String::as_str)
    }

    /// Looks up a state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|n| n == name).map(StateId)
    }

    /// Input signal names.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Output signal names.
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Looks up an input index by name.
    pub fn input_by_name(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|n| n == name)
    }

    /// Looks up an output index by name.
    pub fn output_by_name(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|n| n == name)
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `s`.
    pub fn transitions_from(&self, s: StateId) -> Vec<&Transition> {
        self.transitions.iter().filter(|t| t.from == s).collect()
    }

    /// Validates determinism and completeness by enumerating, per state,
    /// all assignments of the inputs actually read by its guards.
    ///
    /// # Errors
    ///
    /// Returns the first [`FsmError`] found.
    pub fn check(&self) -> Result<(), FsmError> {
        for t in &self.transitions {
            if t.from.0 >= self.states.len() || t.to.0 >= self.states.len() {
                return Err(FsmError::DanglingReference);
            }
            if t.guard.variables().iter().any(|&v| v >= self.inputs.len()) {
                return Err(FsmError::DanglingReference);
            }
            if t.outputs.iter().any(|&o| o >= self.outputs.len()) {
                return Err(FsmError::DanglingReference);
            }
        }
        for s in (0..self.states.len()).map(StateId) {
            let ts = self.transitions_from(s);
            if ts.is_empty() {
                return Err(FsmError::Incomplete(s));
            }
            let mut vars: Vec<usize> = ts.iter().flat_map(|t| t.guard.variables()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert!(vars.len() <= 20, "guard support too wide to enumerate");
            for bits in 0..1u64 << vars.len() {
                let assign = |v: usize| {
                    vars.iter()
                        .position(|&x| x == v)
                        .map(|i| bits >> i & 1 == 1)
                        .unwrap_or(false)
                };
                let enabled = ts.iter().filter(|t| t.guard.evaluate(assign)).count();
                if enabled == 0 {
                    return Err(FsmError::Incomplete(s));
                }
                if enabled > 1 {
                    return Err(FsmError::Nondeterministic(s));
                }
            }
        }
        Ok(())
    }

    /// Executes one synchronous step from `state` under the given input
    /// valuation, returning the next state and the asserted output indices.
    ///
    /// # Panics
    ///
    /// Panics if no transition (or more than one) is enabled — run
    /// [`Fsm::check`] first, or use [`Fsm::try_step`] for a panic-free
    /// variant.
    // The panic is this method's documented contract; everything else
    // routes through `try_step`.
    #[allow(clippy::panic)]
    pub fn step(
        &self,
        state: StateId,
        inputs: impl Fn(usize) -> bool + Copy,
    ) -> (StateId, Vec<usize>) {
        match self.try_step(state, inputs) {
            Ok(r) => r,
            Err(FsmError::Nondeterministic(s)) => panic!(
                "nondeterministic FSM {} in state {}",
                self.name,
                self.state_name(s)
            ),
            Err(FsmError::Incomplete(s)) => {
                panic!("FSM {} stuck in state {}", self.name, self.state_name(s))
            }
            Err(FsmError::DanglingReference) => {
                panic!("FSM {} stepped from unknown state {state:?}", self.name)
            }
        }
    }

    /// Panic-free [`Fsm::step`]: reports a runtime determinism or
    /// completeness violation (possible when the state register is
    /// corrupted by fault injection) instead of panicking.
    ///
    /// # Errors
    ///
    /// [`FsmError::DanglingReference`] when `state` does not name a state,
    /// [`FsmError::Incomplete`] when no transition is enabled, and
    /// [`FsmError::Nondeterministic`] when more than one is.
    pub fn try_step(
        &self,
        state: StateId,
        inputs: impl Fn(usize) -> bool + Copy,
    ) -> Result<(StateId, Vec<usize>), FsmError> {
        if state.0 >= self.states.len() {
            return Err(FsmError::DanglingReference);
        }
        let mut hit: Option<&Transition> = None;
        for t in self.transitions.iter().filter(|t| t.from == state) {
            if t.guard.evaluate(inputs) {
                if hit.is_some() {
                    return Err(FsmError::Nondeterministic(state));
                }
                hit = Some(t);
            }
        }
        let t = hit.ok_or(FsmError::Incomplete(state))?;
        Ok((t.to, t.outputs.clone()))
    }

    /// Renders the machine as Graphviz DOT (states as nodes, transitions
    /// labelled `guard / outputs`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR;");
        let _ = writeln!(s, "  init [shape=point];");
        let _ = writeln!(s, "  init -> s{};", self.initial.0);
        for (i, name) in self.states.iter().enumerate() {
            let _ = writeln!(s, "  s{i} [label=\"{name}\", shape=circle];");
        }
        for t in &self.transitions {
            let outs: Vec<&str> = t
                .outputs
                .iter()
                .map(|&o| self.outputs[o].as_str())
                .collect();
            let _ = writeln!(
                s,
                "  s{} -> s{} [label=\"{} / {}\"];",
                t.from.0,
                t.to.0,
                self.guard_string(&t.guard),
                outs.join(" ")
            );
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// Pretty-prints a guard with input names substituted.
    pub fn guard_string(&self, g: &Expr) -> String {
        fn render(fsm: &Fsm, g: &Expr) -> String {
            match g {
                Expr::Const(b) => if *b { "1" } else { "0" }.to_string(),
                Expr::Var(v) => fsm.inputs[*v].clone(),
                Expr::Not(e) => match e.as_ref() {
                    // Parenthesize conjunctions: (a·b)', not a·b'.
                    // Disjunctions already render inside parentheses.
                    Expr::And(es) if es.len() > 1 => {
                        format!("({})'", render(fsm, e))
                    }
                    _ => format!("{}'", render(fsm, e)),
                },
                Expr::And(es) => es
                    .iter()
                    .map(|e| render(fsm, e))
                    .collect::<Vec<_>>()
                    .join("·"),
                Expr::Or(es) => format!(
                    "({})",
                    es.iter()
                        .map(|e| render(fsm, e))
                        .collect::<Vec<_>>()
                        .join(" + ")
                ),
            }
        }
        render(self, g)
    }

    /// A human-readable transition listing (used by the figure binaries).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "FSM {} — {} states, {} inputs, {} outputs, {} transitions",
            self.name,
            self.states.len(),
            self.inputs.len(),
            self.outputs.len(),
            self.transitions.len()
        );
        for t in &self.transitions {
            let outs: Vec<&str> = t
                .outputs
                .iter()
                .map(|&o| self.outputs[o].as_str())
                .collect();
            let _ = writeln!(
                s,
                "  {} --[{}]--> {}  / {}",
                self.states[t.from.0],
                self.guard_string(&t.guard),
                self.states[t.to.0],
                if outs.is_empty() {
                    "-".to_string()
                } else {
                    outs.join(" ")
                }
            );
        }
        s
    }
}

/// Runs an FSM over a scripted input trace, collecting per-cycle asserted
/// output names. Convenience for tests and examples.
pub fn run_trace(fsm: &Fsm, trace: &[HashMap<String, bool>]) -> Vec<(String, Vec<String>)> {
    let mut state = fsm.initial();
    let mut out = Vec::new();
    for step in trace {
        let (next, outs) = fsm.step(state, |v| {
            step.get(&fsm.inputs()[v]).copied().unwrap_or(false)
        });
        out.push((
            fsm.state_name(next).to_string(),
            outs.iter().map(|&o| fsm.outputs()[o].clone()).collect(),
        ));
        state = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> Fsm {
        let mut fsm = Fsm::new("toggle");
        let s0 = fsm.add_state("S0");
        let s1 = fsm.add_state("S1");
        let go = fsm.add_input("go");
        let tick = fsm.add_output("tick");
        fsm.add_transition(s0, s1, Expr::var(go), vec![tick]);
        fsm.add_transition(s0, s0, Expr::var(go).not(), vec![]);
        fsm.add_transition(s1, s0, Expr::truth(), vec![]);
        fsm
    }

    #[test]
    fn check_passes_on_good_machine() {
        toggle().check().unwrap();
    }

    #[test]
    fn check_catches_nondeterminism() {
        let mut fsm = toggle();
        let s0 = fsm.state_by_name("S0").unwrap();
        fsm.add_transition(s0, s0, Expr::truth(), vec![]);
        assert_eq!(fsm.check(), Err(FsmError::Nondeterministic(s0)));
    }

    #[test]
    fn check_catches_incompleteness() {
        let mut fsm = Fsm::new("bad");
        let s0 = fsm.add_state("S0");
        let a = fsm.add_input("a");
        fsm.add_transition(s0, s0, Expr::var(a), vec![]);
        assert_eq!(fsm.check(), Err(FsmError::Incomplete(s0)));
    }

    #[test]
    fn check_catches_dangling() {
        let mut fsm = Fsm::new("bad");
        let s0 = fsm.add_state("S0");
        fsm.add_transition(s0, StateId(9), Expr::truth(), vec![]);
        assert_eq!(fsm.check(), Err(FsmError::DanglingReference));
    }

    #[test]
    fn step_follows_guards() {
        let fsm = toggle();
        let s0 = fsm.initial();
        let (s, outs) = fsm.step(s0, |_| false);
        assert_eq!(fsm.state_name(s), "S0");
        assert!(outs.is_empty());
        let (s, outs) = fsm.step(s0, |_| true);
        assert_eq!(fsm.state_name(s), "S1");
        assert_eq!(outs.len(), 1);
    }

    #[test]
    fn run_trace_collects_outputs() {
        let fsm = toggle();
        let mk = |b: bool| {
            let mut m = HashMap::new();
            m.insert("go".to_string(), b);
            m
        };
        let log = run_trace(&fsm, &[mk(false), mk(true), mk(false)]);
        assert_eq!(log[0].0, "S0");
        assert_eq!(log[1].0, "S1");
        assert_eq!(log[1].1, vec!["tick".to_string()]);
        assert_eq!(log[2].0, "S0");
    }

    #[test]
    fn dot_and_describe_render() {
        let fsm = toggle();
        let dot = fsm.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("go"));
        let d = fsm.describe();
        assert!(d.contains("S0"));
        assert!(d.contains("tick"));
    }

    #[test]
    fn guard_rendering_parenthesizes_compound_negations() {
        let mut fsm = Fsm::new("g");
        let _ = fsm.add_state("S");
        let a = fsm.add_input("a");
        let b = fsm.add_input("b");
        let and = Expr::var(a).and(Expr::var(b));
        assert_eq!(fsm.guard_string(&and.clone().not()), "(a·b)'");
        assert_eq!(fsm.guard_string(&Expr::var(a).not()), "a'");
        let or = Expr::var(a).or(Expr::var(b));
        assert_eq!(fsm.guard_string(&or.not()), "(a + b)'");
    }

    #[test]
    fn duplicate_signal_names_are_reused() {
        let mut fsm = Fsm::new("x");
        let a = fsm.add_input("a");
        let a2 = fsm.add_input("a");
        assert_eq!(a, a2);
        let o = fsm.add_output("o");
        assert_eq!(fsm.add_output("o"), o);
    }
}
