//! Multi-level telescopic controllers — the paper's §6 generalization.
//!
//! A two-level TAU chooses between `SD` and `LD`. Nothing in Algorithm 1
//! is specific to two levels: a unit with delay thresholds
//! `t_1 < t_2 < ... < t_L = LD` exposes one completion signal per
//! intermediate level (`C`, `C2`, ..., `C{L-1}`), and the controller gains
//! one extension state per level (`S`, `S'`, `S''`, ...). The final level
//! completes unconditionally, exactly like `S'` in the two-level case —
//! so [`unit_controller_multilevel`] with `levels = 2` generates exactly
//! the Algorithm-1 machine.

use crate::machine::Fsm;
use tauhls_logic::Expr;
use tauhls_sched::{BoundDfg, UnitId};

/// The completion input name for delay level `level` (1-based) of a unit:
/// level 1 is the classic `C_M1`, deeper levels are `C2_M1`, `C3_M1`, ...
pub fn level_completion(unit_name: &str, level: u32) -> String {
    if level <= 1 {
        format!("C_{unit_name}")
    } else {
        format!("C{level}_{unit_name}")
    }
}

/// Generates the arithmetic unit controller for a telescopic unit with
/// `levels` delay levels (Algorithm 1 generalized per §6).
///
/// State naming extends the paper's: `S3` (first, shortest attempt),
/// `S3'`, `S3''`, ... (one prime per extra level spent). Ready states and
/// the cross-unit completion protocol are unchanged.
///
/// # Panics
///
/// Panics if the unit has no bound operations, is not telescopic, or if
/// `levels < 2`.
pub fn unit_controller_multilevel(bound: &BoundDfg, unit: UnitId, levels: u32) -> Fsm {
    assert!(levels >= 2, "a telescopic unit has at least two levels");
    let seq = bound.sequence(unit);
    assert!(!seq.is_empty(), "unit has no bound operations");
    let udesc = &bound.allocation().units()[unit.0];
    assert!(udesc.telescopic, "multi-level controllers are for TAUs");
    let uname = udesc.display_name();

    let mut fsm = Fsm::new(format!("D-FSM-{uname}x{levels}"));
    let n = seq.len();

    // Stage states per op: S, S', S'', ...
    let mut stage_states = Vec::with_capacity(n);
    for &op in seq {
        let states: Vec<_> = (0..levels)
            .map(|l| fsm.add_state(format!("S{}{}", op.0, "'".repeat(l as usize))))
            .collect();
        stage_states.push(states);
    }
    let mut r_state = Vec::with_capacity(n);
    for &op in seq {
        r_state.push(if bound.cross_unit_preds(op).is_empty() {
            None
        } else {
            Some(fsm.add_state(format!("R{}", op.0)))
        });
    }

    // Completion inputs per level (level L completes unconditionally).
    let c_level: Vec<usize> = (1..levels)
        .map(|l| fsm.add_input(level_completion(&uname, l)))
        .collect();
    let pred_guard: Vec<Expr> =
        seq.iter()
            .map(|&op| {
                Expr::all(bound.cross_unit_preds(op).into_iter().map(|p| {
                    Expr::var(fsm.add_input(crate::distributed::signals::op_completion(p)))
                }))
            })
            .collect();

    let of: Vec<usize> = seq
        .iter()
        .map(|&op| fsm.add_output(crate::distributed::signals::operand_fetch(op)))
        .collect();
    let re: Vec<usize> = seq
        .iter()
        .map(|&op| fsm.add_output(crate::distributed::signals::register_enable(op)))
        .collect();
    let cco: Vec<usize> = seq
        .iter()
        .map(|&op| fsm.add_output(crate::distributed::signals::op_completion(op)))
        .collect();

    for i in 0..n {
        let next = (i + 1) % n;
        let pn = pred_guard[next].clone();
        let completing = vec![of[i], re[i], cco[i]];
        let target_s = stage_states[next][0];
        let target_r = r_state[next];

        for l in 0..levels as usize {
            let here = stage_states[i][l];
            let is_final = l + 1 == levels as usize;
            // Guard under which the op completes in this stage.
            let done_guard = if is_final {
                Expr::truth()
            } else {
                Expr::var(c_level[l])
            };
            match target_r {
                None => {
                    fsm.add_transition(here, target_s, done_guard.clone(), completing.clone());
                }
                Some(r) => {
                    fsm.add_transition(
                        here,
                        target_s,
                        done_guard.clone().and(pn.clone()),
                        completing.clone(),
                    );
                    fsm.add_transition(
                        here,
                        r,
                        done_guard.clone().and(pn.clone().not()),
                        completing.clone(),
                    );
                }
            }
            if !is_final {
                fsm.add_transition(here, stage_states[i][l + 1], done_guard.not(), vec![of[i]]);
            }
        }
    }
    for i in 0..n {
        if let Some(r) = r_state[i] {
            let pg = pred_guard[i].clone();
            fsm.add_transition(r, stage_states[i][0], pg.clone(), vec![]);
            fsm.add_transition(r, r, pg.not(), vec![]);
        }
    }
    fsm.set_initial(match r_state[0] {
        Some(r) => r,
        None => stage_states[0][0],
    });
    fsm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::unit_controller;
    use crate::minimize::equivalent_behaviour;
    use tauhls_dfg::benchmarks::fig3_dfg;
    use tauhls_dfg::OpId;
    use tauhls_sched::{Allocation, BoundDfg};

    fn fig3_bound() -> BoundDfg {
        BoundDfg::bind_explicit(
            &fig3_dfg(),
            &Allocation::paper(2, 2, 0),
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn two_levels_reduce_to_algorithm_one() {
        let bound = fig3_bound();
        let classic = unit_controller(&bound, UnitId(0));
        let multi = unit_controller_multilevel(&bound, UnitId(0), 2);
        multi.check().unwrap();
        assert_eq!(classic.num_states(), multi.num_states());
        assert_eq!(classic.transitions().len(), multi.transitions().len());
        assert!(equivalent_behaviour(&classic, &multi));
    }

    #[test]
    fn three_levels_add_one_extension_state_per_op() {
        let bound = fig3_bound();
        let multi = unit_controller_multilevel(&bound, UnitId(0), 3);
        multi.check().unwrap();
        // Per op: S, S', S''; plus R1 -> 2*3 + 1 = 7 states.
        assert_eq!(multi.num_states(), 7);
        assert!(multi.state_by_name("S0''").is_some());
        assert!(multi.input_by_name("C_M1").is_some());
        assert!(multi.input_by_name("C2_M1").is_some());
        assert!(multi.input_by_name("C3_M1").is_none()); // final level is unconditional
    }

    #[test]
    fn three_level_walkthrough() {
        let bound = fig3_bound();
        let fsm = unit_controller_multilevel(&bound, UnitId(0), 3);
        let s0 = fsm.state_by_name("S0").unwrap();
        let c1 = fsm.input_by_name("C_M1").unwrap();
        let c2 = fsm.input_by_name("C2_M1").unwrap();
        let c_po3 = fsm.input_by_name("C_CO(3)").unwrap();
        // Miss level 1, hit level 2, predecessors ready: complete in the
        // second cycle and advance to S1.
        let (s, outs) = fsm.step(s0, |_| false);
        assert_eq!(fsm.state_name(s), "S0'");
        assert_eq!(outs.len(), 1); // OF only
        let (s, outs) = fsm.step(s, |v| v == c2 || v == c_po3);
        assert_eq!(fsm.state_name(s), "S1");
        assert!(outs.len() >= 2); // completing outputs
                                  // Miss both intermediate levels: the final stage is unconditional.
        let (s, _) = fsm.step(s0, |_| false);
        let (s, _) = fsm.step(s, |_| false);
        assert_eq!(fsm.state_name(s), "S0''");
        let (s, outs) = fsm.step(s, |v| v == c_po3);
        assert_eq!(fsm.state_name(s), "S1");
        assert!(!outs.is_empty());
        // C1 short-cut still works.
        let (s, _) = fsm.step(s0, |v| v == c1 || v == c_po3);
        assert_eq!(fsm.state_name(s), "S1");
    }

    #[test]
    fn level_signal_names() {
        assert_eq!(level_completion("M1", 1), "C_M1");
        assert_eq!(level_completion("M1", 2), "C2_M1");
        assert_eq!(level_completion("M2", 3), "C3_M2");
    }
}
