//! The TAUBM FSM (paper §2.2, Fig 2c) and its synchronized multi-TAU
//! extension CENT-SYNC-FSM (Fig 4b).
//!
//! Both are centralized controllers derived from a TAUBM DFG: one state per
//! time step, plus an extension state per *split* step. In a split step all
//! active TAUs are synchronized — the step ends short only when **every**
//! completion signal is asserted (guard `∧ C_u`), which is exactly the
//! `P^n` performance problem the distributed controllers avoid.

use crate::distributed::signals;
use crate::machine::Fsm;
use tauhls_dfg::TaubmDfg;
use tauhls_logic::Expr;
use tauhls_sched::BoundDfg;

/// Generates the synchronized centralized FSM for a bound DFG.
///
/// The time-step schedule comes from the binding's list schedule; split
/// steps are those containing operations of telescopic classes. With a
/// single TAU in each split step this is precisely the TAUBM FSM of
/// Fig 2(c); with several it is the CENT-SYNC-FSM of Table 1.
pub fn cent_sync_fsm(bound: &BoundDfg) -> Fsm {
    cent_sync_fsm_with_schedule(bound, bound.schedule().step_of())
}

/// Like [`cent_sync_fsm`], but over an explicit time-step assignment —
/// used to reproduce the paper's hand schedules (the Fig 2 example places
/// `O4` in `T2` although list scheduling would start it earlier).
///
/// # Panics
///
/// Panics if `step_of` violates a data dependence (see
/// [`TaubmDfg::derive`]).
pub fn cent_sync_fsm_with_schedule(bound: &BoundDfg, step_of: &[usize]) -> Fsm {
    let dfg = bound.dfg();
    let alloc = bound.allocation();
    let taubm = TaubmDfg::derive(dfg, step_of, alloc.tau_classes());
    let units = alloc.units();

    let mut fsm = Fsm::new(format!("CENT-SYNC({})", dfg.name()));

    // States: S{i} per step, S{i}' per split step.
    let steps = taubm.steps();
    let s: Vec<_> = (0..steps.len())
        .map(|i| fsm.add_state(format!("S{i}")))
        .collect();
    let sp: Vec<_> = steps
        .iter()
        .enumerate()
        .map(|(i, st)| st.is_split().then(|| fsm.add_state(format!("S{i}'"))))
        .collect();

    for (i, st) in steps.iter().enumerate() {
        let next = s[(i + 1) % steps.len()];
        let of_fixed: Vec<usize> = st
            .fixed_ops
            .iter()
            .map(|&o| fsm.add_output(signals::operand_fetch(o)))
            .collect();
        let re_fixed: Vec<usize> = st
            .fixed_ops
            .iter()
            .map(|&o| fsm.add_output(signals::register_enable(o)))
            .collect();
        let of_tau: Vec<usize> = st
            .tau_ops
            .iter()
            .map(|&o| fsm.add_output(signals::operand_fetch(o)))
            .collect();
        let re_tau: Vec<usize> = st
            .tau_ops
            .iter()
            .map(|&o| fsm.add_output(signals::register_enable(o)))
            .collect();

        match sp[i] {
            None => {
                // Pure fixed-delay step: unconditional advance.
                let outs = of_fixed.iter().chain(&re_fixed).copied().collect();
                fsm.add_transition(s[i], next, Expr::truth(), outs);
            }
            Some(ext) => {
                // Synchronized guard over the completions of every active
                // TAU unit in this step.
                let mut unit_ids: Vec<usize> =
                    st.tau_ops.iter().map(|&o| bound.unit_of(o).0).collect();
                unit_ids.sort_unstable();
                unit_ids.dedup();
                let all = Expr::all(unit_ids.iter().map(|&u| {
                    Expr::var(fsm.add_input(signals::unit_completion(&units[u].display_name())))
                }));
                // Short path: everything completes in the base half.
                let short_outs: Vec<usize> = of_fixed
                    .iter()
                    .chain(&re_fixed)
                    .chain(&of_tau)
                    .chain(&re_tau)
                    .copied()
                    .collect();
                fsm.add_transition(s[i], next, all.clone(), short_outs);
                // Long path: fixed ops complete now, TAUs need T_i'.
                let long_outs: Vec<usize> = of_fixed
                    .iter()
                    .chain(&re_fixed)
                    .chain(&of_tau)
                    .copied()
                    .collect();
                fsm.add_transition(s[i], ext, all.not(), long_outs);
                // Extension half: TAUs finish unconditionally (LD reached).
                let ext_outs: Vec<usize> = of_tau.iter().chain(&re_tau).copied().collect();
                fsm.add_transition(ext, next, Expr::truth(), ext_outs);
            }
        }
    }
    fsm
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{diffeq, fig2_dfg};
    use tauhls_sched::Allocation;

    /// The paper's Fig 2 schedule: T0={O0,O3}, T1={O1}, T2={O2,O4}, T3={O5}.
    const FIG2_STEPS: [usize; 6] = [0, 1, 2, 0, 2, 3];

    #[test]
    fn fig2c_taubm_fsm_structure() {
        // Fig 2(c): steps T0..T3, splits at T0 and T2 -> states
        // S0, S0', S1, S2, S2', S3; latency 4..6 cycles.
        let bound = BoundDfg::bind(&fig2_dfg(), &Allocation::paper(2, 1, 0));
        let fsm = cent_sync_fsm_with_schedule(&bound, &FIG2_STEPS);
        fsm.check().unwrap();
        assert_eq!(fsm.num_states(), 6);
        for name in ["S0", "S0'", "S1", "S2", "S2'", "S3"] {
            assert!(fsm.state_by_name(name).is_some(), "missing {name}");
        }
        // Choices only at S0 and S2 (the split steps).
        assert_eq!(
            fsm.transitions_from(fsm.state_by_name("S0").unwrap()).len(),
            2
        );
        assert_eq!(
            fsm.transitions_from(fsm.state_by_name("S1").unwrap()).len(),
            1
        );
    }

    #[test]
    fn fig2c_short_and_long_paths() {
        let bound = BoundDfg::bind(&fig2_dfg(), &Allocation::paper(2, 1, 0));
        let fsm = cent_sync_fsm_with_schedule(&bound, &FIG2_STEPS);
        let s0 = fsm.state_by_name("S0").unwrap();
        // All completions high: advance to S1 with RE for the mults.
        let (next, outs) = fsm.step(s0, |_| true);
        assert_eq!(fsm.state_name(next), "S1");
        let out_names: Vec<&str> = outs.iter().map(|&o| fsm.outputs()[o].as_str()).collect();
        assert!(out_names.contains(&"RE0"));
        assert!(out_names.contains(&"RE3"));
        // A completion low: extension half, operand fetch but no TAU RE.
        let (next, outs) = fsm.step(s0, |_| false);
        assert_eq!(fsm.state_name(next), "S0'");
        let out_names: Vec<&str> = outs.iter().map(|&o| fsm.outputs()[o].as_str()).collect();
        assert!(out_names.contains(&"OF0"));
        assert!(!out_names.contains(&"RE0"));
        // The extension half completes unconditionally.
        let sp = fsm.state_by_name("S0'").unwrap();
        let (next, outs) = fsm.step(sp, |_| false);
        assert_eq!(fsm.state_name(next), "S1");
        let out_names: Vec<&str> = outs.iter().map(|&o| fsm.outputs()[o].as_str()).collect();
        assert!(out_names.contains(&"RE0"));
    }

    #[test]
    fn mixed_step_completes_fixed_ops_early() {
        // diffeq step 0 holds two mults (TAU) and one add (fixed): on the
        // long path the add's RE must fire in the base half.
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let fsm = cent_sync_fsm(&bound);
        fsm.check().unwrap();
        let s0 = fsm.state_by_name("S0").unwrap();
        let (next, outs) = fsm.step(s0, |_| false);
        assert!(fsm.state_name(next).ends_with('\''));
        let names: Vec<&str> = outs.iter().map(|&o| fsm.outputs()[o].as_str()).collect();
        // a1 is OpId(8) in diffeq construction order.
        assert!(names.contains(&"RE8"), "fixed add latched early: {names:?}");
    }

    #[test]
    fn diffeq_cent_sync_size() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let fsm = cent_sync_fsm(&bound);
        // 4 steps, 3 of them split -> 7 states; 2 completion inputs.
        assert_eq!(fsm.num_states(), 7);
        assert_eq!(fsm.inputs().len(), 2);
    }
}
