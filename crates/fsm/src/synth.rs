//! FSM synthesis: state encoding, next-state/output logic extraction,
//! two-level minimization, and the area report of the paper's Table 1.

use crate::machine::{Fsm, StateId};
use tauhls_logic::{minimize_auto, AreaModel, AreaReport, Cover, Cube, Expr};

/// State encoding styles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Natural binary encoding (`ceil(log2(n))` flip-flops).
    Binary,
    /// Gray-code encoding (same flip-flop count as binary).
    Gray,
    /// One-hot encoding (`n` flip-flops, shallow logic).
    OneHot,
}

/// A synthesized controller: minimized two-level covers for every
/// next-state bit and every output, plus the resulting area.
#[derive(Clone, Debug)]
pub struct SynthesizedFsm {
    name: String,
    encoding: Encoding,
    num_states: usize,
    num_inputs: usize,
    num_outputs: usize,
    state_bits: usize,
    initial_code: u64,
    input_names: Vec<String>,
    output_names: Vec<String>,
    next_state: Vec<Cover>,
    outputs: Vec<Cover>,
    area: AreaReport,
}

impl SynthesizedFsm {
    /// The source FSM's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoding used.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Number of symbolic states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of input signals (completion signals).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output signals (OF/RE/C_CO).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of flip-flops (state bits).
    pub fn flip_flops(&self) -> usize {
        self.state_bits
    }

    /// Minimized next-state covers, one per state bit, over the variable
    /// order `[state bits..., inputs...]`.
    pub fn next_state_covers(&self) -> &[Cover] {
        &self.next_state
    }

    /// Minimized output covers, one per output signal.
    pub fn output_covers(&self) -> &[Cover] {
        &self.outputs
    }

    /// The area report (combinational + sequential).
    pub fn area(&self) -> &AreaReport {
        &self.area
    }

    /// The encoded reset state.
    pub fn initial_code(&self) -> u64 {
        self.initial_code
    }

    /// Input signal names, in cover variable order (after the state bits).
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output signal names, aligned with [`SynthesizedFsm::output_covers`].
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }
}

/// Encodes state `s` under `enc`.
fn encode(enc: Encoding, s: StateId) -> u64 {
    match enc {
        Encoding::Binary => s.0 as u64,
        Encoding::Gray => (s.0 ^ (s.0 >> 1)) as u64,
        Encoding::OneHot => 1u64 << s.0,
    }
}

fn state_bits(enc: Encoding, n: usize) -> usize {
    match enc {
        Encoding::Binary | Encoding::Gray => {
            (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize
        }
        Encoding::OneHot => n,
    }
}

/// The present-state cube selecting state `s` (over the combined variable
/// space, state bits in positions `0..bits`).
fn state_cube(enc: Encoding, bits: usize, s: StateId) -> Cube {
    match enc {
        Encoding::OneHot => {
            // Standard one-hot synthesis: test only the hot bit, relying on
            // the one-hot invariant for the rest.
            Cube::from_literals(&[(s.0, true)])
        }
        _ => {
            let code = encode(enc, s);
            let lits: Vec<(usize, bool)> = (0..bits).map(|b| (b, code >> b & 1 == 1)).collect();
            Cube::from_literals(&lits)
        }
    }
}

/// Shifts a guard cover (over input indices) into the combined variable
/// space (inputs occupy positions `bits..bits+num_inputs`).
fn shift_guard(guard: &Expr, num_inputs: usize, bits: usize) -> Vec<Cube> {
    let cover = guard.to_cover(num_inputs);
    cover
        .cubes()
        .iter()
        .map(|c| Cube::new(c.mask() << bits, c.val() << bits))
        .collect()
}

/// Synthesizes `fsm` under `encoding`, minimizing every next-state and
/// output function and costing the result with `model`.
///
/// Unused state codes (binary/Gray) become don't-cares for all functions.
/// Exact Quine–McCluskey is used up to 11 combined variables, the
/// espresso-style heuristic beyond.
///
/// # Panics
///
/// Panics if `state_bits + inputs > 64` (cover variable limit).
pub fn synthesize(fsm: &Fsm, encoding: Encoding, model: &AreaModel) -> SynthesizedFsm {
    let n = fsm.num_states();
    let bits = state_bits(encoding, n);
    let num_inputs = fsm.inputs().len();
    let vars = bits + num_inputs;
    assert!(vars <= 64, "too many combined variables");

    // Don't-care cover: unused state codes.
    let mut dc = Cover::empty(vars);
    if matches!(encoding, Encoding::Binary | Encoding::Gray) {
        let used: std::collections::HashSet<u64> =
            (0..n).map(|s| encode(encoding, StateId(s))).collect();
        for code in 0..1u64 << bits {
            if !used.contains(&code) {
                let lits: Vec<(usize, bool)> = (0..bits).map(|b| (b, code >> b & 1 == 1)).collect();
                dc.push(Cube::from_literals(&lits));
            }
        }
    }

    // Onsets.
    let mut next_on: Vec<Cover> = (0..bits).map(|_| Cover::empty(vars)).collect();
    let mut out_on: Vec<Cover> = (0..fsm.outputs().len())
        .map(|_| Cover::empty(vars))
        .collect();
    for t in fsm.transitions() {
        let sc = state_cube(encoding, bits, t.from);
        let guard_cubes = shift_guard(&t.guard, num_inputs, bits);
        let to_code = encode(encoding, t.to);
        for gc in &guard_cubes {
            let Some(full) = sc.intersect(gc) else {
                continue;
            };
            for (b, on) in next_on.iter_mut().enumerate() {
                if to_code >> b & 1 == 1 {
                    on.push(full);
                }
            }
            for &o in &t.outputs {
                out_on[o].push(full);
            }
        }
    }

    const EXACT_LIMIT: usize = 11;
    let minimize = |c: &Cover| -> Cover { minimize_auto(c, &dc, EXACT_LIMIT) };
    let next_state: Vec<Cover> = next_on.iter().map(minimize).collect();
    let outputs: Vec<Cover> = out_on.iter().map(minimize).collect();

    let all: Vec<Cover> = next_state.iter().chain(&outputs).cloned().collect();
    let area = model.area(&all, bits);

    SynthesizedFsm {
        name: fsm.name().to_string(),
        encoding,
        num_states: n,
        num_inputs,
        num_outputs: fsm.outputs().len(),
        state_bits: bits,
        initial_code: encode(encoding, fsm.initial()),
        input_names: fsm.inputs().to_vec(),
        output_names: fsm.outputs().to_vec(),
        next_state,
        outputs,
        area,
    }
}

/// Verifies a synthesized controller against its source FSM by symbolic
/// walk: from every state and every assignment of the *used* inputs, the
/// minimized logic must produce the encoded next state and output set of
/// the behavioural machine. Returns `false` on any mismatch.
pub fn verify_synthesis(fsm: &Fsm, syn: &SynthesizedFsm, encoding: Encoding) -> bool {
    let bits = syn.state_bits;
    let num_inputs = fsm.inputs().len();
    for s in (0..fsm.num_states()).map(StateId) {
        let code = encode(encoding, s);
        for assignment in 0..1u64 << num_inputs {
            let word = code | assignment << bits;
            let (next, outs) = fsm.step(s, |v| assignment >> v & 1 == 1);
            let want_code = encode(encoding, next);
            for b in 0..bits {
                if syn.next_state[b].evaluate(word) != (want_code >> b & 1 == 1) {
                    return false;
                }
            }
            for (o, cover) in syn.outputs.iter().enumerate() {
                if cover.evaluate(word) != outs.contains(&o) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::unit_controller;
    use tauhls_dfg::benchmarks::fig3_dfg;
    use tauhls_dfg::OpId;
    use tauhls_sched::{Allocation, BoundDfg, UnitId};

    fn m1_fsm() -> Fsm {
        let bound = BoundDfg::bind_explicit(
            &fig3_dfg(),
            &Allocation::paper(2, 2, 0),
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap();
        unit_controller(&bound, UnitId(0))
    }

    #[test]
    fn binary_synthesis_verifies() {
        let fsm = m1_fsm();
        let syn = synthesize(&fsm, Encoding::Binary, &AreaModel::default());
        assert_eq!(syn.flip_flops(), 3); // 5 states
        assert!(verify_synthesis(&fsm, &syn, Encoding::Binary));
        assert!(syn.area().combinational > 0.0);
        assert_eq!(syn.area().sequential, 66.0);
    }

    #[test]
    fn gray_synthesis_verifies() {
        let fsm = m1_fsm();
        let syn = synthesize(&fsm, Encoding::Gray, &AreaModel::default());
        assert_eq!(syn.flip_flops(), 3);
        assert!(verify_synthesis(&fsm, &syn, Encoding::Gray));
    }

    #[test]
    fn onehot_synthesis_verifies() {
        let fsm = m1_fsm();
        let syn = synthesize(&fsm, Encoding::OneHot, &AreaModel::default());
        assert_eq!(syn.flip_flops(), 5);
        assert!(verify_synthesis(&fsm, &syn, Encoding::OneHot));
        // One-hot pays flip-flops but saves logic depth; literal count per
        // function should be modest.
        assert!(syn.area().sequential > 100.0);
    }

    #[test]
    fn dontcares_exploited_by_binary() {
        // 5 states in 3 bits leave 3 unused codes; minimized logic should
        // not be larger than one-hot's per-function covers in literals.
        let fsm = m1_fsm();
        let bin = synthesize(&fsm, Encoding::Binary, &AreaModel::default());
        assert!(bin.area().literals > 0);
        assert!(bin.next_state_covers().len() == 3);
        assert!(bin.output_covers().len() == fsm.outputs().len());
    }

    #[test]
    fn toggle_fsm_synthesizes_to_tiny_logic() {
        use tauhls_logic::Expr;
        let mut fsm = Fsm::new("t");
        let s0 = fsm.add_state("S0");
        let s1 = fsm.add_state("S1");
        let a = fsm.add_input("a");
        let o = fsm.add_output("o");
        fsm.add_transition(s0, s1, Expr::var(a), vec![o]);
        fsm.add_transition(s0, s0, Expr::var(a).not(), vec![]);
        fsm.add_transition(s1, s0, Expr::truth(), vec![]);
        let syn = synthesize(&fsm, Encoding::Binary, &AreaModel::default());
        assert_eq!(syn.flip_flops(), 1);
        assert!(verify_synthesis(&fsm, &syn, Encoding::Binary));
        // next = s0' & a ; out = s0' & a... wait state bit: S0=0, S1=1:
        // next-bit onset = (state=0 & a): 2 literals.
        assert_eq!(syn.next_state_covers()[0].literal_count(), 2);
        assert_eq!(syn.output_covers()[0].literal_count(), 2);
    }
}
