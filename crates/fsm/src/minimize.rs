//! Mealy-machine state minimization by partition refinement.
//!
//! Two states are equivalent iff for every input assignment they assert
//! the same outputs and move to equivalent states. The classic
//! Moore/Hopcroft refinement computes the coarsest such partition; the
//! minimized machine is the quotient. Used to bring the centralized
//! product FSM (Fig 4a style) to its canonical size before area analysis.

use crate::machine::{Fsm, StateId};
use std::collections::HashMap;
use tauhls_logic::{Cube, Expr};

/// Maximum number of inputs a machine may have for minimization (the
/// refinement enumerates `2^k` input minterms).
const MAX_INPUTS: usize = 16;

/// Minimizes the number of states of a deterministic, complete Mealy
/// machine. Unreachable states are dropped; equivalent states are merged;
/// transition guards are re-synthesized as compact minterm covers.
///
/// # Panics
///
/// Panics if the machine has more than 16 inputs, or if it is not
/// deterministic/complete (run [`Fsm::check`] first).
pub fn minimize_states(fsm: &Fsm) -> Fsm {
    let k = fsm.inputs().len();
    assert!(k <= MAX_INPUTS, "too many inputs to enumerate");
    let minterms: u64 = 1u64 << k;

    // Reachable states only.
    let mut reachable = vec![false; fsm.num_states()];
    let mut stack = vec![fsm.initial()];
    reachable[fsm.initial().0] = true;
    // Precompute the behaviour table: state × minterm -> (next, outputs).
    let mut behaviour: HashMap<(usize, u64), (usize, Vec<usize>)> = HashMap::new();
    while let Some(s) = stack.pop() {
        for m in 0..minterms {
            let (next, mut outs) = fsm.step(s, |v| m >> v & 1 == 1);
            outs.sort_unstable();
            behaviour.insert((s.0, m), (next.0, outs));
            if !reachable[next.0] {
                reachable[next.0] = true;
                stack.push(next);
            }
        }
    }

    let states: Vec<usize> = (0..fsm.num_states()).filter(|&s| reachable[s]).collect();

    // Initial partition: by output signature across all minterms.
    let mut block_of: HashMap<usize, usize> = HashMap::new();
    {
        let mut sig_to_block: HashMap<Vec<Vec<usize>>, usize> = HashMap::new();
        for &s in &states {
            let sig: Vec<Vec<usize>> = (0..minterms)
                .map(|m| behaviour[&(s, m)].1.clone())
                .collect();
            let nb = sig_to_block.len();
            let b = *sig_to_block.entry(sig).or_insert(nb);
            block_of.insert(s, b);
        }
    }

    // Refinement.
    loop {
        let mut sig_to_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut next_block_of: HashMap<usize, usize> = HashMap::new();
        for &s in &states {
            let sig: Vec<usize> = (0..minterms)
                .map(|m| block_of[&behaviour[&(s, m)].0])
                .collect();
            let key = (block_of[&s], sig);
            let nb = sig_to_block.len();
            let b = *sig_to_block.entry(key).or_insert(nb);
            next_block_of.insert(s, b);
        }
        let stable = states.iter().all(|&s| {
            states.iter().all(|&t| {
                (block_of[&s] == block_of[&t]) == (next_block_of[&s] == next_block_of[&t])
            })
        });
        block_of = next_block_of;
        if stable {
            break;
        }
    }

    // Build the quotient machine. Representative = smallest state per block.
    let num_blocks = block_of.values().copied().max().map_or(0, |m| m + 1);
    let mut rep: Vec<usize> = vec![usize::MAX; num_blocks];
    for &s in &states {
        let b = block_of[&s];
        rep[b] = rep[b].min(s);
    }
    let mut out = Fsm::new(format!("{}-min", fsm.name()));
    let mut block_state: Vec<StateId> = Vec::with_capacity(num_blocks);
    // Order blocks by representative id for stable naming; initial first.
    let mut order: Vec<usize> = (0..num_blocks).collect();
    let init_block = block_of[&fsm.initial().0];
    order.sort_by_key(|&b| (b != init_block, rep[b]));
    let mut block_index: Vec<usize> = vec![0; num_blocks];
    for (i, &b) in order.iter().enumerate() {
        block_index[b] = i;
        block_state.push(StateId(0)); // placeholder
        let _ = i;
    }
    for &b in &order {
        let id = out.add_state(fsm.state_name(StateId(rep[b])).to_string());
        block_state[block_index[b]] = id;
    }
    let in_idx: Vec<usize> = fsm
        .inputs()
        .iter()
        .map(|n| out.add_input(n.clone()))
        .collect();
    let out_idx: Vec<usize> = fsm
        .outputs()
        .iter()
        .map(|n| out.add_output(n.clone()))
        .collect();

    for &b in &order {
        let s = rep[b];
        // Group minterms by (next block, outputs).
        let mut buckets: HashMap<(usize, Vec<usize>), Vec<u64>> = HashMap::new();
        for m in 0..minterms {
            let (next, outs) = &behaviour[&(s, m)];
            buckets
                .entry((block_of[next], outs.clone()))
                .or_default()
                .push(m);
        }
        let mut entries: Vec<_> = buckets.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for ((nb, outs), ms) in entries {
            let guard = minterms_to_expr(&ms, &in_idx, k);
            let mapped: Vec<usize> = outs.iter().map(|&o| out_idx[o]).collect();
            out.add_transition(
                block_state[block_index[b]],
                block_state[block_index[nb]],
                guard,
                mapped,
            );
        }
    }
    out.set_initial(block_state[block_index[init_block]]);
    out
}

/// Builds a compact guard expression covering exactly `minterms` over `k`
/// input variables (shared with the product construction).
pub(crate) fn minterms_to_expr(minterms: &[u64], in_idx: &[usize], k: usize) -> Expr {
    if minterms.len() as u64 == 1u64.checked_shl(k as u32).unwrap_or(u64::MAX) {
        return Expr::truth();
    }
    let primes = tauhls_logic::prime_implicants(k.max(1), minterms);
    let mut remaining: Vec<u64> = minterms.to_vec();
    let mut chosen: Vec<Cube> = Vec::new();
    for p in primes {
        if remaining.iter().any(|&m| p.covers_minterm(m)) {
            remaining.retain(|&m| !p.covers_minterm(m));
            chosen.push(p);
        }
        if remaining.is_empty() {
            break;
        }
    }
    Expr::any(chosen.into_iter().map(|c| {
        Expr::all((0..k).filter_map(|v| {
            c.literal(v).map(|pol| {
                let var = Expr::var(in_idx[v]);
                if pol {
                    var
                } else {
                    var.not()
                }
            })
        }))
    }))
}

/// True iff the two machines accept identical input traces with identical
/// output behaviour (checked by simultaneous reachability over all input
/// minterms). Used to validate minimization.
///
/// # Panics
///
/// Panics if the machines disagree on input/output alphabets, or have more
/// than 16 inputs.
pub fn equivalent_behaviour(a: &Fsm, b: &Fsm) -> bool {
    assert_eq!(a.inputs(), b.inputs(), "input alphabets differ");
    let k = a.inputs().len();
    assert!(k <= MAX_INPUTS);
    // Output name maps (orders may differ).
    let mut visited = std::collections::HashSet::new();
    let mut stack = vec![(a.initial(), b.initial())];
    visited.insert((a.initial(), b.initial()));
    while let Some((sa, sb)) = stack.pop() {
        for m in 0..1u64 << k {
            let (na, oa) = a.step(sa, |v| m >> v & 1 == 1);
            let (nb, ob) = b.step(sb, |v| m >> v & 1 == 1);
            let names_a: std::collections::BTreeSet<&str> =
                oa.iter().map(|&o| a.outputs()[o].as_str()).collect();
            let names_b: std::collections::BTreeSet<&str> =
                ob.iter().map(|&o| b.outputs()[o].as_str()).collect();
            if names_a != names_b {
                return false;
            }
            if visited.insert((na, nb)) {
                stack.push((na, nb));
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_logic::Expr;

    /// A machine with two redundant copies of the same behaviour.
    fn redundant() -> Fsm {
        let mut f = Fsm::new("red");
        let s0 = f.add_state("S0");
        let s1 = f.add_state("S1");
        let s2 = f.add_state("S2"); // behaves exactly like S1
        let a = f.add_input("a");
        let o = f.add_output("o");
        f.add_transition(s0, s1, Expr::var(a), vec![o]);
        f.add_transition(s0, s2, Expr::var(a).not(), vec![o]);
        f.add_transition(s1, s0, Expr::truth(), vec![]);
        f.add_transition(s2, s0, Expr::truth(), vec![]);
        f
    }

    #[test]
    fn merges_equivalent_states() {
        let f = redundant();
        f.check().unwrap();
        let m = minimize_states(&f);
        m.check().unwrap();
        assert_eq!(m.num_states(), 2);
        assert!(equivalent_behaviour(&f, &m));
    }

    #[test]
    fn drops_unreachable_states() {
        let mut f = redundant();
        let dead = f.add_state("DEAD");
        f.add_transition(dead, dead, Expr::truth(), vec![]);
        let m = minimize_states(&f);
        assert_eq!(m.num_states(), 2);
    }

    #[test]
    fn distinguishes_by_outputs() {
        let mut f = Fsm::new("d");
        let s0 = f.add_state("S0");
        let s1 = f.add_state("S1");
        let s2 = f.add_state("S2");
        let a = f.add_input("a");
        let o = f.add_output("o");
        f.add_transition(s0, s1, Expr::var(a), vec![]);
        f.add_transition(s0, s2, Expr::var(a).not(), vec![]);
        f.add_transition(s1, s0, Expr::truth(), vec![o]); // emits
        f.add_transition(s2, s0, Expr::truth(), vec![]); // silent
        f.check().unwrap();
        let m = minimize_states(&f);
        assert_eq!(m.num_states(), 3);
        assert!(equivalent_behaviour(&f, &m));
    }

    #[test]
    fn minimization_is_idempotent() {
        let f = redundant();
        let m1 = minimize_states(&f);
        let m2 = minimize_states(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
    }

    #[test]
    fn product_of_unit_controllers_minimizes_behaviourally() {
        use crate::distributed::unit_controller;
        use crate::product::synchronous_product;
        use tauhls_dfg::benchmarks::fig3_dfg;
        use tauhls_dfg::OpId;
        use tauhls_sched::{Allocation, BoundDfg, UnitId};
        let bound = BoundDfg::bind_explicit(
            &fig3_dfg(),
            &Allocation::paper(2, 2, 0),
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap();
        let fsms: Vec<crate::machine::Fsm> =
            (0..4).map(|u| unit_controller(&bound, UnitId(u))).collect();
        let refs: Vec<&crate::machine::Fsm> = fsms.iter().collect();
        let p = synchronous_product("CENT", &refs);
        let m = minimize_states(&p);
        m.check().unwrap();
        assert!(m.num_states() <= p.num_states());
        assert!(equivalent_behaviour(&p, &m));
    }
}
