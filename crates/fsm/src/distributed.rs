//! Algorithm 1: derivation of an arithmetic unit controller FSM from a
//! scheduled-and-bound DFG (paper §4.2, Fig 5/6), and the distributed
//! global control unit as the set of all unit controllers (Fig 7).

use crate::machine::Fsm;
use tauhls_logic::Expr;
use tauhls_sched::{BoundDfg, UnitId};

/// Signal-name helpers shared by generation, composition and simulation.
pub mod signals {
    use tauhls_dfg::OpId;

    /// The completion input of a telescopic unit, e.g. `C_M1`.
    pub fn unit_completion(unit_name: &str) -> String {
        format!("C_{unit_name}")
    }

    /// The completion signal of an operation, e.g. `C_CO(3)` — an output of
    /// the producing controller and an input (`C_PO`) of consumers.
    pub fn op_completion(op: OpId) -> String {
        format!("C_CO({})", op.0)
    }

    /// The operand-fetch output of an operation, e.g. `OF3`.
    pub fn operand_fetch(op: OpId) -> String {
        format!("OF{}", op.0)
    }

    /// The register-enable output of an operation, e.g. `RE3`.
    pub fn register_enable(op: OpId) -> String {
        format!("RE{}", op.0)
    }
}

/// Generates the arithmetic unit controller for one unit of a bound DFG
/// (Algorithm 1 for TAUs; the reduced form without `S_i'` states for
/// fixed-delay units).
///
/// States follow the paper's naming: `S{op}` (execute, short half),
/// `S{op}'` (long-delay extension, TAUs only), `R{op}` (ready-wait, only
/// when the operation has cross-unit direct predecessors). The controller
/// cycles through its operation sequence and wraps around for repetitive
/// DFG execution.
///
/// # Panics
///
/// Panics if the unit has no bound operations (an unused unit needs no
/// controller).
pub fn unit_controller(bound: &BoundDfg, unit: UnitId) -> Fsm {
    unit_controller_opts(bound, unit, false)
}

/// Like [`unit_controller`], but `single_shot = true` generates a
/// one-iteration controller ending in an absorbing `DONE` state instead of
/// wrapping around. The single-shot variants are what the centralized
/// product (CENT-FSM, Fig 4a) is built from, so its state count reflects
/// one DFG iteration rather than the phase drift of independently looping
/// components.
///
/// # Panics
///
/// Panics if the unit has no bound operations.
pub fn unit_controller_opts(bound: &BoundDfg, unit: UnitId, single_shot: bool) -> Fsm {
    let seq = bound.sequence(unit);
    assert!(!seq.is_empty(), "unit has no bound operations");
    let udesc = &bound.allocation().units()[unit.0];
    let telescopic = udesc.telescopic;
    let uname = udesc.display_name();

    let mut fsm = Fsm::new(format!("D-FSM-{uname}"));

    // States: S_i (+ S_i' for TAUs) per op, R_i when the op has preds.
    let n = seq.len();
    let mut s_state = Vec::with_capacity(n);
    let mut sp_state = Vec::with_capacity(n);
    let mut r_state = Vec::with_capacity(n);
    for &op in seq {
        s_state.push(fsm.add_state(format!("S{}", op.0)));
        sp_state.push(if telescopic {
            Some(fsm.add_state(format!("S{}'", op.0)))
        } else {
            None
        });
    }
    for &op in seq {
        r_state.push(if bound.cross_unit_preds(op).is_empty() {
            None
        } else {
            Some(fsm.add_state(format!("R{}", op.0)))
        });
    }

    // Inputs: own completion (TAUs), plus C_PO signals.
    let c_t = telescopic.then(|| fsm.add_input(signals::unit_completion(&uname)));
    let pred_guard: Vec<Expr> = seq
        .iter()
        .map(|&op| {
            Expr::all(
                bound
                    .cross_unit_preds(op)
                    .into_iter()
                    .map(|p| Expr::var(fsm.add_input(signals::op_completion(p)))),
            )
        })
        .collect();

    // Outputs.
    let of: Vec<usize> = seq
        .iter()
        .map(|&op| fsm.add_output(signals::operand_fetch(op)))
        .collect();
    let re: Vec<usize> = seq
        .iter()
        .map(|&op| fsm.add_output(signals::register_enable(op)))
        .collect();
    let cco: Vec<usize> = seq
        .iter()
        .map(|&op| fsm.add_output(signals::op_completion(op)))
        .collect();

    let done_state = single_shot.then(|| fsm.add_state("DONE"));

    for i in 0..n {
        let next = (i + 1) % n;
        let is_last = i == n - 1;
        // Single-shot controllers route the last completion into DONE.
        let (pn, target_s, target_r) = if single_shot && is_last {
            (Expr::truth(), done_state.expect("single shot"), None)
        } else {
            (pred_guard[next].clone(), s_state[next], r_state[next])
        };
        let completing = vec![of[i], re[i], cco[i]];
        let ct_expr = c_t.map(Expr::var).unwrap_or_else(Expr::truth);

        match target_r {
            None => {
                // Next op starts unconditionally once we finish.
                fsm.add_transition(s_state[i], target_s, ct_expr.clone(), completing.clone());
                if let Some(sp) = sp_state[i] {
                    fsm.add_transition(s_state[i], sp, ct_expr.clone().not(), vec![of[i]]);
                    fsm.add_transition(sp, target_s, Expr::truth(), completing.clone());
                }
            }
            Some(r) => {
                fsm.add_transition(
                    s_state[i],
                    target_s,
                    ct_expr.clone().and(pn.clone()),
                    completing.clone(),
                );
                fsm.add_transition(
                    s_state[i],
                    r,
                    ct_expr.clone().and(pn.clone().not()),
                    completing.clone(),
                );
                if let Some(sp) = sp_state[i] {
                    fsm.add_transition(s_state[i], sp, ct_expr.clone().not(), vec![of[i]]);
                    fsm.add_transition(sp, target_s, pn.clone(), completing.clone());
                    fsm.add_transition(sp, r, pn.clone().not(), completing.clone());
                }
            }
        }
    }
    // Ready-state wait loops (one pair per R state).
    for i in 0..n {
        if let Some(r) = r_state[i] {
            let pg = pred_guard[i].clone();
            fsm.add_transition(r, s_state[i], pg.clone(), vec![]);
            fsm.add_transition(r, r, pg.not(), vec![]);
        }
    }
    if let Some(done) = done_state {
        fsm.add_transition(done, done, Expr::truth(), vec![]);
    }

    // Initial state: wait for the first op's predecessors if it has any.
    fsm.set_initial(match r_state[0] {
        Some(r) => r,
        None => s_state[0],
    });
    fsm
}

/// The distributed global control unit: one controller per used unit.
#[derive(Clone, Debug)]
pub struct DistributedControlUnit {
    controllers: Vec<(UnitId, Fsm)>,
}

impl DistributedControlUnit {
    /// Generates controllers for every unit with at least one bound
    /// operation, then removes completion outputs no other controller
    /// consumes (the paper's communication-signal optimization, Fig 7).
    pub fn generate(bound: &BoundDfg) -> Self {
        let mut controllers = Vec::new();
        for (i, _) in bound.allocation().units().iter().enumerate() {
            let unit = UnitId(i);
            if !bound.sequence(unit).is_empty() {
                controllers.push((unit, unit_controller(bound, unit)));
            }
        }
        let mut cu = DistributedControlUnit { controllers };
        cu.optimize_signals();
        cu
    }

    /// Like [`DistributedControlUnit::generate`], but telescopic units get
    /// multi-level controllers with the given number of delay levels
    /// (paper §6 generalization; `levels = 2` is identical to `generate`).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2`.
    pub fn generate_multilevel(bound: &BoundDfg, levels: u32) -> Self {
        assert!(levels >= 2);
        let units = bound.allocation().units();
        let mut controllers = Vec::new();
        for (i, desc) in units.iter().enumerate() {
            let unit = UnitId(i);
            if bound.sequence(unit).is_empty() {
                continue;
            }
            let fsm = if desc.telescopic {
                crate::multilevel::unit_controller_multilevel(bound, unit, levels)
            } else {
                unit_controller(bound, unit)
            };
            controllers.push((unit, fsm));
        }
        let mut cu = DistributedControlUnit { controllers };
        cu.optimize_signals();
        cu
    }

    /// The per-unit controllers.
    pub fn controllers(&self) -> &[(UnitId, Fsm)] {
        &self.controllers
    }

    /// The controller of a specific unit, if it exists.
    pub fn controller(&self, unit: UnitId) -> Option<&Fsm> {
        self.controllers
            .iter()
            .find(|(u, _)| *u == unit)
            .map(|(_, f)| f)
    }

    /// Removes `C_CO` outputs that no sibling controller reads.
    fn optimize_signals(&mut self) {
        let mut fsms: Vec<Fsm> = self.controllers.iter().map(|(_, f)| f.clone()).collect();
        optimize_dead_completions(&mut fsms);
        for ((_, slot), fsm) in self.controllers.iter_mut().zip(fsms) {
            *slot = fsm;
        }
    }

    /// Total state count over all controllers.
    pub fn total_states(&self) -> usize {
        self.controllers.iter().map(|(_, f)| f.num_states()).sum()
    }

    /// Renders the distributed control unit as a Graphviz DOT graph in the
    /// style of the paper's Fig 7: one box per controller (labelled with
    /// its name and state count), one edge per completion-signal wire.
    ///
    /// `unit_name` maps unit ids to display names (e.g.
    /// `|u| alloc.units()[u.0].display_name()`).
    pub fn wiring_dot(&self, unit_name: impl Fn(UnitId) -> String) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph control_unit {{");
        let _ = writeln!(s, "  rankdir=LR; node [shape=box];");
        for (u, fsm) in &self.controllers {
            let _ = writeln!(
                s,
                "  u{} [label=\"CONT_{}\\n{} states\"];",
                u.0,
                unit_name(*u),
                fsm.num_states()
            );
        }
        for (p, sig, c) in self.signal_wiring() {
            let _ = writeln!(s, "  u{} -> u{} [label=\"{}\"];", p.0, c.0, sig);
        }
        // External completion inputs (from the TAU datapath).
        for (u, fsm) in &self.controllers {
            for input in fsm.inputs() {
                if !input.starts_with("C_CO(") {
                    let _ = writeln!(
                        s,
                        "  ext_{input} [label=\"{input}\", shape=plaintext]; \
                         ext_{input} -> u{};",
                        u.0
                    );
                }
            }
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// The cross-controller completion-signal wiring: for each connection,
    /// `(producer unit, signal name, consumer unit)`.
    pub fn signal_wiring(&self) -> Vec<(UnitId, String, UnitId)> {
        let mut out = Vec::new();
        for (cu, consumer) in &self.controllers {
            for name in consumer.inputs() {
                if !name.starts_with("C_CO(") {
                    continue;
                }
                for (pu, producer) in &self.controllers {
                    if producer.output_by_name(name).is_some() {
                        out.push((*pu, name.clone(), *cu));
                    }
                }
            }
        }
        out
    }
}

/// Removes from each controller every `C_CO` output that no controller in
/// the set consumes (the paper's §4.2 communication-signal optimization,
/// e.g. `C_CO(0)` in Fig 7). Exposed for alternative composition flows
/// such as the centralized product.
pub fn optimize_dead_completions(controllers: &mut [Fsm]) {
    use std::collections::HashSet;
    let consumed: HashSet<String> = controllers
        .iter()
        .flat_map(|f| f.inputs().iter().cloned())
        .collect();
    for fsm in controllers.iter_mut() {
        let dead: Vec<usize> = fsm
            .outputs()
            .iter()
            .enumerate()
            .filter_map(|(i, name)| {
                (name.starts_with("C_CO(") && !consumed.contains(name)).then_some(i)
            })
            .collect();
        if !dead.is_empty() {
            *fsm = remove_outputs(fsm, &dead);
        }
    }
}

/// Rebuilds an FSM with the given output indices removed.
fn remove_outputs(fsm: &Fsm, dead: &[usize]) -> Fsm {
    let mut out = Fsm::new(fsm.name().to_string());
    for s in 0..fsm.num_states() {
        out.add_state(fsm.state_name(crate::machine::StateId(s)).to_string());
    }
    for name in fsm.inputs() {
        out.add_input(name.clone());
    }
    let mut remap = vec![None; fsm.outputs().len()];
    for (i, name) in fsm.outputs().iter().enumerate() {
        if !dead.contains(&i) {
            remap[i] = Some(out.add_output(name.clone()));
        }
    }
    for t in fsm.transitions() {
        let outs: Vec<usize> = t.outputs.iter().filter_map(|&o| remap[o]).collect();
        out.add_transition(t.from, t.to, t.guard.clone(), outs);
    }
    out.set_initial(fsm.initial());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{diffeq, fig3_dfg};
    use tauhls_dfg::OpId;
    use tauhls_sched::Allocation;

    fn fig3_bound() -> BoundDfg {
        BoundDfg::bind_explicit(
            &fig3_dfg(),
            &Allocation::paper(2, 2, 0),
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig6_m1_controller_structure() {
        // The paper's Fig 6: controller for TAU multiplier M1 bound with
        // (O0, O1): states S0, S0', S1, S1', R1 and exactly 10 transitions.
        let bound = fig3_bound();
        let fsm = unit_controller(&bound, UnitId(0));
        fsm.check().unwrap();
        assert_eq!(fsm.num_states(), 5);
        assert_eq!(fsm.transitions().len(), 10);
        for name in ["S0", "S0'", "S1", "S1'", "R1"] {
            assert!(fsm.state_by_name(name).is_some(), "missing state {name}");
        }
        // Inputs: own completion + C_PO(3).
        assert!(fsm.input_by_name("C_M1").is_some());
        assert!(fsm.input_by_name("C_CO(3)").is_some());
        assert_eq!(fsm.inputs().len(), 2);
        // Initial state is S0 (O0 has no predecessors).
        assert_eq!(fsm.state_name(fsm.initial()), "S0");
    }

    #[test]
    fn fig6_m1_behaviour_follows_paper_walkthrough() {
        let bound = fig3_bound();
        let fsm = unit_controller(&bound, UnitId(0));
        let s0 = fsm.state_by_name("S0").unwrap();
        let c_m1 = fsm.input_by_name("C_M1").unwrap();
        let c_po3 = fsm.input_by_name("C_CO(3)").unwrap();
        let of0 = fsm.output_by_name("OF0").unwrap();
        let re0 = fsm.output_by_name("RE0").unwrap();

        // In S0 with C_M1 short and O3 already done: straight to S1,
        // asserting OF0 RE0 C_CO(0).
        let (next, outs) = fsm.step(s0, |v| v == c_m1 || v == c_po3);
        assert_eq!(fsm.state_name(next), "S1");
        assert!(outs.contains(&of0) && outs.contains(&re0));

        // In S0 with C_M1 short but O3 pending: complete O0, wait in R1.
        let (next, outs) = fsm.step(s0, |v| v == c_m1);
        assert_eq!(fsm.state_name(next), "R1");
        assert!(outs.contains(&re0));

        // In S0 with C_M1 long: go to the extension state, fetch only.
        let (next, outs) = fsm.step(s0, |_| false);
        assert_eq!(fsm.state_name(next), "S0'");
        assert_eq!(outs, vec![of0]);

        // R1 waits for C_PO(3) and emits nothing.
        let r1 = fsm.state_by_name("R1").unwrap();
        let (next, outs) = fsm.step(r1, |_| false);
        assert_eq!(next, r1);
        assert!(outs.is_empty());
        let (next, _) = fsm.step(r1, |v| v == c_po3);
        assert_eq!(fsm.state_name(next), "S1");
    }

    #[test]
    fn non_tau_controller_has_no_extension_states() {
        let bound = fig3_bound();
        // A1 runs (O3, O2): O3 has no preds, O2 has cross-unit preds O1, O4.
        let fsm = unit_controller(&bound, UnitId(2));
        fsm.check().unwrap();
        assert!(fsm.state_by_name("S3").is_some());
        assert!(fsm.state_by_name("S2").is_some());
        assert!(fsm.state_by_name("R2").is_some());
        assert!(fsm.state_by_name("S3'").is_none());
        assert_eq!(fsm.num_states(), 3);
        // No own completion input (fixed delay).
        assert!(fsm.input_by_name("C_A1").is_none());
        assert!(fsm.input_by_name("C_CO(1)").is_some());
        assert!(fsm.input_by_name("C_CO(4)").is_some());
    }

    #[test]
    fn distributed_unit_optimizes_dead_completions() {
        let bound = fig3_bound();
        let cu = DistributedControlUnit::generate(&bound);
        assert_eq!(cu.controllers().len(), 4);
        // C_CO(0) is consumed by nobody (O0's only successor O1 shares M1),
        // so it must be optimized away — the paper's example in §4.2.
        let m1 = cu.controller(UnitId(0)).unwrap();
        assert!(m1.output_by_name("C_CO(0)").is_none());
        // C_CO(3) is consumed by both M1 (O1) and M2 (O4): kept on A1.
        let a1 = cu.controller(UnitId(2)).unwrap();
        assert!(a1.output_by_name("C_CO(3)").is_some());
        // Every controller still checks out.
        for (_, f) in cu.controllers() {
            f.check().unwrap();
        }
    }

    #[test]
    fn fig7_wiring() {
        let bound = fig3_bound();
        let cu = DistributedControlUnit::generate(&bound);
        let wiring = cu.signal_wiring();
        // A1 produces C_CO(3) for M1 and M2.
        assert!(wiring
            .iter()
            .any(|(p, s, c)| *p == UnitId(2) && s == "C_CO(3)" && *c == UnitId(0)));
        assert!(wiring
            .iter()
            .any(|(p, s, c)| *p == UnitId(2) && s == "C_CO(3)" && *c == UnitId(1)));
        // M2's O8 result feeds O5 on A2: C_CO(8) from M2 to A2.
        assert!(wiring
            .iter()
            .any(|(p, s, c)| *p == UnitId(1) && s == "C_CO(8)" && *c == UnitId(3)));
    }

    #[test]
    fn wiring_dot_renders_fig7() {
        let bound = fig3_bound();
        let cu = DistributedControlUnit::generate(&bound);
        let units = bound.allocation().units();
        let dot = cu.wiring_dot(|u| units[u.0].display_name());
        assert!(dot.contains("CONT_M1"));
        assert!(dot.contains("u2 -> u0 [label=\"C_CO(3)\"]"));
        assert!(dot.contains("ext_C_M1"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn diffeq_distributed_controllers_check() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let cu = DistributedControlUnit::generate(&bound);
        assert_eq!(cu.controllers().len(), 4);
        for (_, f) in cu.controllers() {
            f.check().unwrap();
        }
        assert!(cu.total_states() >= 12);
    }

    #[test]
    fn single_op_tau_unit_loops() {
        use tauhls_dfg::DfgBuilder;
        let mut b = DfgBuilder::new("one");
        let x = b.input("x");
        let m = b.mul(x.into(), x.into());
        b.output("y", m);
        let g = b.build().unwrap();
        let bound = BoundDfg::bind(&g, &Allocation::paper(1, 0, 0));
        let fsm = unit_controller(&bound, UnitId(0));
        fsm.check().unwrap();
        assert_eq!(fsm.num_states(), 2); // S0, S0'
        let s0 = fsm.state_by_name("S0").unwrap();
        let (n1, _) = fsm.step(s0, |_| true);
        assert_eq!(n1, s0); // short completion wraps immediately
    }
}
