//! # tauhls-fsm — controller generation for telescopic datapaths
//!
//! The controller-synthesis core of the `tauhls` workspace, implementing
//! the paper's §2.2 and §4:
//!
//! * [`Fsm`] — guarded Mealy machines with determinism/completeness
//!   checking, simulation stepping, and DOT export;
//! * [`unit_controller`] — **Algorithm 1**: the per-arithmetic-unit
//!   controller with `S`, `S'` and ready states (Fig 5/6);
//! * [`DistributedControlUnit`] — the distributed global control unit with
//!   dead completion-signal optimization (Fig 7);
//! * [`cent_sync_fsm`] — the synchronized centralized TAUBM controller
//!   (Fig 2c / Fig 4b), whose split steps advance only when *all* active
//!   TAUs complete;
//! * [`synchronous_product`] — the CENT-FSM construction (Fig 4a),
//!   exhibiting the exponential state growth of unsynchronized centralized
//!   control;
//! * [`synthesize`] — state encoding, two-level logic minimization and the
//!   combinational/sequential area split of Table 1.
//!
//! # Examples
//!
//! Generate and synthesize the paper's Fig 6 controller:
//!
//! ```
//! use tauhls_fsm::{unit_controller, synthesize, Encoding};
//! use tauhls_logic::AreaModel;
//! use tauhls_sched::{Allocation, BoundDfg, UnitId};
//! use tauhls_dfg::{benchmarks::fig3_dfg, OpId};
//!
//! let bound = BoundDfg::bind_explicit(
//!     &fig3_dfg(),
//!     &Allocation::paper(2, 2, 0),
//!     vec![
//!         vec![OpId(0), OpId(1)],
//!         vec![OpId(6), OpId(4), OpId(8)],
//!         vec![OpId(3), OpId(2)],
//!         vec![OpId(7), OpId(5)],
//!     ],
//! ).unwrap();
//! let fsm = unit_controller(&bound, UnitId(0));
//! assert_eq!(fsm.num_states(), 5);      // S0 S0' S1 S1' R1
//! assert_eq!(fsm.transitions().len(), 10);
//! let syn = synthesize(&fsm, Encoding::Binary, &AreaModel::default());
//! assert_eq!(syn.flip_flops(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributed;
mod machine;
mod minimize;
mod multilevel;
mod product;
mod rtl;
mod synth;
mod taubm_fsm;

pub use distributed::{
    optimize_dead_completions, signals, unit_controller, unit_controller_opts,
    DistributedControlUnit,
};
pub use machine::{run_trace, Fsm, FsmError, StateId, Transition};
pub use minimize::{equivalent_behaviour, minimize_states};
pub use multilevel::{level_completion, unit_controller_multilevel};
pub use product::synchronous_product;
pub use rtl::{control_unit_to_verilog, to_verilog, verilog_ident};
pub use synth::{synthesize, verify_synthesis, Encoding, SynthesizedFsm};
pub use taubm_fsm::{cent_sync_fsm, cent_sync_fsm_with_schedule};
