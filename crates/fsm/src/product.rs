//! Synchronous product composition — the CENT-FSM style of Fig 4(a).
//!
//! A centralized controller that tracks every TAU's completion
//! independently is, semantically, the synchronous product of the per-unit
//! controllers with the inter-controller completion signals internalized.
//! Building it explicitly exhibits the paper's point: the reachable state
//! count grows exponentially with the number of concurrently active TAUs,
//! while the distributed realization keeps the components separate.

use crate::machine::{Fsm, StateId};
use std::collections::HashMap;
use tauhls_logic::{Cube, Expr};

/// Maximum number of external inputs a product may enumerate (2^k input
/// minterms per composite state).
const MAX_EXTERNAL_INPUTS: usize = 16;

/// Builds the reachable synchronous product of `components`.
///
/// Signals are wired **by name**: an input of one component that matches an
/// output name of another becomes an internal wire and disappears from the
/// product interface. Internal wires are resolved per cycle by fixpoint
/// iteration (completion outputs of Algorithm-1 controllers depend only on
/// their own state and external inputs, so the fixpoint converges in two
/// rounds; a cyclic combinational dependence panics).
///
/// # Panics
///
/// Panics if `components` is empty, if the external input count exceeds 16,
/// or if the internal-signal fixpoint fails to converge (combinational
/// loop).
pub fn synchronous_product(name: &str, components: &[&Fsm]) -> Fsm {
    assert!(!components.is_empty(), "product of nothing");
    // Classify signals.
    let mut produced: HashMap<&str, (usize, usize)> = HashMap::new(); // name -> (component, output idx)
    for (ci, f) in components.iter().enumerate() {
        for (oi, out) in f.outputs().iter().enumerate() {
            let prev = produced.insert(out.as_str(), (ci, oi));
            assert!(prev.is_none(), "output {out} produced by two components");
        }
    }
    let mut external_inputs: Vec<String> = Vec::new();
    for f in components {
        for inp in f.inputs() {
            if !produced.contains_key(inp.as_str()) && !external_inputs.iter().any(|e| e == inp) {
                external_inputs.push(inp.clone());
            }
        }
    }
    assert!(
        external_inputs.len() <= MAX_EXTERNAL_INPUTS,
        "too many external inputs to enumerate"
    );

    let mut product = Fsm::new(name.to_string());
    let ext_idx: Vec<usize> = external_inputs
        .iter()
        .map(|n| product.add_input(n.clone()))
        .collect();
    // External outputs: everything not consumed internally.
    let consumed: Vec<String> = components
        .iter()
        .flat_map(|f| f.inputs().iter().cloned())
        .collect();
    let mut out_idx: HashMap<String, usize> = HashMap::new();
    for f in components {
        for out in f.outputs() {
            if !consumed.iter().any(|c| c == out) {
                let idx = product.add_output(out.clone());
                out_idx.insert(out.clone(), idx);
            }
        }
    }

    // BFS over reachable composite states.
    let initial: Vec<StateId> = components.iter().map(|f| f.initial()).collect();
    let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let tuple_name = |t: &[StateId]| {
        components
            .iter()
            .zip(t)
            .map(|(f, &s)| f.state_name(s))
            .collect::<Vec<_>>()
            .join(".")
    };
    let init_id = product.add_state(tuple_name(&initial));
    ids.insert(initial.clone(), init_id);
    let mut queue = vec![initial];

    while let Some(tuple) = queue.pop() {
        let from_id = ids[&tuple];
        // Collect transitions per (next tuple, output set) to merge guards.
        let mut buckets: HashMap<(Vec<StateId>, Vec<usize>), Vec<u64>> = HashMap::new();
        for minterm in 0..1u64 << external_inputs.len() {
            let (next, outs) = step_product(components, &tuple, &external_inputs, minterm);
            let mut ext_outs: Vec<usize> = outs
                .iter()
                .filter_map(|n| out_idx.get(n.as_str()).copied())
                .collect();
            ext_outs.sort_unstable();
            ext_outs.dedup();
            buckets.entry((next, ext_outs)).or_default().push(minterm);
        }
        let mut entries: Vec<_> = buckets.into_iter().collect();
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0 .1.cmp(&b.0 .1)));
        for ((next, outs), minterms) in entries {
            let to_id = *ids.entry(next.clone()).or_insert_with(|| {
                queue.push(next.clone());
                product.add_state(tuple_name(&next))
            });
            let guard = minterms_to_expr(&minterms, &ext_idx);
            product.add_transition(from_id, to_id, guard, outs);
        }
    }
    product
}

/// One synchronous step of the composition under an external input minterm,
/// returning the next component states and the names of all asserted
/// outputs.
pub(crate) fn step_product(
    components: &[&Fsm],
    tuple: &[StateId],
    external_inputs: &[String],
    minterm: u64,
) -> (Vec<StateId>, Vec<String>) {
    // Fixpoint over internal signal values.
    let mut internal: HashMap<String, bool> = HashMap::new();
    let max_iter = components.len() + 2;
    let mut last: Option<(Vec<StateId>, Vec<String>)> = None;
    for _ in 0..max_iter {
        let mut next_states = Vec::with_capacity(components.len());
        let mut asserted: Vec<String> = Vec::new();
        for (f, &st) in components.iter().zip(tuple) {
            let (nx, outs) = f.step(st, |v| {
                let name = &f.inputs()[v];
                if let Some(pos) = external_inputs.iter().position(|e| e == name) {
                    minterm >> pos & 1 == 1
                } else {
                    internal.get(name.as_str()).copied().unwrap_or(false)
                }
            });
            next_states.push(nx);
            for o in outs {
                asserted.push(f.outputs()[o].clone());
            }
        }
        let new_internal: HashMap<String, bool> =
            asserted.iter().map(|n| (n.clone(), true)).collect();
        let stable = new_internal
            .keys()
            .all(|k| internal.get(k).copied().unwrap_or(false))
            && internal
                .iter()
                .all(|(k, &v)| !v || new_internal.contains_key(k));
        internal = new_internal;
        let result = (next_states, asserted);
        if stable {
            return result;
        }
        last = Some(result);
    }
    // One extra settling check: if the last two iterations agreed we are
    // fine; otherwise the combinational wiring oscillates.
    last.expect("at least one iteration ran")
}

/// Builds a guard expression as a disjunction of input minterms.
fn minterms_to_expr(minterms: &[u64], ext_idx: &[usize]) -> Expr {
    if minterms.len() == 1 << ext_idx.len() {
        return Expr::truth();
    }
    // Merge minterms into cubes via the logic crate for compact guards.
    let primes = tauhls_logic::prime_implicants(ext_idx.len(), minterms);
    // Cover greedily: keep primes that cover at least one minterm not yet
    // covered (primes from the minterm set alone are all valid).
    let mut remaining: Vec<u64> = minterms.to_vec();
    let mut chosen: Vec<Cube> = Vec::new();
    for p in primes {
        if remaining.iter().any(|&m| p.covers_minterm(m)) {
            remaining.retain(|&m| !p.covers_minterm(m));
            chosen.push(p);
        }
        if remaining.is_empty() {
            break;
        }
    }
    Expr::any(chosen.into_iter().map(|c| {
        Expr::all((0..ext_idx.len()).filter_map(|v| {
            c.literal(v).map(|pol| {
                let var = Expr::var(ext_idx[v]);
                if pol {
                    var
                } else {
                    var.not()
                }
            })
        }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::unit_controller;
    use tauhls_dfg::{DfgBuilder, OpId};
    use tauhls_sched::{Allocation, BoundDfg, UnitId};

    /// n independent single-multiplication "units": the Fig 4(a) set-up.
    fn independent_taus(n: usize) -> (BoundDfg, Vec<Fsm>) {
        let mut b = DfgBuilder::new(format!("ind{n}"));
        let x = b.input("x");
        let mut ids = Vec::new();
        for i in 0..n {
            let m = b.mul(x.into(), x.into());
            b.output(format!("y{i}"), m);
            ids.push(m);
        }
        let g = b.build().unwrap();
        let alloc = Allocation::paper(n, 0, 0);
        let bound = BoundDfg::bind_explicit(&g, &alloc, ids.into_iter().map(|i| vec![i]).collect())
            .unwrap();
        let fsms: Vec<Fsm> = (0..n).map(|u| unit_controller(&bound, UnitId(u))).collect();
        (bound, fsms)
    }

    #[test]
    fn fig4a_two_taus_have_four_states_and_four_way_branching() {
        let (_, fsms) = independent_taus(2);
        let refs: Vec<&Fsm> = fsms.iter().collect();
        let p = synchronous_product("CENT", &refs);
        p.check().unwrap();
        // Component state spaces are {S, S'} each: product = 4 states.
        assert_eq!(p.num_states(), 4);
        // From (S0,S1) there are 2^2 = 4 distinct input behaviours.
        let init = p.initial();
        assert_eq!(p.transitions_from(init).len(), 4);
    }

    #[test]
    fn product_states_grow_exponentially() {
        let mut prev = 0;
        for n in 1..=4 {
            let (_, fsms) = independent_taus(n);
            let refs: Vec<&Fsm> = fsms.iter().collect();
            let p = synchronous_product("CENT", &refs);
            assert_eq!(p.num_states(), 1 << n, "n={n}");
            assert!(p.num_states() > prev);
            prev = p.num_states();
        }
    }

    #[test]
    fn product_internalizes_completion_signals() {
        // Two chained ops on different units: the C_CO wire disappears.
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let m = b.mul(x.into(), x.into());
        let a = b.add(m.into(), x.into());
        b.output("y", a);
        let g = b.build().unwrap();
        let bound = BoundDfg::bind(&g, &Allocation::paper(1, 1, 0));
        let f0 = unit_controller(&bound, UnitId(0));
        let f1 = unit_controller(&bound, UnitId(1));
        let p = synchronous_product("CENT", &[&f0, &f1]);
        p.check().unwrap();
        assert!(p.input_by_name("C_M1").is_some());
        assert!(p.input_by_name(&format!("C_CO({})", m.0)).is_none());
        // OF/RE outputs survive.
        assert!(p.output_by_name(&format!("OF{}", a.0)).is_some());
    }

    #[test]
    fn product_behaviour_matches_components() {
        // Drive the chain product and check the dependent add only fires
        // after the multiplication completes.
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let m = b.mul(x.into(), x.into());
        let a = b.add(m.into(), x.into());
        b.output("y", a);
        let g = b.build().unwrap();
        let bound = BoundDfg::bind(&g, &Allocation::paper(1, 1, 0));
        let f0 = unit_controller(&bound, UnitId(0));
        let f1 = unit_controller(&bound, UnitId(1));
        let p = synchronous_product("CENT", &[&f0, &f1]);
        let re_a = p.output_by_name(&format!("RE{}", a.0)).unwrap();
        let re_m = p.output_by_name(&format!("RE{}", m.0)).unwrap();

        // Cycle 1: C_M1 low -> mult extends; adder must not latch.
        let (s1, outs) = p.step(p.initial(), |_| false);
        assert!(!outs.contains(&re_a));
        assert!(!outs.contains(&re_m));
        // Cycle 2: extension completes the mult; adder sees C_CO same
        // cycle it is asserted? The adder waits in R until C_CO(m) -> the
        // completion propagates combinationally, so the adder leaves R now.
        let (s2, outs) = p.step(s1, |_| false);
        assert!(outs.contains(&re_m));
        // Cycle 3: adder executes and latches.
        let (_, outs) = p.step(s2, |_| false);
        assert!(outs.contains(&re_a));
    }

    #[test]
    fn fig3_cent_fsm_builds_and_checks() {
        use tauhls_dfg::benchmarks::fig3_dfg;
        let bound = BoundDfg::bind_explicit(
            &fig3_dfg(),
            &Allocation::paper(2, 2, 0),
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap();
        let fsms: Vec<Fsm> = (0..4).map(|u| unit_controller(&bound, UnitId(u))).collect();
        let refs: Vec<&Fsm> = fsms.iter().collect();
        let p = synchronous_product("CENT(fig3)", &refs);
        p.check().unwrap();
        // Far fewer than the 5*7*3*3 = 315 raw combinations are reachable,
        // but well more than the 7 CENT-SYNC states.
        assert!(p.num_states() > 7, "{}", p.num_states());
        assert!(p.num_states() < 100, "{}", p.num_states());
        assert_eq!(p.inputs().len(), 2); // C_M1, C_M2 only
    }
}
