//! Graphviz DOT export of dataflow graphs (used by the figure
//! regeneration binaries and `tauhls dfg dot`).
//!
//! Graph names, input names, and output names come from user-supplied
//! text since the wire format landed, so every label is escaped and
//! every node id that embeds user text (or a negative constant) is
//! emitted as a quoted DOT string — a hostile input name cannot break
//! out of its attribute list.

use crate::graph::{Dfg, Operand};
use std::fmt::Write as _;

/// Escapes `text` for use inside a double-quoted DOT string: `"` and
/// `\` are backslash-escaped, newlines become the DOT `\n` label break,
/// and other control characters are dropped.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if c.is_control() => {}
            c => out.push(c),
        }
    }
    out
}

/// A quoted DOT id built from a prefix and user-controlled text.
fn quoted(prefix: &str, text: &str) -> String {
    format!("\"{}{}\"", escape(prefix), escape(text))
}

/// Renders the DFG in Graphviz DOT syntax. Operation nodes are labelled
/// `O{i}` with their operator symbol; primary inputs are plain ovals;
/// optional `extra_arcs` (e.g. schedule arcs) are drawn dashed.
pub fn to_dot(dfg: &Dfg, extra_arcs: &[(crate::graph::OpId, crate::graph::OpId)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(dfg.name()));
    let _ = writeln!(s, "  rankdir=TB;");
    for (i, name) in dfg.input_names().iter().enumerate() {
        let _ = writeln!(s, "  in{i} [label=\"{}\", shape=plaintext];", escape(name));
    }
    for v in dfg.op_ids() {
        let op = dfg.op(v);
        let _ = writeln!(
            s,
            "  op{} [label=\"O{} [{}]\", shape=circle];",
            v.0,
            v.0,
            escape(op.kind.symbol())
        );
    }
    for v in dfg.op_ids() {
        let op = dfg.op(v);
        for operand in [op.lhs, op.rhs] {
            match operand {
                Operand::Input(i) => {
                    let _ = writeln!(s, "  in{} -> op{};", i.0, v.0);
                }
                Operand::Op(p) => {
                    let _ = writeln!(s, "  op{} -> op{};", p.0, v.0);
                }
                Operand::Const(c) => {
                    // The id embeds the value, which may be negative —
                    // always quote it.
                    let id = quoted("const_", &format!("{}_{c}", v.0));
                    let _ = writeln!(
                        s,
                        "  {id} [label=\"{c}\", shape=plaintext]; {id} -> op{};",
                        v.0
                    );
                }
            }
        }
    }
    for (a, b) in extra_arcs {
        let _ = writeln!(s, "  op{} -> op{} [style=dashed, color=gray];", a.0, b.0);
    }
    for (name, o) in dfg.outputs() {
        let id = quoted("out_", name);
        let _ = writeln!(s, "  {id} [label=\"{}\", shape=plaintext];", escape(name));
        let _ = writeln!(s, "  op{} -> {id};", o.0);
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::fig2_dfg;
    use crate::graph::{DfgBuilder, OpId, Operand};

    #[test]
    fn dot_mentions_every_node_and_edge_style() {
        let g = fig2_dfg();
        let dot = to_dot(&g, &[(OpId(0), OpId(3))]);
        for v in g.op_ids() {
            assert!(dot.contains(&format!("op{}", v.0)));
        }
        assert!(dot.contains("style=dashed"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn hostile_names_are_escaped_and_quoted() {
        let mut b = DfgBuilder::new("evil\"];x[label=\"pwn");
        let a = b.input("a\"b\\c\nd");
        let s = b.add(Operand::Input(a), Operand::Const(-5));
        b.output("out\"put", s);
        let g = b.build().expect("valid graph");
        let dot = to_dot(&g, &[]);
        // No raw quote from a label can terminate its DOT string: every
        // user-text quote is escaped.
        assert!(
            dot.contains("digraph \"evil\\\"];x[label=\\\"pwn\""),
            "{dot}"
        );
        assert!(dot.contains("label=\"a\\\"b\\\\c\\nd\""), "{dot}");
        // Negative const ids are quoted, not bare (bare `const_0_-5` is
        // invalid DOT).
        assert!(dot.contains("\"const_0_-5\""), "{dot}");
        assert!(dot.contains("\"out_out\\\"put\""), "{dot}");
        // Structure survives: every line inside the digraph is a node or
        // edge statement, and the braces balance.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
