//! Graphviz DOT export of dataflow graphs (used by the figure
//! regeneration binaries).

use crate::graph::{Dfg, Operand};
use std::fmt::Write as _;

/// Renders the DFG in Graphviz DOT syntax. Operation nodes are labelled
/// `O{i}` with their operator symbol; primary inputs are plain ovals;
/// optional `extra_arcs` (e.g. schedule arcs) are drawn dashed.
pub fn to_dot(dfg: &Dfg, extra_arcs: &[(crate::graph::OpId, crate::graph::OpId)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(s, "  rankdir=TB;");
    for (i, name) in dfg.input_names().iter().enumerate() {
        let _ = writeln!(s, "  in{i} [label=\"{name}\", shape=plaintext];");
    }
    for v in dfg.op_ids() {
        let op = dfg.op(v);
        let _ = writeln!(
            s,
            "  op{} [label=\"O{} [{}]\", shape=circle];",
            v.0,
            v.0,
            op.kind.symbol()
        );
    }
    for v in dfg.op_ids() {
        let op = dfg.op(v);
        for operand in [op.lhs, op.rhs] {
            match operand {
                Operand::Input(i) => {
                    let _ = writeln!(s, "  in{} -> op{};", i.0, v.0);
                }
                Operand::Op(p) => {
                    let _ = writeln!(s, "  op{} -> op{};", p.0, v.0);
                }
                Operand::Const(c) => {
                    let _ = writeln!(
                        s,
                        "  const_{}_{c} [label=\"{c}\", shape=plaintext]; const_{}_{c} -> op{};",
                        v.0, v.0, v.0
                    );
                }
            }
        }
    }
    for (a, b) in extra_arcs {
        let _ = writeln!(s, "  op{} -> op{} [style=dashed, color=gray];", a.0, b.0);
    }
    for (name, o) in dfg.outputs() {
        let _ = writeln!(s, "  out_{name} [label=\"{name}\", shape=plaintext];");
        let _ = writeln!(s, "  op{} -> out_{name};", o.0);
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::fig2_dfg;
    use crate::graph::OpId;

    #[test]
    fn dot_mentions_every_node_and_edge_style() {
        let g = fig2_dfg();
        let dot = to_dot(&g, &[(OpId(0), OpId(3))]);
        for v in g.op_ids() {
            assert!(dot.contains(&format!("op{}", v.0)));
        }
        assert!(dot.contains("style=dashed"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
