//! Strict JSON DAG wire format for user-supplied dataflow graphs.
//!
//! The document shape mirrors the service's `JobSpec` discipline: strict
//! RFC 8259 JSON, unknown keys rejected, and every error carries a byte
//! offset into the submitted text (`"byte {offset}: {message}"`) so a
//! client can point at the exact defect. The format:
//!
//! ```json
//! {
//!   "nodes": [
//!     {"id": "a",  "op": "input"},
//!     {"id": "k",  "op": "const", "value": 3},
//!     {"id": "m0", "op": "mul"},
//!     {"id": "s0", "op": "add"}
//!   ],
//!   "edges": [
//!     {"from": "a",  "to": "m0", "port": 0},
//!     {"from": "k",  "to": "m0", "port": 1},
//!     {"from": "m0", "to": "s0"},
//!     {"from": "a",  "to": "s0"}
//!   ],
//!   "outputs": {"y": "s0"},
//!   "params": {"name": "axpy"}
//! }
//! ```
//!
//! Semantics: `input`/`const` nodes are sources (no incoming edges);
//! every `add`/`sub`/`mul`/`lt` node takes exactly two operands. An edge
//! may pin its operand slot with `"port": 0|1`; unported edges fill the
//! lowest free port in edge-list order. The graph must be acyclic
//! (checked iteratively — deeply chained graphs cannot overflow the
//! stack) and declare at least one output naming an op node.
//!
//! [`dfg_to_wire`] renders any [`Dfg`] back into the format in a
//! canonical form (deterministic node ids and ordering); the canonical
//! rendering is a fixed point of parse→render, which is what lets the
//! service embed it verbatim in content-addressed cache keys.

use std::collections::HashMap;
use std::fmt;

use tauhls_json::Json;

use crate::graph::{Dfg, DfgBuilder, InputId, OpId, OpKind, Operand};

/// Hard cap on `nodes` in one wire document; edges are capped at twice
/// this (each op node carries exactly two incoming edges).
pub const MAX_WIRE_NODES: usize = 1024;
/// Byte-length cap for node ids, output names, and the graph name.
pub const MAX_WIRE_NAME: usize = 64;

/// A wire-format rejection: a byte offset into the submitted text plus
/// a message, rendered exactly like [`tauhls_json::JsonParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the submitted document near the defect.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, WireError> {
    Err(WireError {
        offset,
        message: message.into(),
    })
}

/// Byte offset of the `n`-th (0-based) occurrence of `needle`, or 0 when
/// the text has fewer occurrences. Node ids and names are restricted to
/// an escape-free charset, so a quoted token appears in the source
/// exactly as rendered here.
fn nth_offset(text: &str, needle: &str, n: usize) -> usize {
    let mut from = 0;
    let mut count = 0;
    while let Some(at) = text[from..].find(needle) {
        let pos = from + at;
        if count == n {
            return pos;
        }
        count += 1;
        from = pos + needle.len();
    }
    0
}

/// Whether `s` is a legal wire identifier: non-empty, at most
/// [`MAX_WIRE_NAME`] bytes, ASCII alphanumerics plus `_`, `-`, `.`.
/// The charset deliberately excludes anything JSON would escape, so an
/// identifier's quoted form equals its byte content in the source text.
pub fn valid_wire_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= MAX_WIRE_NAME
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

/// FNV-1a 64 over `text` — the content hash `/v1/dfg/validate` reports
/// for a canonical wire rendering.
pub fn wire_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[derive(Clone, Copy, PartialEq)]
enum NodeKind {
    Input(usize),
    Const(i64),
    Op(usize),
}

struct WireNode {
    id: String,
    kind: NodeKind,
    op_kind: Option<OpKind>,
    anchor: usize,
}

fn op_kind_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Add => "add",
        OpKind::Sub => "sub",
        OpKind::Mul => "mul",
        OpKind::Lt => "lt",
    }
}

fn parse_op_kind(s: &str) -> Option<OpKind> {
    match s {
        "add" => Some(OpKind::Add),
        "sub" => Some(OpKind::Sub),
        "mul" => Some(OpKind::Mul),
        "lt" => Some(OpKind::Lt),
        _ => None,
    }
}

/// Parses a strict wire-format document into a [`Dfg`].
///
/// Every rejection — JSON syntax, schema, duplicate ids, dangling or
/// self edges, arity, cycles — returns a [`WireError`] whose offset
/// points into `text` near the defect.
pub fn parse_wire_dfg(text: &str) -> Result<Dfg, WireError> {
    let doc = Json::parse(text).map_err(|e| WireError {
        offset: e.offset,
        message: e.message,
    })?;
    let Some(top) = doc.as_object() else {
        return err(0, "top level must be an object");
    };
    const TOP_KEYS: [&str; 4] = ["nodes", "edges", "outputs", "params"];
    let mut seen_top: Vec<&str> = Vec::new();
    for (key, _) in top {
        let anchor = nth_offset(text, &format!("\"{key}\""), 0);
        if !TOP_KEYS.contains(&key.as_str()) {
            return err(
                anchor,
                format!("unknown key '{key}' (allowed: nodes, edges, outputs, params)"),
            );
        }
        if seen_top.contains(&key.as_str()) {
            return err(anchor, format!("duplicate key '{key}'"));
        }
        seen_top.push(key);
    }

    // ---- nodes -------------------------------------------------------
    let nodes_json = match doc.get("nodes").and_then(Json::as_array) {
        Some(a) => a,
        None => return err(0, "'nodes' must be an array of node objects"),
    };
    if nodes_json.is_empty() {
        return err(
            nth_offset(text, "\"nodes\"", 0),
            "'nodes' must not be empty",
        );
    }
    if nodes_json.len() > MAX_WIRE_NODES {
        return err(
            nth_offset(text, "\"nodes\"", 0),
            format!("too many nodes: {} > {MAX_WIRE_NODES}", nodes_json.len()),
        );
    }

    let mut nodes: Vec<WireNode> = Vec::with_capacity(nodes_json.len());
    let mut by_id: HashMap<String, usize> = HashMap::new();
    let (mut num_inputs, mut num_ops) = (0usize, 0usize);
    for (i, node) in nodes_json.iter().enumerate() {
        let anchor = nth_offset(text, "\"id\"", i);
        let Some(pairs) = node.as_object() else {
            return err(anchor, format!("node {i} must be an object"));
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "id" | "op" | "value") {
                return err(
                    anchor,
                    format!("node {i}: unknown key '{key}' (allowed: id, op, value)"),
                );
            }
        }
        let Some(id) = node.get("id").and_then(Json::as_str) else {
            return err(anchor, format!("node {i}: 'id' must be a string"));
        };
        if !valid_wire_id(id) {
            return err(
                anchor,
                format!(
                    "node {i}: invalid id {id:?} (1..={MAX_WIRE_NAME} bytes of \
                     ASCII alphanumerics, '_', '-', '.')"
                ),
            );
        }
        let anchor = nth_offset(text, &format!("\"{id}\""), 0);
        if by_id.contains_key(id) {
            return err(
                nth_offset(text, &format!("\"{id}\""), 1),
                format!("duplicate node id '{id}'"),
            );
        }
        let Some(op) = node.get("op").and_then(Json::as_str) else {
            return err(anchor, format!("node '{id}': 'op' must be a string"));
        };
        let value = node.get("value");
        if value.is_some() && op != "const" {
            return err(
                anchor,
                format!("node '{id}': 'value' is only allowed on const nodes"),
            );
        }
        let kind = match op {
            "input" => {
                num_inputs += 1;
                NodeKind::Input(num_inputs - 1)
            }
            "const" => {
                let value = match value {
                    Some(&Json::Int(v)) => v,
                    Some(&Json::UInt(v)) if v <= i64::MAX as u64 => v as i64,
                    Some(_) => {
                        return err(anchor, format!("node '{id}': 'value' must be an integer"))
                    }
                    None => return err(anchor, format!("node '{id}': const nodes need a 'value'")),
                };
                NodeKind::Const(value)
            }
            other => match parse_op_kind(other) {
                Some(_) => {
                    num_ops += 1;
                    NodeKind::Op(num_ops - 1)
                }
                None => {
                    return err(
                        anchor,
                        format!(
                            "node '{id}': unknown op {other:?} \
                             (allowed: input, const, add, sub, mul, lt)"
                        ),
                    )
                }
            },
        };
        by_id.insert(id.to_string(), i);
        nodes.push(WireNode {
            id: id.to_string(),
            kind,
            op_kind: parse_op_kind(op),
            anchor,
        });
    }

    // ---- edges -------------------------------------------------------
    let edges_json = match doc.get("edges").and_then(Json::as_array) {
        Some(a) => a,
        None => return err(0, "'edges' must be an array of edge objects"),
    };
    if edges_json.len() > 2 * MAX_WIRE_NODES {
        return err(
            nth_offset(text, "\"edges\"", 0),
            format!(
                "too many edges: {} > {}",
                edges_json.len(),
                2 * MAX_WIRE_NODES
            ),
        );
    }
    // Per op node: the two operand slots, filled by edges.
    let mut slots: Vec<[Option<Operand>; 2]> = vec![[None, None]; num_ops];
    for (j, edge) in edges_json.iter().enumerate() {
        let anchor = nth_offset(text, "\"from\"", j);
        let Some(pairs) = edge.as_object() else {
            return err(anchor, format!("edge {j} must be an object"));
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "from" | "to" | "port") {
                return err(
                    anchor,
                    format!("edge {j}: unknown key '{key}' (allowed: from, to, port)"),
                );
            }
        }
        let Some(from) = edge.get("from").and_then(Json::as_str) else {
            return err(anchor, format!("edge {j}: 'from' must be a string node id"));
        };
        let Some(to) = edge.get("to").and_then(Json::as_str) else {
            return err(anchor, format!("edge {j}: 'to' must be a string node id"));
        };
        let Some(&src) = by_id.get(from) else {
            return err(anchor, format!("edge {j}: unknown node '{from}' in 'from'"));
        };
        let Some(&dst) = by_id.get(to) else {
            return err(anchor, format!("edge {j}: unknown node '{to}' in 'to'"));
        };
        if src == dst {
            return err(anchor, format!("edge {j}: self-edge on node '{to}'"));
        }
        let NodeKind::Op(op_index) = nodes[dst].kind else {
            return err(
                anchor,
                format!("edge {j}: node '{to}' is not an op node and cannot receive edges"),
            );
        };
        let port = match edge.get("port") {
            None => None,
            Some(p) => match p.as_u64() {
                Some(p @ 0..=1) => Some(p as usize),
                _ => return err(anchor, format!("edge {j}: 'port' must be 0 or 1")),
            },
        };
        let operand = match nodes[src].kind {
            NodeKind::Input(k) => Operand::Input(InputId(k)),
            NodeKind::Const(v) => Operand::Const(v),
            NodeKind::Op(k) => Operand::Op(OpId(k)),
        };
        let slot = match port {
            Some(p) => {
                if slots[op_index][p].is_some() {
                    return err(
                        anchor,
                        format!("edge {j}: port {p} of node '{to}' is driven twice"),
                    );
                }
                p
            }
            None => match slots[op_index].iter().position(Option::is_none) {
                Some(p) => p,
                None => {
                    return err(
                        anchor,
                        format!("edge {j}: node '{to}' has more than 2 incoming edges"),
                    )
                }
            },
        };
        slots[op_index][slot] = Some(operand);
    }
    for node in &nodes {
        if let NodeKind::Op(k) = node.kind {
            let have = slots[k].iter().flatten().count();
            if have != 2 {
                return err(
                    node.anchor,
                    format!(
                        "op node '{}' needs exactly 2 incoming edges, has {have}",
                        node.id
                    ),
                );
            }
        }
    }

    // ---- outputs -----------------------------------------------------
    let outputs_anchor = nth_offset(text, "\"outputs\"", 0);
    let outputs_json = match doc.get("outputs").and_then(Json::as_object) {
        Some(o) => o,
        None => {
            return err(
                outputs_anchor,
                "'outputs' must be an object of name -> op node id",
            )
        }
    };
    if outputs_json.is_empty() {
        return err(outputs_anchor, "at least one output is required");
    }
    let mut outputs: Vec<(String, OpId)> = Vec::with_capacity(outputs_json.len());
    for (name, target) in outputs_json {
        let anchor = {
            let needle = format!("\"{name}\"");
            match text[outputs_anchor..].find(&needle) {
                Some(at) => outputs_anchor + at,
                None => outputs_anchor,
            }
        };
        if !valid_wire_id(name) {
            return err(
                anchor,
                format!(
                    "invalid output name {name:?} (1..={MAX_WIRE_NAME} bytes of \
                     ASCII alphanumerics, '_', '-', '.')"
                ),
            );
        }
        if outputs.iter().any(|(n, _)| n == name) {
            return err(anchor, format!("duplicate output name '{name}'"));
        }
        let Some(id) = target.as_str() else {
            return err(anchor, format!("output '{name}' must be a string node id"));
        };
        let Some(&node) = by_id.get(id) else {
            return err(anchor, format!("output '{name}': unknown node '{id}'"));
        };
        let NodeKind::Op(k) = nodes[node].kind else {
            return err(anchor, format!("output '{name}' must reference an op node"));
        };
        outputs.push((name.clone(), OpId(k)));
    }

    // ---- params ------------------------------------------------------
    let mut name = "dfg".to_string();
    if let Some(params) = doc.get("params") {
        let anchor = nth_offset(text, "\"params\"", 0);
        let Some(pairs) = params.as_object() else {
            return err(anchor, "'params' must be an object");
        };
        for (key, value) in pairs {
            match key.as_str() {
                "name" => match value.as_str() {
                    Some(n) if valid_wire_id(n) => name = n.to_string(),
                    _ => {
                        return err(
                            anchor,
                            format!(
                                "params.name must be a string of 1..={MAX_WIRE_NAME} bytes of \
                                 ASCII alphanumerics, '_', '-', '.'"
                            ),
                        )
                    }
                },
                other => {
                    return err(
                        anchor,
                        format!("params: unknown key '{other}' (allowed: name)"),
                    )
                }
            }
        }
    }

    // ---- cycle check (iterative: depth bombs cannot overflow) --------
    // Dfg::validate would find cycles too, but its DFS recurses; a
    // 1000-deep chain of forward references is fine for it only because
    // MAX_WIRE_NODES bounds depth. The check here is explicit and
    // iterative, and reports the offending node id with an offset.
    let mut color = vec![0u8; num_ops]; // 0 new, 1 on stack, 2 done
    let preds = |k: usize| -> Vec<usize> {
        slots[k]
            .iter()
            .flatten()
            .filter_map(|o| match o {
                Operand::Op(OpId(p)) => Some(*p),
                _ => None,
            })
            .collect()
    };
    for start in 0..num_ops {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(start, preds(start), 0)];
        color[start] = 1;
        while let Some((node, ps, next)) = stack.pop() {
            if next < ps.len() {
                let p = ps[next];
                stack.push((node, ps, next + 1));
                match color[p] {
                    0 => {
                        color[p] = 1;
                        let pp = preds(p);
                        stack.push((p, pp, 0));
                    }
                    1 => {
                        let wire = nodes.iter().find(|n| n.kind == NodeKind::Op(p));
                        let (anchor, id) =
                            wire.map(|n| (n.anchor, n.id.as_str())).unwrap_or((0, "?"));
                        return err(anchor, format!("cycle through node '{id}'"));
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
            }
        }
    }

    // ---- build -------------------------------------------------------
    let mut builder = DfgBuilder::new(name);
    for node in &nodes {
        if matches!(node.kind, NodeKind::Input(_)) {
            builder.input(node.id.clone());
        }
    }
    for node in &nodes {
        if let NodeKind::Op(k) = node.kind {
            let kind = node.op_kind.unwrap_or(OpKind::Add);
            let (lhs, rhs) = (slots[k][0], slots[k][1]);
            match (lhs, rhs) {
                (Some(lhs), Some(rhs)) => {
                    builder.op(kind, lhs, rhs);
                }
                _ => {
                    return err(
                        node.anchor,
                        format!("op node '{}' lost an operand", node.id),
                    )
                }
            }
        }
    }
    for (name, op) in outputs {
        builder.output(name, op);
    }
    builder.build().map_err(|e| WireError {
        offset: 0,
        message: format!("invalid graph: {e}"),
    })
}

/// Deterministic, collision-free wire identifier assignment for
/// [`dfg_to_wire`]: sanitize into the legal charset, then suffix `_`
/// until unique.
fn assign_id(used: &mut Vec<String>, candidate: &str) -> String {
    let mut id: String = candidate
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .take(MAX_WIRE_NAME / 2)
        .collect();
    if id.is_empty() {
        id.push('n');
    }
    while used.iter().any(|u| u == &id) {
        id.push('_');
    }
    used.push(id.clone());
    id
}

/// Renders a [`Dfg`] into the canonical wire form: inputs first (in
/// input order, ids from the input names), then const nodes (first-use
/// order, ids `c{value}`), then ops (ids `n{index}`), all edges with
/// explicit ports, outputs in declaration order, and the graph name in
/// `params`. The rendering is a fixed point of
/// `parse_wire_dfg` ∘ `dfg_to_wire`, which makes the compact form a
/// canonical content address for any graph.
pub fn dfg_to_wire(dfg: &Dfg) -> Json {
    let mut used: Vec<String> = Vec::new();
    let input_ids: Vec<String> = dfg
        .input_names()
        .iter()
        .map(|name| assign_id(&mut used, name))
        .collect();
    // Const nodes: one per distinct value, discovered in operand order.
    let mut const_ids: Vec<(i64, String)> = Vec::new();
    for id in dfg.op_ids() {
        let op = dfg.op(id);
        for operand in [op.lhs, op.rhs] {
            if let Operand::Const(v) = operand {
                if !const_ids.iter().any(|(c, _)| *c == v) {
                    let id = assign_id(&mut used, &format!("c{v}"));
                    const_ids.push((v, id));
                }
            }
        }
    }
    let op_ids: Vec<String> = dfg
        .op_ids()
        .map(|id| assign_id(&mut used, &format!("n{}", id.0)))
        .collect();

    let operand_id = |operand: Operand| -> String {
        match operand {
            Operand::Input(InputId(i)) => input_ids[i].clone(),
            Operand::Const(v) => const_ids
                .iter()
                .find(|(c, _)| *c == v)
                .map(|(_, id)| id.clone())
                .unwrap_or_default(),
            Operand::Op(OpId(k)) => op_ids[k].clone(),
        }
    };

    let mut nodes = Vec::new();
    for id in &input_ids {
        nodes.push(Json::object([
            ("id", Json::from(id.as_str())),
            ("op", Json::from("input")),
        ]));
    }
    for (value, id) in &const_ids {
        nodes.push(Json::object([
            ("id", Json::from(id.as_str())),
            ("op", Json::from("const")),
            ("value", Json::from(*value)),
        ]));
    }
    let mut edges = Vec::new();
    for id in dfg.op_ids() {
        let op = dfg.op(id);
        nodes.push(Json::object([
            ("id", Json::from(op_ids[id.0].as_str())),
            ("op", Json::from(op_kind_name(op.kind))),
        ]));
        for (port, operand) in [(0u64, op.lhs), (1, op.rhs)] {
            edges.push(Json::object([
                ("from", Json::from(operand_id(operand))),
                ("to", Json::from(op_ids[id.0].as_str())),
                ("port", Json::from(port)),
            ]));
        }
    }
    let mut out_names: Vec<String> = Vec::new();
    let outputs = Json::object(dfg.outputs().iter().map(|(name, op)| {
        (
            assign_id(&mut out_names, name),
            Json::from(op_ids[op.0].as_str()),
        )
    }));
    let mut graph_name: Vec<String> = Vec::new();
    Json::object([
        ("nodes", Json::array(nodes)),
        ("edges", Json::array(edges)),
        ("outputs", outputs),
        (
            "params",
            Json::object([("name", Json::from(assign_id(&mut graph_name, dfg.name())))]),
        ),
    ])
}

/// The canonical compact wire text for a graph — the content-addressed
/// normal form embedded in spec cache keys.
pub fn canonical_wire(dfg: &Dfg) -> String {
    dfg_to_wire(dfg).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    const AXPY: &str = r#"{
      "nodes": [
        {"id": "a", "op": "input"},
        {"id": "x", "op": "input"},
        {"id": "y", "op": "input"},
        {"id": "m", "op": "mul"},
        {"id": "s", "op": "add"}
      ],
      "edges": [
        {"from": "a", "to": "m"},
        {"from": "x", "to": "m"},
        {"from": "m", "to": "s", "port": 0},
        {"from": "y", "to": "s", "port": 1}
      ],
      "outputs": {"r": "s"},
      "params": {"name": "axpy"}
    }"#;

    #[test]
    fn parses_axpy_and_evaluates() {
        let dfg = parse_wire_dfg(AXPY).expect("axpy parses");
        assert_eq!(dfg.name(), "axpy");
        assert_eq!(dfg.num_ops(), 2);
        assert_eq!(dfg.num_inputs(), 3);
        let out = dfg.evaluate(&[2, 5, 7]);
        assert_eq!(out.get("r"), Some(&17));
    }

    #[test]
    fn unported_edges_fill_ports_in_order() {
        let dfg = parse_wire_dfg(
            r#"{"nodes":[{"id":"a","op":"input"},{"id":"b","op":"input"},
                {"id":"d","op":"sub"}],
               "edges":[{"from":"a","to":"d"},{"from":"b","to":"d"}],
               "outputs":{"o":"d"}}"#,
        )
        .expect("parses");
        // a - b, not b - a.
        assert_eq!(dfg.evaluate(&[10, 3]).get("o"), Some(&7));
    }

    #[test]
    fn both_operands_may_come_from_one_node() {
        let dfg = parse_wire_dfg(
            r#"{"nodes":[{"id":"x","op":"input"},{"id":"sq","op":"mul"}],
               "edges":[{"from":"x","to":"sq","port":0},{"from":"x","to":"sq","port":1}],
               "outputs":{"y":"sq"}}"#,
        )
        .expect("x*x parses");
        assert_eq!(dfg.evaluate(&[9]).get("y"), Some(&81));
    }

    fn wire_err(text: &str) -> WireError {
        parse_wire_dfg(text).expect_err("must be rejected")
    }

    #[test]
    fn rejections_carry_useful_offsets_and_messages() {
        let cases: [(&str, &str); 12] = [
            ("[1,2]", "top level must be an object"),
            (
                r#"{"nodes":[],"edges":[],"outputs":{}}"#,
                "'nodes' must not be empty",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"}],"edges":[],"outputs":{},"zzz":1}"#,
                "unknown key 'zzz'",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"},{"id":"a","op":"input"}],
                   "edges":[],"outputs":{}}"#,
                "duplicate node id 'a'",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"warp"}],"edges":[],"outputs":{}}"#,
                "unknown op \"warp\"",
            ),
            (
                r#"{"nodes":[{"id":"k","op":"const"}],"edges":[],"outputs":{}}"#,
                "const nodes need a 'value'",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"},{"id":"s","op":"add"}],
                   "edges":[{"from":"a","to":"s"},{"from":"ghost","to":"s"}],
                   "outputs":{"o":"s"}}"#,
                "unknown node 'ghost'",
            ),
            (
                r#"{"nodes":[{"id":"s","op":"add"}],
                   "edges":[{"from":"s","to":"s"}],"outputs":{"o":"s"}}"#,
                "self-edge on node 's'",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"},{"id":"b","op":"input"}],
                   "edges":[{"from":"a","to":"b"}],"outputs":{}}"#,
                "is not an op node",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"},{"id":"s","op":"add"}],
                   "edges":[{"from":"a","to":"s","port":0},{"from":"a","to":"s","port":0}],
                   "outputs":{"o":"s"}}"#,
                "port 0 of node 's' is driven twice",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"},{"id":"s","op":"add"}],
                   "edges":[{"from":"a","to":"s"}],"outputs":{"o":"s"}}"#,
                "needs exactly 2 incoming edges, has 1",
            ),
            (
                r#"{"nodes":[{"id":"a","op":"input"},{"id":"s","op":"add"}],
                   "edges":[{"from":"a","to":"s"},{"from":"a","to":"s"}],
                   "outputs":{}}"#,
                "at least one output is required",
            ),
        ];
        for (text, needle) in cases {
            let e = wire_err(text);
            assert!(
                e.message.contains(needle),
                "expected {needle:?} in {:?} for {text}",
                e.message
            );
            assert!(e.offset <= text.len(), "offset {} out of range", e.offset);
            assert!(e.to_string().starts_with("byte "), "{e}");
        }
    }

    #[test]
    fn duplicate_id_offset_points_at_the_second_occurrence() {
        let text = r#"{"nodes":[{"id":"dup","op":"input"},{"id":"dup","op":"input"}],
                       "edges":[],"outputs":{}}"#;
        let e = wire_err(text);
        let first = text.find("\"dup\"").unwrap();
        assert!(
            e.offset > first,
            "offset {} not past first occurrence {first}",
            e.offset
        );
    }

    #[test]
    fn cycles_are_rejected_iteratively() {
        // a 2-cycle through forward references
        let e = wire_err(
            r#"{"nodes":[{"id":"p","op":"add"},{"id":"q","op":"add"}],
               "edges":[{"from":"p","to":"q"},{"from":"q","to":"p"},
                        {"from":"p","to":"q"},{"from":"q","to":"p"}],
               "outputs":{"o":"p"}}"#,
        );
        assert!(e.message.contains("cycle through node"), "{e}");
    }

    #[test]
    fn deep_chain_is_fine_and_does_not_overflow() {
        // A maximal-depth linear chain: n0 = a+a, n{i} = n{i-1}+a.
        let mut nodes = vec![r#"{"id":"a","op":"input"}"#.to_string()];
        let mut edges = Vec::new();
        let depth = MAX_WIRE_NODES - 1;
        for i in 0..depth {
            nodes.push(format!(r#"{{"id":"n{i}","op":"add"}}"#));
            let prev = if i == 0 {
                "a".to_string()
            } else {
                format!("n{}", i - 1)
            };
            edges.push(format!(r#"{{"from":"{prev}","to":"n{i}","port":0}}"#));
            edges.push(format!(r#"{{"from":"a","to":"n{i}","port":1}}"#));
        }
        let text = format!(
            r#"{{"nodes":[{}],"edges":[{}],"outputs":{{"o":"n{}"}}}}"#,
            nodes.join(","),
            edges.join(","),
            depth - 1
        );
        let dfg = parse_wire_dfg(&text).expect("deep chain parses");
        assert_eq!(dfg.num_ops(), depth);
    }

    #[test]
    fn canonical_rendering_is_a_fixed_point() {
        let dfg = parse_wire_dfg(AXPY).expect("axpy parses");
        let canon = canonical_wire(&dfg);
        let reparsed = parse_wire_dfg(&canon).expect("canonical form parses");
        assert_eq!(canonical_wire(&reparsed), canon);
        assert_eq!(reparsed.evaluate(&[2, 5, 7]).get("r"), Some(&17));
    }

    #[test]
    fn benchmarks_round_trip_through_the_wire_format() {
        for name in benchmarks::NAMES {
            let dfg = benchmarks::by_name(name).expect("benchmark exists");
            let canon = canonical_wire(&dfg);
            let reparsed = parse_wire_dfg(&canon)
                .unwrap_or_else(|e| panic!("{name} canonical form rejected: {e}"));
            assert_eq!(reparsed.num_ops(), dfg.num_ops(), "{name}");
            assert_eq!(reparsed.num_inputs(), dfg.num_inputs(), "{name}");
            let inputs: Vec<i64> = (0..dfg.num_inputs() as i64).map(|i| 3 * i + 1).collect();
            assert_eq!(
                reparsed.evaluate_all(&inputs),
                dfg.evaluate_all(&inputs),
                "{name} evaluation diverged through the wire format"
            );
            assert_eq!(canonical_wire(&reparsed), canon, "{name} not a fixed point");
        }
    }

    #[test]
    fn id_collisions_in_export_are_resolved_deterministically() {
        // An input literally named like an op id must not collide.
        let dfg = parse_wire_dfg(
            r#"{"nodes":[{"id":"n0","op":"input"},{"id":"add0","op":"add"}],
               "edges":[{"from":"n0","to":"add0"},{"from":"n0","to":"add0"}],
               "outputs":{"o":"add0"}}"#,
        )
        .expect("parses");
        let canon = canonical_wire(&dfg);
        let reparsed = parse_wire_dfg(&canon).expect("canonical form parses");
        assert_eq!(canonical_wire(&reparsed), canon);
    }
}
