//! # tauhls-dfg — dataflow graphs for telescopic high-level synthesis
//!
//! The dataflow-graph substrate of the `tauhls` workspace: graph model,
//! structural analyses, the paper's TAUBM time-step-splitting
//! transformation, the benchmark suite of the evaluation section, and a
//! random-graph generator for property testing.
//!
//! # Examples
//!
//! Build and evaluate a small graph:
//!
//! ```
//! use tauhls_dfg::{DfgBuilder, Operand};
//! let mut b = DfgBuilder::new("axpy");
//! let a = b.input("a");
//! let x = b.input("x");
//! let y = b.input("y");
//! let m = b.mul(a.into(), x.into());
//! let s = b.add(m.into(), y.into());
//! b.output("r", s);
//! let g = b.build()?;
//! assert_eq!(g.evaluate(&[2, 3, 4])["r"], 10);
//! # Ok::<(), tauhls_dfg::DfgError>(())
//! ```
//!
//! Derive the TAUBM form of the paper's Fig 2 example:
//!
//! ```
//! use tauhls_dfg::{benchmarks, LevelAnalysis, ResourceClass, TaubmDfg};
//! let g = benchmarks::fig2_dfg();
//! let levels = LevelAnalysis::new(&g);
//! let step_of: Vec<usize> = g.op_ids().map(|o| levels.asap(o)).collect();
//! let taubm = TaubmDfg::derive(&g, &step_of, &[ResourceClass::Multiplier].into());
//! assert_eq!(taubm.best_latency_cycles(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod benchmarks;
mod dot;
mod graph;
mod random;
mod source;
mod taubm;
mod text;
mod wire;

pub use analysis::LevelAnalysis;
pub use dot::to_dot;
pub use graph::{
    Dfg, DfgBuilder, DfgError, InputId, OpId, OpKind, Operand, Operation, ResourceClass,
};
pub use random::{random_dfg, RandomDfgParams};
pub use source::{DfgRegistry, DfgSource};
pub use taubm::{TaubmDfg, TaubmStep};
pub use text::{dfg_to_text, parse_dfg, ParseDfgError};
pub use wire::{
    canonical_wire, dfg_to_wire, parse_wire_dfg, valid_wire_id, wire_hash, WireError,
    MAX_WIRE_NAME, MAX_WIRE_NODES,
};
