//! One abstraction for "where does the graph come from": named lookup
//! in a [`DfgRegistry`], the inline line-oriented text format, or the
//! inline JSON wire format. The built-in benchmark suite is just the
//! default registry — `benchmarks::by_name` is one resolver among
//! `{named, inline, registered}`, not a privileged code path.

use std::sync::OnceLock;

use crate::benchmarks;
use crate::graph::Dfg;
use crate::text::parse_dfg;
use crate::wire::parse_wire_dfg;

/// A name → [`Dfg`] lookup table. [`DfgRegistry::builtin`] holds the
/// paper benchmark suite; embedders can build their own with
/// [`DfgRegistry::register`] to resolve `Named` sources against
/// programmatically constructed graphs.
#[derive(Debug, Clone, Default)]
pub struct DfgRegistry {
    entries: Vec<(String, Dfg)>,
}

impl DfgRegistry {
    /// An empty registry.
    pub fn new() -> DfgRegistry {
        DfgRegistry::default()
    }

    /// The shared registry of built-in paper benchmarks.
    pub fn builtin() -> &'static DfgRegistry {
        static BUILTIN: OnceLock<DfgRegistry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut registry = DfgRegistry::new();
            for name in benchmarks::NAMES {
                if let Some(dfg) = benchmarks::by_name(name) {
                    registry.register(dfg);
                }
            }
            registry
        })
    }

    /// Registers `dfg` under its own name, replacing any previous entry
    /// with that name.
    pub fn register(&mut self, dfg: Dfg) {
        let name = dfg.name().to_string();
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = dfg;
        } else {
            self.entries.push((name, dfg));
        }
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> Option<&Dfg> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, dfg)| dfg)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }
}

/// Where a job's dataflow graph comes from. The inline variants store
/// the submitted text verbatim (`InlineText`) or in canonical wire form
/// (`InlineWire`), so the enum stays cheap to clone/compare and a
/// source embedded in a canonical spec is already content-addressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgSource {
    /// Look the graph up by name in a [`DfgRegistry`].
    Named(String),
    /// An inline graph in the line-oriented text format.
    InlineText(String),
    /// An inline graph in canonical JSON wire form.
    InlineWire(String),
}

impl DfgSource {
    /// Resolves the source to a concrete graph against `registry`.
    /// Errors are plain strings ready to embed in a higher layer's
    /// invalid-spec diagnostics.
    pub fn resolve(&self, registry: &DfgRegistry) -> Result<Dfg, String> {
        match self {
            DfgSource::Named(name) => registry
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unknown benchmark '{name}'")),
            DfgSource::InlineText(text) => parse_dfg(text).map_err(|e| format!("dfg_text: {e}")),
            DfgSource::InlineWire(text) => parse_wire_dfg(text).map_err(|e| format!("dfg: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DfgBuilder, Operand};
    use crate::wire::canonical_wire;

    #[test]
    fn builtin_registry_serves_every_benchmark() {
        let registry = DfgRegistry::builtin();
        for name in benchmarks::NAMES {
            assert!(registry.get(name).is_some(), "{name} missing");
            let named = DfgSource::Named(name.to_string());
            assert_eq!(named.resolve(registry).expect("resolves").name(), name);
        }
        assert!(registry.get("nope").is_none());
    }

    #[test]
    fn named_resolution_reports_unknown_graphs() {
        let err = DfgSource::Named("nope".into())
            .resolve(DfgRegistry::builtin())
            .expect_err("unknown name");
        assert!(err.contains("unknown benchmark 'nope'"), "{err}");
    }

    #[test]
    fn registered_graphs_resolve_like_builtins() {
        let mut b = DfgBuilder::new("custom");
        let x = b.input("x");
        let sq = b.mul(Operand::Input(x), Operand::Input(x));
        b.output("y", sq);
        let dfg = b.build().expect("valid graph");

        let mut registry = DfgRegistry::new();
        registry.register(dfg.clone());
        let resolved = DfgSource::Named("custom".into())
            .resolve(&registry)
            .expect("resolves");
        assert_eq!(resolved, dfg);
        assert_eq!(registry.names().collect::<Vec<_>>(), vec!["custom"]);
    }

    #[test]
    fn inline_wire_resolves_through_the_wire_parser() {
        let dfg = benchmarks::by_name("fir3").expect("fir3 exists");
        let source = DfgSource::InlineWire(canonical_wire(&dfg));
        let resolved = source.resolve(DfgRegistry::builtin()).expect("resolves");
        assert_eq!(resolved.num_ops(), dfg.num_ops());

        let bad = DfgSource::InlineWire("{".into());
        let err = bad.resolve(DfgRegistry::builtin()).expect_err("bad wire");
        assert!(err.starts_with("dfg: byte "), "{err}");
    }
}
