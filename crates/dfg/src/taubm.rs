//! The TAUBM DFG transformation (paper §2.2, Fig 2b).
//!
//! Given a time-step schedule of a DFG and the set of resource classes
//! implemented as telescopic units, every time step `T_i` containing
//! TAU-bound operations is split into `T_i` and `T_i'`: TAU operations span
//! both halves (finishing after the first with probability `P` per
//! operation), while fixed-delay operations sit in `T_i` only and the `T_i'`
//! half is skipped entirely when every TAU in the step completes short.

use crate::graph::{Dfg, OpId, ResourceClass};
use std::collections::HashSet;

/// One (possibly split) time step of a TAUBM DFG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaubmStep {
    /// Fixed-delay operations scheduled in the base half `T_i`.
    pub fixed_ops: Vec<OpId>,
    /// TAU-bound operations spanning `T_i` / `T_i'`.
    pub tau_ops: Vec<OpId>,
}

impl TaubmStep {
    /// True iff this step has an extension half `T_i'` (i.e. contains at
    /// least one TAU-bound operation).
    pub fn is_split(&self) -> bool {
        !self.tau_ops.is_empty()
    }
}

/// A DFG rescheduled for telescopic execution: the intermediate model from
/// which the TAUBM (synchronized centralized) FSM is derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaubmDfg {
    steps: Vec<TaubmStep>,
}

impl TaubmDfg {
    /// Derives the TAUBM DFG from a time-step assignment.
    ///
    /// `step_of[op] = i` places the operation in original time step `T_i`;
    /// `tau_classes` lists the resource classes implemented telescopically.
    ///
    /// # Panics
    ///
    /// Panics if `step_of.len() != dfg.num_ops()`, or if the assignment
    /// violates a data dependence (a consumer scheduled at or before a
    /// producer).
    pub fn derive(dfg: &Dfg, step_of: &[usize], tau_classes: &HashSet<ResourceClass>) -> Self {
        assert_eq!(step_of.len(), dfg.num_ops(), "one step per operation");
        for v in dfg.op_ids() {
            for p in dfg.preds(v) {
                assert!(
                    step_of[p.0] < step_of[v.0],
                    "{v} scheduled at step {} but its predecessor {p} at {}",
                    step_of[v.0],
                    step_of[p.0]
                );
            }
        }
        let num_steps = step_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut steps = vec![
            TaubmStep {
                fixed_ops: Vec::new(),
                tau_ops: Vec::new(),
            };
            num_steps
        ];
        for v in dfg.op_ids() {
            let class = dfg.op(v).kind.resource_class();
            let step = &mut steps[step_of[v.0]];
            if tau_classes.contains(&class) {
                step.tau_ops.push(v);
            } else {
                step.fixed_ops.push(v);
            }
        }
        TaubmDfg { steps }
    }

    /// The (possibly split) time steps in execution order.
    pub fn steps(&self) -> &[TaubmStep] {
        &self.steps
    }

    /// Number of original time steps (split steps count once).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of steps that were split (contain TAU operations).
    pub fn num_split_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.is_split()).count()
    }

    /// Best-case latency in fast clock cycles: every TAU finishes short, so
    /// every extension half is skipped.
    pub fn best_latency_cycles(&self) -> usize {
        self.steps.len()
    }

    /// Worst-case latency in fast clock cycles: every split step spends its
    /// extension half.
    pub fn worst_latency_cycles(&self) -> usize {
        self.steps.len() + self.num_split_steps()
    }

    /// Expected latency in fast cycles under *synchronized* TAUBM execution
    /// (the paper's `LT_TAU` / CENT-SYNC model): a split step with `k` TAU
    /// operations takes one cycle with probability `P^k` (all short) and
    /// two otherwise, independently per step.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn expected_latency_cycles_sync(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "P must be a probability");
        self.steps
            .iter()
            .map(|s| {
                if s.is_split() {
                    2.0 - p.powi(s.tau_ops.len() as i32)
                } else {
                    1.0
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::fig2_dfg;

    fn fig2_schedule() -> (Dfg, Vec<usize>, HashSet<ResourceClass>) {
        let g = fig2_dfg();
        // T0={O0,O3}, T1={O1,O4}? No: per the paper T1={O1}, T2={O2,O4},
        // T3={O5}. O4 depends on O3 so it could run at T1, but the original
        // schedule of Fig 2(a) places it in T2 next to O2.
        let step_of = vec![0, 1, 2, 0, 2, 3];
        let tau: HashSet<ResourceClass> = [ResourceClass::Multiplier].into();
        (g, step_of, tau)
    }

    #[test]
    fn fig2_taubm_splits_mult_steps() {
        let (g, step_of, tau) = fig2_schedule();
        let t = TaubmDfg::derive(&g, &step_of, &tau);
        assert_eq!(t.num_steps(), 4);
        assert_eq!(t.num_split_steps(), 2); // T0 and T2 carry multiplies
        assert!(t.steps()[0].is_split());
        assert!(!t.steps()[1].is_split());
        assert!(t.steps()[2].is_split());
        assert!(!t.steps()[3].is_split());
        // "latency varies between 4 and 6 clock cycles" (paper §2.2)
        assert_eq!(t.best_latency_cycles(), 4);
        assert_eq!(t.worst_latency_cycles(), 6);
    }

    #[test]
    fn expected_latency_interpolates() {
        let (g, step_of, tau) = fig2_schedule();
        let t = TaubmDfg::derive(&g, &step_of, &tau);
        assert_eq!(t.expected_latency_cycles_sync(1.0), 4.0);
        assert_eq!(t.expected_latency_cycles_sync(0.0), 6.0);
        // Two split steps with 2 TAUs each: E = 2 + 2*(2 - p^2)
        let p = 0.9f64;
        let expect = 2.0 + 2.0 * (2.0 - p * p);
        assert!((t.expected_latency_cycles_sync(p) - expect).abs() < 1e-12);
    }

    #[test]
    fn no_tau_classes_means_no_split() {
        let (g, step_of, _) = fig2_schedule();
        let t = TaubmDfg::derive(&g, &step_of, &HashSet::new());
        assert_eq!(t.num_split_steps(), 0);
        assert_eq!(t.best_latency_cycles(), t.worst_latency_cycles());
    }

    #[test]
    #[should_panic(expected = "predecessor")]
    fn rejects_dependence_violation() {
        let (g, mut step_of, tau) = fig2_schedule();
        step_of[1] = 0; // O1 alongside its producer O0
        let _ = TaubmDfg::derive(&g, &step_of, &tau);
    }
}
