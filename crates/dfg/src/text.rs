//! A plain-text interchange format for dataflow graphs.
//!
//! The format is line-based and definition-before-use (which also makes
//! every parsed graph acyclic by construction):
//!
//! ```text
//! # one Euler step
//! dfg diffeq
//! input x
//! input dx
//! op t1 = mul 3 x        # operands: inputs, earlier ops, or constants
//! op t2 = add t1 dx
//! output x1 t2
//! ```
//!
//! Operation kinds are `add`, `sub`, `mul`, `lt`.

use crate::graph::{Dfg, DfgBuilder, InputId, OpId, OpKind, Operand};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDfgError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDfgError {}

fn err(line: usize, message: impl Into<String>) -> ParseDfgError {
    ParseDfgError {
        line,
        message: message.into(),
    }
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns a [`ParseDfgError`] naming the offending line for unknown
/// directives, malformed operand references, duplicate names, or a
/// missing `dfg` header.
pub fn parse_dfg(text: &str) -> Result<Dfg, ParseDfgError> {
    let mut builder: Option<DfgBuilder> = None;
    let mut inputs: HashMap<String, InputId> = HashMap::new();
    let mut ops: HashMap<String, OpId> = HashMap::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().expect("nonempty line");
        match directive {
            "dfg" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "expected: dfg <name>"))?;
                if builder.is_some() {
                    return Err(err(line_no, "duplicate dfg header"));
                }
                builder = Some(DfgBuilder::new(name));
            }
            "input" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "input before dfg header"))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "expected: input <name>"))?;
                if inputs.contains_key(name) || ops.contains_key(name) {
                    return Err(err(line_no, format!("duplicate name {name}")));
                }
                inputs.insert(name.to_string(), b.input(name));
            }
            "op" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "expected: op <name> = <kind> <a> <b>"))?
                    .to_string();
                if tokens.next() != Some("=") {
                    return Err(err(line_no, "expected '=' after op name"));
                }
                let kind = match tokens.next() {
                    Some("add") => OpKind::Add,
                    Some("sub") => OpKind::Sub,
                    Some("mul") => OpKind::Mul,
                    Some("lt") => OpKind::Lt,
                    Some(k) => return Err(err(line_no, format!("unknown op kind {k}"))),
                    None => return Err(err(line_no, "missing op kind")),
                };
                let operand = |tok: Option<&str>| -> Result<Operand, ParseDfgError> {
                    let tok = tok.ok_or_else(|| err(line_no, "missing operand"))?;
                    if let Some(&inp) = inputs.get(tok) {
                        Ok(Operand::Input(inp))
                    } else if let Some(&op) = ops.get(tok) {
                        Ok(Operand::Op(op))
                    } else if let Ok(c) = tok.parse::<i64>() {
                        Ok(Operand::Const(c))
                    } else {
                        Err(err(
                            line_no,
                            format!("unknown operand {tok} (must be defined earlier)"),
                        ))
                    }
                };
                let lhs = operand(tokens.next())?;
                let rhs = operand(tokens.next())?;
                if inputs.contains_key(&name) || ops.contains_key(&name) {
                    return Err(err(line_no, format!("duplicate name {name}")));
                }
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "op before dfg header"))?;
                ops.insert(name, b.op(kind, lhs, rhs));
            }
            "output" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(line_no, "output before dfg header"))?;
                let name = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "expected: output <name> <op>"))?;
                let target = tokens
                    .next()
                    .ok_or_else(|| err(line_no, "expected: output <name> <op>"))?;
                let op = *ops
                    .get(target)
                    .ok_or_else(|| err(line_no, format!("unknown operation {target}")))?;
                b.output(name, op);
            }
            other => return Err(err(line_no, format!("unknown directive {other}"))),
        }
        if let Some(extra) = tokens.next() {
            return Err(err(line_no, format!("unexpected trailing token {extra}")));
        }
    }
    let b = builder.ok_or_else(|| err(0, "missing dfg header"))?;
    b.build().map_err(|e| err(0, format!("invalid graph: {e}")))
}

/// Renders a graph in the text format (round-trips through [`parse_dfg`]).
pub fn dfg_to_text(dfg: &Dfg) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "dfg {}", dfg.name());
    for name in dfg.input_names() {
        let _ = writeln!(s, "input {name}");
    }
    let fmt_operand = |o: Operand| -> String {
        match o {
            Operand::Input(i) => dfg.input_names()[i.0].clone(),
            Operand::Const(c) => c.to_string(),
            Operand::Op(p) => format!("t{}", p.0),
        }
    };
    // Topological order guarantees definition-before-use in the output
    // even for graphs built with forward references (e.g. fig3).
    for v in dfg.topo_order() {
        let op = dfg.op(v);
        let kind = match op.kind {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Lt => "lt",
        };
        let _ = writeln!(
            s,
            "op t{} = {kind} {} {}",
            v.0,
            fmt_operand(op.lhs),
            fmt_operand(op.rhs)
        );
    }
    for (name, op) in dfg.outputs() {
        let _ = writeln!(s, "output {name} t{}", op.0);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn parse_simple_graph() {
        let g = parse_dfg(
            "# axpy\n\
             dfg axpy\n\
             input a\n\
             input x\n\
             op m = mul a x   # product\n\
             op s = add m 7\n\
             output r s\n",
        )
        .unwrap();
        assert_eq!(g.name(), "axpy");
        assert_eq!(g.num_ops(), 2);
        assert_eq!(g.evaluate(&[2, 3])["r"], 13);
    }

    #[test]
    fn roundtrip_all_benchmarks() {
        for g in [
            benchmarks::diffeq(),
            benchmarks::fir5(),
            benchmarks::iir3(),
            benchmarks::ar_lattice4(),
            benchmarks::ewf(),
            benchmarks::fig2_dfg(),
        ] {
            let text = dfg_to_text(&g);
            let back = parse_dfg(&text).unwrap();
            assert_eq!(back.num_ops(), g.num_ops(), "{}", g.name());
            assert_eq!(back.num_inputs(), g.num_inputs());
            // Same semantics on a probe input.
            let probe: Vec<i64> = (0..g.num_inputs() as i64).map(|i| i + 2).collect();
            assert_eq!(g.evaluate(&probe).len(), back.evaluate(&probe).len());
            for (name, _) in g.outputs() {
                assert_eq!(
                    g.evaluate(&probe)[name],
                    back.evaluate(&probe)[name],
                    "{}:{name}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn fig3_roundtrip_despite_forward_refs() {
        // fig3 is built with forward references; the writer topologically
        // orders the definitions so the text still parses.
        let g = benchmarks::fig3_dfg();
        let text = dfg_to_text(&g);
        let back = parse_dfg(&text).unwrap();
        assert_eq!(back.num_ops(), g.num_ops());
        let probe: Vec<i64> = (1..=9).collect();
        assert_eq!(g.evaluate(&probe)["r"], back.evaluate(&probe)["r"]);
    }

    #[test]
    fn error_reporting_names_lines() {
        let e = parse_dfg("dfg x\ninput a\nop b = bogus a a\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
        let e = parse_dfg("input a\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_dfg("dfg x\nop b = add c 1\n").unwrap_err();
        assert!(e.message.contains("unknown operand"));
        let e = parse_dfg("dfg x\ninput a\ninput a\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse_dfg("dfg x\ninput a\nop m = add a a extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));
        assert!(parse_dfg("").is_err());
    }
}
