//! The high-level-synthesis benchmark DFGs used in the paper's evaluation
//! (Table 1 and Table 2), plus the worked examples of Fig 2 and Fig 3 and
//! the elliptic-wave-filter extra benchmark.
//!
//! Sources: the differential-equation solver is the classic HAL benchmark;
//! FIR/IIR/AR-lattice follow their standard textbook dataflow structures.
//! `fig2_dfg` and `fig3_dfg` reconstruct the paper's running examples from
//! the constraints stated in the text (operation kinds, dependences, and
//! the multiplication dependency-graph cliques of Fig 3b).

use crate::graph::{Dfg, DfgBuilder, Operand};

/// The named benchmark registry, in canonical order: the paper's Table 2
/// suite plus the elliptic-wave-filter stress benchmark. This is the one
/// list every consumer (job specs, experiment drivers, bench bins) routes
/// through; [`by_name`] resolves each entry.
pub const NAMES: [&str; 7] = [
    "diffeq",
    "fir3",
    "fir5",
    "iir2",
    "iir3",
    "ar_lattice4",
    "ewf",
];

/// Looks up a built-in benchmark by its [`NAMES`] entry.
///
/// # Examples
///
/// ```
/// use tauhls_dfg::benchmarks;
/// assert_eq!(benchmarks::by_name("fir5").unwrap().num_ops(), 9);
/// assert!(benchmarks::by_name("nope").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Dfg> {
    Some(match name {
        "diffeq" => diffeq(),
        "fir3" => fir3(),
        "fir5" => fir5(),
        "iir2" => iir2(),
        "iir3" => iir3(),
        "ar_lattice4" => ar_lattice4(),
        "ewf" => ewf(),
        _ => return None,
    })
}

/// The differential-equation solver (HAL) benchmark: one Euler step of
/// `y'' + 3xy' + 3y = 0`.
///
/// 6 multiplications, 2 additions, 2 subtractions, 1 comparison — scheduled
/// in the paper under an allocation of two TAU multipliers, one adder and
/// one subtractor (Table 1).
///
/// # Examples
///
/// ```
/// use tauhls_dfg::benchmarks::diffeq;
/// let g = diffeq();
/// assert_eq!(g.num_ops(), 11);
/// ```
pub fn diffeq() -> Dfg {
    let mut b = DfgBuilder::new("diffeq");
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let a = b.input("a");
    let three = Operand::Const(3);

    // u1 = u - (3x)·(u·dx) - (3y)·dx   (canonical HAL factoring, depth 4)
    let m1 = b.mul(three, x.into()); // 3x
    let m2 = b.mul(u.into(), dx.into()); // u·dx
    let m3 = b.mul(m1.into(), m2.into()); // 3x·u·dx
    let m4 = b.mul(three, y.into()); // 3y
    let m5 = b.mul(m4.into(), dx.into()); // 3y·dx
    let m6 = b.mul(u.into(), dx.into()); // u·dx (recomputed; the benchmark has no CSE)
    let s1 = b.sub(u.into(), m3.into()); // u - 3x·u·dx
    let s2 = b.sub(s1.into(), m5.into()); // ... - 3y·dx
    let a1 = b.add(x.into(), dx.into()); // x + dx
    let a2 = b.add(y.into(), m6.into()); // y + u·dx
    let c = b.lt(a1.into(), a.into()); // x1 < a ?

    b.output("x1", a1);
    b.output("y1", a2);
    b.output("u1", s2);
    b.output("c", c);
    b.build().expect("diffeq is valid")
}

/// An `order`-tap transversal FIR filter: `y = Σ c_i · x_i` with a linear
/// accumulation chain (the structure whose latency the paper reports for
/// the 3rd- and 5th-order FIR rows of Table 2).
///
/// `order` multiplications and `order - 1` additions.
///
/// # Panics
///
/// Panics if `order < 2`.
pub fn fir(order: usize) -> Dfg {
    assert!(order >= 2, "fir needs at least 2 taps");
    let mut b = DfgBuilder::new(format!("fir{order}"));
    let xs: Vec<_> = (0..order).map(|i| b.input(format!("x{i}"))).collect();
    let cs: Vec<_> = (0..order).map(|i| b.input(format!("c{i}"))).collect();
    let prods: Vec<_> = (0..order)
        .map(|i| b.mul(xs[i].into(), cs[i].into()))
        .collect();
    let mut acc = b.add(prods[0].into(), prods[1].into());
    for &p in &prods[2..] {
        acc = b.add(acc.into(), p.into());
    }
    b.output("y", acc);
    b.build().expect("fir is valid")
}

/// The paper's "3rd FIR" benchmark (3 taps: 3 ×, 2 +).
pub fn fir3() -> Dfg {
    fir(3)
}

/// The paper's "5th FIR" benchmark (5 taps: 5 ×, 4 +).
pub fn fir5() -> Dfg {
    fir(5)
}

/// An `order`-th order direct-form IIR filter:
/// `y = Σ_{i=0..order} b_i·x_i + Σ_{j=1..order} a_j·y_j`
/// (feedback signs folded into the coefficients, so only adders are used,
/// matching the paper's `{×, +}` allocations for the IIR rows).
///
/// `2·order + 1` multiplications and `2·order` additions.
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn iir(order: usize) -> Dfg {
    assert!(order >= 1, "iir needs order >= 1");
    let mut b = DfgBuilder::new(format!("iir{order}"));
    let xs: Vec<_> = (0..=order).map(|i| b.input(format!("x{i}"))).collect();
    let ys: Vec<_> = (1..=order).map(|j| b.input(format!("y{j}"))).collect();
    let bs: Vec<_> = (0..=order).map(|i| b.input(format!("b{i}"))).collect();
    let asv: Vec<_> = (1..=order).map(|j| b.input(format!("a{j}"))).collect();

    let mut prods = Vec::new();
    for i in 0..=order {
        prods.push(b.mul(xs[i].into(), bs[i].into()));
    }
    for j in 0..order {
        prods.push(b.mul(ys[j].into(), asv[j].into()));
    }
    // Balanced accumulation tree: shortest critical path, maximal concurrency.
    let mut layer: Vec<Operand> = prods.into_iter().map(Operand::from).collect();
    while layer.len() > 1 {
        let mut next = Vec::new();
        let mut it = layer.into_iter();
        while let Some(lhs) = it.next() {
            match it.next() {
                Some(rhs) => next.push(Operand::from(b.add(lhs, rhs))),
                None => next.push(lhs),
            }
        }
        layer = next;
    }
    let out = match layer[0] {
        Operand::Op(o) => o,
        _ => unreachable!("tree root is an op for order >= 1"),
    };
    b.output("y", out);
    b.build().expect("iir is valid")
}

/// The paper's "2nd IIR" benchmark (biquad: 5 ×, 4 +).
pub fn iir2() -> Dfg {
    iir(2)
}

/// The paper's "3rd IIR" benchmark (7 ×, 6 +).
pub fn iir3() -> Dfg {
    iir(3)
}

/// A `stages`-stage normalized AR lattice filter. Each stage applies a
/// full 2×2 rotation:
/// `f_i = k1_i·f_{i-1} + k2_i·b_{i-1}`, `b_i = k3_i·f_{i-1} + k4_i·b_{i-1}`
/// — 4 multiplications + 2 additions per stage with a multiply-then-add
/// critical path of `2·stages` steps.
///
/// The paper's "AR-lattice" row uses 4 stages (16 ×, 8 +, matching the
/// classic 16-multiplication AR benchmark) under an allocation of 4 TAU
/// multipliers and 2 adders: every stage keeps all four TAUs busy at once,
/// which is where the synchronized controller's `P^4` penalty bites.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn ar_lattice(stages: usize) -> Dfg {
    assert!(stages >= 1, "lattice needs at least one stage");
    let mut b = DfgBuilder::new(format!("ar_lattice{stages}"));
    let mut f: Operand = b.input("f0").into();
    let mut bk: Operand = b.input("b0").into();
    let ks: Vec<[_; 4]> = (1..=stages)
        .map(|i| {
            [
                b.input(format!("k1_{i}")),
                b.input(format!("k2_{i}")),
                b.input(format!("k3_{i}")),
                b.input(format!("k4_{i}")),
            ]
        })
        .collect();
    for k in ks {
        let mf1 = b.mul(k[0].into(), f);
        let mf2 = b.mul(k[1].into(), bk);
        let mb1 = b.mul(k[2].into(), f);
        let mb2 = b.mul(k[3].into(), bk);
        let nf = b.add(mf1.into(), mf2.into());
        let nb = b.add(mb1.into(), mb2.into());
        f = nf.into();
        bk = nb.into();
    }
    let (fo, bo) = match (f, bk) {
        (Operand::Op(a), Operand::Op(c)) => (a, c),
        _ => unreachable!("stages >= 1"),
    };
    b.output("f", fo);
    b.output("b", bo);
    b.build().expect("lattice is valid")
}

/// The paper's AR-lattice configuration (4 stages).
pub fn ar_lattice4() -> Dfg {
    ar_lattice(4)
}

/// A fifth-order elliptic-wave-filter-style benchmark (8 multiplications,
/// 20 additions, critical path > 11 steps) — an extra stress benchmark
/// beyond the paper's table, structurally modelled on the classic EWF
/// (which has 26 additions; this variant folds six state-update adds).
pub fn ewf() -> Dfg {
    let mut b = DfgBuilder::new("ewf");
    // EWF-like dataflow over the state inputs sv2, sv13, sv18, sv26, sv33,
    // sv38, sv39 and input `inp`.
    let inp = b.input("inp");
    let sv2 = b.input("sv2");
    let sv13 = b.input("sv13");
    let sv18 = b.input("sv18");
    let sv26 = b.input("sv26");
    let sv33 = b.input("sv33");
    let sv38 = b.input("sv38");
    let sv39 = b.input("sv39");
    let c: Vec<_> = (0..8).map(|i| b.input(format!("c{i}"))).collect();

    let a1 = b.add(inp.into(), sv2.into());
    let a2 = b.add(sv33.into(), sv39.into());
    let a3 = b.add(a1.into(), sv13.into());
    let a4 = b.add(sv18.into(), sv26.into());
    let a5 = b.add(a3.into(), a4.into());
    let m1 = b.mul(a5.into(), c[0].into());
    let a6 = b.add(m1.into(), sv13.into());
    let m2 = b.mul(a6.into(), c[1].into());
    let a7 = b.add(m2.into(), a1.into());
    let a8 = b.add(a7.into(), sv2.into());
    let m3 = b.mul(a8.into(), c[2].into());
    let a9 = b.add(m3.into(), a2.into());
    let m4 = b.mul(a9.into(), c[3].into());
    let a10 = b.add(m4.into(), sv18.into());
    let a11 = b.add(a10.into(), a4.into());
    let m5 = b.mul(a11.into(), c[4].into());
    let a12 = b.add(m5.into(), sv26.into());
    let a13 = b.add(a12.into(), a9.into());
    let m6 = b.mul(a13.into(), c[5].into());
    let a14 = b.add(m6.into(), sv33.into());
    let a15 = b.add(a14.into(), a2.into());
    let m7 = b.mul(a15.into(), c[6].into());
    let a16 = b.add(m7.into(), sv38.into());
    let m8 = b.mul(a16.into(), c[7].into());
    let a17 = b.add(m8.into(), sv39.into());
    let a18 = b.add(a17.into(), a15.into());
    let a19 = b.add(a18.into(), a13.into());
    let a20 = b.add(a19.into(), a11.into());

    b.output("sv2n", a8);
    b.output("sv13n", a6);
    b.output("sv18n", a10);
    b.output("sv26n", a12);
    b.output("sv33n", a14);
    b.output("sv38n", a16);
    b.output("sv39n", a17);
    b.output("out", a20);
    b.build().expect("ewf is valid")
}

/// The six-operation running example of the paper's Fig 2(a).
///
/// Operations `O0, O2, O3, O4` are multiplications (telescopic under a TAU
/// multiplier allocation), `O1, O5` are additions; time steps under the
/// original schedule are `T0 = {O0, O3}`, `T1 = {O1}`, `T2 = {O2, O4}`,
/// `T3 = {O5}`, so the TAUBM latency varies between 4 and 6 fast cycles.
pub fn fig2_dfg() -> Dfg {
    let mut b = DfgBuilder::new("fig2");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let o0 = b.mul(a.into(), bb.into()); // O0
    let o1 = b.add(o0.into(), e.into()); // O1 (depends only on O0)
    let o2 = b.mul(o1.into(), f.into()); // O2
    let o3 = b.mul(c.into(), d.into()); // O3
    let o4 = b.mul(o3.into(), g.into()); // O4
    let o5 = b.add(o2.into(), o4.into()); // O5
    b.output("r", o5);
    b.build().expect("fig2 is valid")
}

/// The nine-operation example of the paper's Fig 3(a).
///
/// Multiplications `{O0, O1, O4, O6, O8}`, additions `{O2, O3, O5, O7}`.
/// The dependency graph over the multiplications (Fig 3b) has minimal
/// clique cover `{(O0,O1), (O4), (O6,O8)}` — three cliques — so under an
/// allocation of two TAU multipliers the scheduler must insert schedule
/// arcs (the paper merges `O4` into `(O6, O4, O8)`).
pub fn fig3_dfg() -> Dfg {
    use crate::graph::OpId;
    let mut b = DfgBuilder::new("fig3");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let h = b.input("h");
    let i = b.input("i");
    // Ids must match the paper's O0..O8 labels, so forward references to
    // not-yet-added nodes use explicit OpIds; `build` validates them.
    let o0 = b.mul(a.into(), bb.into()); // O0 = a·b
    let o1 = b.mul(o0.into(), Operand::Op(OpId(3))); // O1 = O0·O3
    let o2 = b.add(o1.into(), Operand::Op(OpId(4))); // O2 = O1 + O4
    let _o3 = b.add(c.into(), d.into()); // O3 = c + d
    let _o4 = b.mul(Operand::Op(OpId(3)), e.into()); // O4 = O3·e
    let o5 = b.add(o2.into(), Operand::Op(OpId(8))); // O5 = O2 + O8
    let o6 = b.mul(f.into(), g.into()); // O6 = f·g
    let o7 = b.add(o6.into(), h.into()); // O7 = O6 + h
    let _o8 = b.mul(o7.into(), i.into()); // O8 = O7·i
    b.output("r", o5);
    b.build().expect("fig3 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::LevelAnalysis;
    use crate::graph::ResourceClass;

    #[test]
    fn diffeq_shape() {
        let g = diffeq();
        let h = g.class_histogram();
        assert_eq!(h[&ResourceClass::Multiplier], 6);
        assert_eq!(h[&ResourceClass::Adder], 2);
        assert_eq!(h[&ResourceClass::Subtractor], 3); // 2 subs + 1 compare
                                                      // Critical path: (3x | u·dx) -> 3x·u·dx -> s1 -> s2
        assert_eq!(LevelAnalysis::new(&g).depth(), 4);
    }

    #[test]
    fn diffeq_evaluates_euler_step() {
        let g = diffeq();
        // x=1, y=2, u=3, dx=1, a=10
        let out = g.evaluate(&[1, 2, 3, 1, 10]);
        assert_eq!(out["x1"], 2);
        assert_eq!(out["y1"], 2 + 3);
        assert_eq!(out["u1"], 3 - (3 * 3) - (3 * 2));
        assert_eq!(out["c"], 1);
    }

    #[test]
    fn fir_shapes() {
        for (g, muls, adds) in [(fir3(), 3, 2), (fir5(), 5, 4)] {
            let h = g.class_histogram();
            assert_eq!(h[&ResourceClass::Multiplier], muls);
            assert_eq!(h[&ResourceClass::Adder], adds);
        }
        // Linear accumulation: depth = 1 (mult) + (taps-1) adds.
        assert_eq!(LevelAnalysis::new(&fir3()).depth(), 3);
        assert_eq!(LevelAnalysis::new(&fir5()).depth(), 5);
    }

    #[test]
    fn fir_computes_dot_product() {
        let g = fir3();
        // xs = [1,2,3], cs = [4,5,6] -> 4 + 10 + 18 = 32
        let out = g.evaluate(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(out["y"], 32);
    }

    #[test]
    fn iir_shapes() {
        let h2 = iir2().class_histogram();
        assert_eq!(h2[&ResourceClass::Multiplier], 5);
        assert_eq!(h2[&ResourceClass::Adder], 4);
        let h3 = iir3().class_histogram();
        assert_eq!(h3[&ResourceClass::Multiplier], 7);
        assert_eq!(h3[&ResourceClass::Adder], 6);
    }

    #[test]
    fn iir2_computes_biquad() {
        let g = iir2();
        // xs = [1,2,3], ys = [4,5], bs = [6,7,8], as = [9,10]
        // y = 1*6 + 2*7 + 3*8 + 4*9 + 5*10 = 6+14+24+36+50 = 130
        let out = g.evaluate(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(out["y"], 130);
    }

    #[test]
    fn lattice_shape_and_value() {
        let g = ar_lattice4();
        let h = g.class_histogram();
        assert_eq!(h[&ResourceClass::Multiplier], 16);
        assert_eq!(h[&ResourceClass::Adder], 8);
        assert_eq!(LevelAnalysis::new(&g).depth(), 8);
        // One stage by hand: f0=1, b0=2, k=(3,4,5,6):
        //   f1 = 3*1 + 4*2 = 11, b1 = 5*1 + 6*2 = 17
        let g1 = ar_lattice(1);
        let out = g1.evaluate(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(out["f"], 11);
        assert_eq!(out["b"], 17);
    }

    #[test]
    fn ewf_shape() {
        let g = ewf();
        let h = g.class_histogram();
        assert_eq!(h[&ResourceClass::Multiplier], 8);
        assert_eq!(h[&ResourceClass::Adder], 20);
        assert!(LevelAnalysis::new(&g).depth() >= 11);
    }

    #[test]
    fn fig3_structure() {
        use crate::graph::{OpId, OpKind};
        let g = fig3_dfg();
        assert_eq!(g.num_ops(), 9);
        let mul_ids: Vec<usize> = g
            .op_ids()
            .filter(|&o| g.op(o).kind == OpKind::Mul)
            .map(|o| o.0)
            .collect();
        assert_eq!(mul_ids, vec![0, 1, 4, 6, 8]);
        // Dependency facts behind Fig 3(b)'s clique structure:
        // O0 -> O1 (direct), O6 -> O8 (via O7), O4 independent of all mults.
        assert!(g.preds(OpId(1)).contains(&OpId(0)));
        assert_eq!(g.preds(OpId(8)), vec![OpId(7)]);
        assert_eq!(g.preds(OpId(7)), vec![OpId(6)]);
        assert_eq!(g.preds(OpId(4)), vec![OpId(3)]);
        assert_eq!(g.preds(OpId(3)), vec![]);
        // Functional sanity: r = (a·b·(c+d) + (c+d)·e) + (f·g + h)·i
        let out = g.evaluate(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(out["r"], (2 * 7 + 7 * 5) + (6 * 7 + 8) * 9);
    }

    #[test]
    fn fig2_structure() {
        let g = fig2_dfg();
        assert_eq!(g.num_ops(), 6);
        let la = LevelAnalysis::new(&g);
        assert_eq!(la.depth(), 4);
        // O1 depends only on O0 (the concurrency-loss example of §2.3).
        use crate::graph::OpId;
        assert_eq!(g.preds(OpId(1)), vec![OpId(0)]);
    }
}
