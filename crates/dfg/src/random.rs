//! Random DFG generation for property-based testing and scalability
//! benchmarks.

use crate::graph::{Dfg, DfgBuilder, OpKind, Operand};
use rand::Rng;

/// Parameters for [`random_dfg`].
#[derive(Clone, Copy, Debug)]
pub struct RandomDfgParams {
    /// Number of operation nodes.
    pub num_ops: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Probability that an operand of node `i` reads an earlier node
    /// rather than a primary input (higher = deeper graphs).
    pub internal_edge_prob: f64,
    /// Relative weights for drawing Add / Sub / Mul / Lt kinds.
    pub kind_weights: [u32; 4],
}

impl Default for RandomDfgParams {
    fn default() -> Self {
        RandomDfgParams {
            num_ops: 20,
            num_inputs: 6,
            internal_edge_prob: 0.6,
            kind_weights: [3, 1, 3, 0],
        }
    }
}

/// Generates a random acyclic DFG: node `i` may only read inputs or nodes
/// `j < i`, so the result is valid by construction. Every node with no
/// consumer becomes a primary output.
///
/// # Panics
///
/// Panics if `num_ops == 0`, `num_inputs == 0`, or all kind weights are 0.
pub fn random_dfg(rng: &mut impl Rng, params: &RandomDfgParams) -> Dfg {
    assert!(params.num_ops > 0 && params.num_inputs > 0);
    let total: u32 = params.kind_weights.iter().sum();
    assert!(total > 0, "at least one op kind must have weight");
    let mut b = DfgBuilder::new("random");
    let inputs: Vec<_> = (0..params.num_inputs)
        .map(|i| b.input(format!("in{i}")))
        .collect();

    fn draw_kind(rng: &mut impl Rng, weights: &[u32; 4], total: u32) -> OpKind {
        let mut t = rng.random_range(0..total);
        for (k, &w) in weights.iter().enumerate() {
            if t < w {
                return match k {
                    0 => OpKind::Add,
                    1 => OpKind::Sub,
                    2 => OpKind::Mul,
                    _ => OpKind::Lt,
                };
            }
            t -= w;
        }
        unreachable!()
    }
    fn draw_operand(
        rng: &mut impl Rng,
        ids: &[crate::graph::OpId],
        inputs: &[crate::graph::InputId],
        p_internal: f64,
    ) -> Operand {
        if !ids.is_empty() && rng.random_bool(p_internal) {
            Operand::Op(ids[rng.random_range(0..ids.len())])
        } else {
            Operand::Input(inputs[rng.random_range(0..inputs.len())])
        }
    }

    let mut op_ids = Vec::with_capacity(params.num_ops);
    for _ in 0..params.num_ops {
        let lhs = draw_operand(rng, &op_ids, &inputs, params.internal_edge_prob);
        let rhs = draw_operand(rng, &op_ids, &inputs, params.internal_edge_prob);
        let kind = draw_kind(rng, &params.kind_weights, total);
        op_ids.push(b.op(kind, lhs, rhs));
    }

    // Sinks become outputs so every node matters.
    let probe = b.clone().build().expect("construction is acyclic");
    for v in probe.op_ids() {
        if probe.succs(v).is_empty() {
            b.output(format!("out{}", v.0), v);
        }
    }
    b.build().expect("construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_are_valid_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..20 {
            let params = RandomDfgParams {
                num_ops: 5 + seed as usize,
                ..Default::default()
            };
            let g = random_dfg(&mut rng, &params);
            assert_eq!(g.num_ops(), params.num_ops);
            g.validate().expect("random graph valid");
            assert!(!g.outputs().is_empty(), "at least one sink");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let params = RandomDfgParams::default();
        let a = random_dfg(&mut StdRng::seed_from_u64(99), &params);
        let b = random_dfg(&mut StdRng::seed_from_u64(99), &params);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_zero_excludes_kind() {
        let params = RandomDfgParams {
            kind_weights: [1, 0, 0, 0],
            ..Default::default()
        };
        let g = random_dfg(&mut StdRng::seed_from_u64(1), &params);
        assert!(g.ops().iter().all(|o| o.kind == OpKind::Add));
    }
}
