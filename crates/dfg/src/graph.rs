//! The dataflow-graph model: operations, operands, data edges.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an operation node within a [`Dfg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Identifier of a primary input of a [`Dfg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InputId(pub usize);

/// The arithmetic operation performed by a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Two's-complement multiplication.
    Mul,
    /// Signed less-than comparison producing 0 or 1.
    Lt,
}

impl OpKind {
    /// The class of functional unit able to execute this operation.
    pub fn resource_class(self) -> ResourceClass {
        match self {
            OpKind::Add => ResourceClass::Adder,
            OpKind::Sub => ResourceClass::Subtractor,
            OpKind::Mul => ResourceClass::Multiplier,
            // Comparison is a subtraction whose sign bit is observed, so it
            // shares the subtractor class (this matches the paper's Diff.Eq
            // allocation, which lists only {×, +, −} units).
            OpKind::Lt => ResourceClass::Subtractor,
        }
    }

    /// The operator symbol used in displays, e.g. `*` for multiplication.
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Lt => "<",
        }
    }

    /// Evaluates the operation on two's-complement values.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            OpKind::Add => a.wrapping_add(b),
            OpKind::Sub => a.wrapping_sub(b),
            OpKind::Mul => a.wrapping_mul(b),
            OpKind::Lt => i64::from(a < b),
        }
    }
}

/// Classes of functional units that can be allocated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ResourceClass {
    /// Executes [`OpKind::Mul`]. In this reproduction, the class implemented
    /// as a telescopic unit in the paper's experiments.
    Multiplier,
    /// Executes [`OpKind::Add`].
    Adder,
    /// Executes [`OpKind::Sub`] and [`OpKind::Lt`].
    Subtractor,
}

impl ResourceClass {
    /// All resource classes, in display order.
    pub const ALL: [ResourceClass; 3] = [
        ResourceClass::Multiplier,
        ResourceClass::Adder,
        ResourceClass::Subtractor,
    ];

    /// Short display name (`mul` / `add` / `sub`).
    pub fn short_name(self) -> &'static str {
        match self {
            ResourceClass::Multiplier => "mul",
            ResourceClass::Adder => "add",
            ResourceClass::Subtractor => "sub",
        }
    }
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One operand of an operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A primary input of the graph.
    Input(InputId),
    /// A compile-time constant.
    Const(i64),
    /// The result of another operation.
    Op(OpId),
}

/// An operation node: a kind plus its two operands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operation {
    /// What the node computes.
    pub kind: OpKind,
    /// Left operand.
    pub lhs: Operand,
    /// Right operand.
    pub rhs: Operand,
}

/// Errors reported by [`Dfg::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfgError {
    /// An operand references an operation id not present in the graph.
    DanglingOp(OpId),
    /// An operand references an input id not present in the graph.
    DanglingInput(InputId),
    /// An output references an operation id not present in the graph.
    DanglingOutput(OpId),
    /// The data dependences contain a cycle through the given operation.
    Cycle(OpId),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::DanglingOp(o) => write!(f, "operand references missing operation {o}"),
            DfgError::DanglingInput(i) => write!(f, "operand references missing input {i:?}"),
            DfgError::DanglingOutput(o) => write!(f, "output references missing operation {o}"),
            DfgError::Cycle(o) => write!(f, "data-dependence cycle through {o}"),
        }
    }
}

impl std::error::Error for DfgError {}

/// A dataflow graph: primary inputs, operation nodes, and named outputs.
///
/// Data edges are implicit in the operand references. The graph must be
/// acyclic; [`Dfg::validate`] (called by [`DfgBuilder::build`]) checks this.
///
/// # Examples
///
/// ```
/// use tauhls_dfg::{DfgBuilder, OpKind, Operand};
/// let mut b = DfgBuilder::new("tiny");
/// let x = b.input("x");
/// let y = b.input("y");
/// let m = b.op(OpKind::Mul, x.into(), y.into());
/// let s = b.op(OpKind::Add, m.into(), Operand::Const(1));
/// b.output("r", s);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_ops(), 2);
/// let out = g.evaluate(&[3, 4]);
/// assert_eq!(out["r"], 13);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Dfg {
    name: String,
    input_names: Vec<String>,
    ops: Vec<Operation>,
    outputs: Vec<(String, OpId)>,
}

impl Dfg {
    /// The graph's name (used in reports and exported files).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operation nodes.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Primary input names, indexed by [`InputId`].
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.0]
    }

    /// All operations, indexed by [`OpId`].
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len()).map(OpId)
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, OpId)] {
        &self.outputs
    }

    /// Direct predecessor operations (data-dependence parents on *other*
    /// operations; inputs and constants are not included).
    pub fn preds(&self, id: OpId) -> Vec<OpId> {
        let op = &self.ops[id.0];
        let mut out = Vec::with_capacity(2);
        for operand in [op.lhs, op.rhs] {
            if let Operand::Op(p) = operand {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Direct successor operations (consumers of this node's result).
    pub fn succs(&self, id: OpId) -> Vec<OpId> {
        self.op_ids()
            .filter(|&s| self.preds(s).contains(&id))
            .collect()
    }

    /// Ids of operations with the given resource class.
    pub fn ops_of_class(&self, class: ResourceClass) -> Vec<OpId> {
        self.op_ids()
            .filter(|&o| self.ops[o.0].kind.resource_class() == class)
            .collect()
    }

    /// Count of operations per resource class.
    pub fn class_histogram(&self) -> HashMap<ResourceClass, usize> {
        let mut h = HashMap::new();
        for op in &self.ops {
            *h.entry(op.kind.resource_class()).or_insert(0) += 1;
        }
        h
    }

    /// Checks structural validity: operand references in range and no
    /// data-dependence cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`DfgError`] found.
    pub fn validate(&self) -> Result<(), DfgError> {
        for op in &self.ops {
            for operand in [op.lhs, op.rhs] {
                match operand {
                    Operand::Op(p) if p.0 >= self.ops.len() => return Err(DfgError::DanglingOp(p)),
                    Operand::Input(i) if i.0 >= self.input_names.len() => {
                        return Err(DfgError::DanglingInput(i))
                    }
                    _ => {}
                }
            }
        }
        for (_, o) in &self.outputs {
            if o.0 >= self.ops.len() {
                return Err(DfgError::DanglingOutput(*o));
            }
        }
        // Cycle check via DFS colouring.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        fn dfs(g: &Dfg, v: OpId, marks: &mut [Mark]) -> Result<(), DfgError> {
            marks[v.0] = Mark::Grey;
            for p in g.preds(v) {
                match marks[p.0] {
                    Mark::Grey => return Err(DfgError::Cycle(p)),
                    Mark::White => dfs(g, p, marks)?,
                    Mark::Black => {}
                }
            }
            marks[v.0] = Mark::Black;
            Ok(())
        }
        let mut marks = vec![Mark::White; self.ops.len()];
        for v in self.op_ids() {
            if marks[v.0] == Mark::White {
                dfs(self, v, &mut marks)?;
            }
        }
        Ok(())
    }

    /// A topological order of the operations (predecessors first).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic (guarded by [`Dfg::validate`] at build
    /// time).
    pub fn topo_order(&self) -> Vec<OpId> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<OpId>> = vec![Vec::new(); n];
        for v in self.op_ids() {
            for p in self.preds(v) {
                indeg[v.0] += 1;
                succs[p.0].push(v);
            }
        }
        // Kahn's algorithm with a min-heap on ids for a deterministic order.
        let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<OpId>> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| std::cmp::Reverse(OpId(i)))
            .collect();
        let mut out = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(v)) = queue.pop() {
            out.push(v);
            for &s in &succs[v.0] {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    queue.push(std::cmp::Reverse(s));
                }
            }
        }
        assert_eq!(out.len(), n, "cyclic graph");
        out
    }

    /// Evaluates the graph on concrete input values (by [`InputId`] index),
    /// returning the named outputs. Reference semantics for simulation
    /// checking.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn evaluate(&self, inputs: &[i64]) -> HashMap<String, i64> {
        assert_eq!(inputs.len(), self.num_inputs(), "wrong input count");
        let values = self.evaluate_all(inputs);
        self.outputs
            .iter()
            .map(|(name, id)| (name.clone(), values[id.0]))
            .collect()
    }

    /// Evaluates every operation, returning the value per [`OpId`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn evaluate_all(&self, inputs: &[i64]) -> Vec<i64> {
        assert_eq!(inputs.len(), self.num_inputs(), "wrong input count");
        let mut values = vec![0i64; self.ops.len()];
        let order = {
            // plain Kahn order
            let n = self.ops.len();
            let mut indeg = vec![0usize; n];
            let mut succs: Vec<Vec<OpId>> = vec![Vec::new(); n];
            for v in self.op_ids() {
                for p in self.preds(v) {
                    indeg[v.0] += 1;
                    succs[p.0].push(v);
                }
            }
            let mut queue: Vec<OpId> = (0..n).filter(|&i| indeg[i] == 0).map(OpId).collect();
            let mut out = Vec::with_capacity(n);
            while let Some(v) = queue.pop() {
                out.push(v);
                for &s in &succs[v.0] {
                    indeg[s.0] -= 1;
                    if indeg[s.0] == 0 {
                        queue.push(s);
                    }
                }
            }
            out
        };
        for v in order {
            let op = &self.ops[v.0];
            let read = |o: Operand| -> i64 {
                match o {
                    Operand::Input(i) => inputs[i.0],
                    Operand::Const(c) => c,
                    Operand::Op(p) => values[p.0],
                }
            };
            values[v.0] = op.kind.apply(read(op.lhs), read(op.rhs));
        }
        values
    }
}

/// Incremental builder for [`Dfg`].
#[derive(Clone, Debug, Default)]
pub struct DfgBuilder {
    name: String,
    input_names: Vec<String>,
    ops: Vec<Operation>,
    outputs: Vec<(String, OpId)>,
}

impl DfgBuilder {
    /// Starts a new graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a primary input and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> InputId {
        self.input_names.push(name.into());
        InputId(self.input_names.len() - 1)
    }

    /// Adds an operation node and returns its id.
    pub fn op(&mut self, kind: OpKind, lhs: Operand, rhs: Operand) -> OpId {
        self.ops.push(Operation { kind, lhs, rhs });
        OpId(self.ops.len() - 1)
    }

    /// Convenience: `lhs + rhs`.
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> OpId {
        self.op(OpKind::Add, lhs, rhs)
    }

    /// Convenience: `lhs - rhs`.
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> OpId {
        self.op(OpKind::Sub, lhs, rhs)
    }

    /// Convenience: `lhs * rhs`.
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> OpId {
        self.op(OpKind::Mul, lhs, rhs)
    }

    /// Convenience: `lhs < rhs`.
    pub fn lt(&mut self, lhs: Operand, rhs: Operand) -> OpId {
        self.op(OpKind::Lt, lhs, rhs)
    }

    /// Marks an operation's result as a named primary output.
    pub fn output(&mut self, name: impl Into<String>, op: OpId) {
        self.outputs.push((name.into(), op));
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`DfgError`] if references dangle or dependences cycle.
    pub fn build(self) -> Result<Dfg, DfgError> {
        let g = Dfg {
            name: self.name,
            input_names: self.input_names,
            ops: self.ops,
            outputs: self.outputs,
        };
        g.validate()?;
        Ok(g)
    }
}

impl From<InputId> for Operand {
    fn from(i: InputId) -> Operand {
        Operand::Input(i)
    }
}

impl From<OpId> for Operand {
    fn from(o: OpId) -> Operand {
        Operand::Op(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x.into(), y.into());
        let a = b.add(m.into(), Operand::Const(5));
        let c = b.lt(a.into(), x.into());
        b.output("sum", a);
        b.output("cmp", c);
        b.build().unwrap()
    }

    #[test]
    fn evaluate_reference_semantics() {
        let g = tiny();
        let out = g.evaluate(&[2, 3]);
        assert_eq!(out["sum"], 11);
        assert_eq!(out["cmp"], 0);
        let out = g.evaluate(&[100, -3]);
        assert_eq!(out["sum"], -295);
        assert_eq!(out["cmp"], 1);
    }

    #[test]
    fn preds_and_succs() {
        let g = tiny();
        assert_eq!(g.preds(OpId(0)), vec![]);
        assert_eq!(g.preds(OpId(1)), vec![OpId(0)]);
        assert_eq!(g.succs(OpId(0)), vec![OpId(1)]);
        assert_eq!(g.succs(OpId(1)), vec![OpId(2)]);
        assert_eq!(g.succs(OpId(2)), vec![]);
    }

    #[test]
    fn duplicate_operand_listed_once_in_preds() {
        let mut b = DfgBuilder::new("sq");
        let x = b.input("x");
        let m = b.mul(x.into(), x.into());
        let s = b.mul(m.into(), m.into());
        b.output("y", s);
        let g = b.build().unwrap();
        assert_eq!(g.preds(OpId(1)), vec![OpId(0)]);
        assert_eq!(g.evaluate(&[3])["y"], 81);
    }

    #[test]
    fn class_histogram_counts() {
        let g = tiny();
        let h = g.class_histogram();
        assert_eq!(h[&ResourceClass::Multiplier], 1);
        assert_eq!(h[&ResourceClass::Adder], 1);
        assert_eq!(h[&ResourceClass::Subtractor], 1); // the Lt
    }

    #[test]
    fn topo_order_respects_dependences() {
        let g = tiny();
        let order = g.topo_order();
        assert_eq!(order.len(), 3);
        let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for v in g.op_ids() {
            for p in g.preds(v) {
                assert!(pos[&p] < pos[&v]);
            }
        }
    }

    #[test]
    fn validate_rejects_dangling() {
        let g = Dfg {
            name: "bad".into(),
            input_names: vec![],
            ops: vec![Operation {
                kind: OpKind::Add,
                lhs: Operand::Op(OpId(7)),
                rhs: Operand::Const(0),
            }],
            outputs: vec![],
        };
        assert_eq!(g.validate(), Err(DfgError::DanglingOp(OpId(7))));
    }

    #[test]
    fn validate_rejects_cycle() {
        let g = Dfg {
            name: "cyc".into(),
            input_names: vec![],
            ops: vec![
                Operation {
                    kind: OpKind::Add,
                    lhs: Operand::Op(OpId(1)),
                    rhs: Operand::Const(0),
                },
                Operation {
                    kind: OpKind::Add,
                    lhs: Operand::Op(OpId(0)),
                    rhs: Operand::Const(0),
                },
            ],
            outputs: vec![],
        };
        assert!(matches!(g.validate(), Err(DfgError::Cycle(_))));
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn evaluate_checks_arity() {
        tiny().evaluate(&[1]);
    }
}
