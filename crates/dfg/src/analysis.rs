//! Structural analyses over dataflow graphs: ASAP/ALAP levels, mobility,
//! critical path.
//!
//! Levels are in abstract *time steps* assuming unit latency per operation —
//! the convention of the paper's original (pre-telescopic) scheduling. The
//! telescopic timing itself is introduced later by the controller generation
//! and simulation stages.

use crate::graph::{Dfg, OpId};

/// Per-operation scheduling freedom derived from ASAP/ALAP analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelAnalysis {
    asap: Vec<usize>,
    alap: Vec<usize>,
    depth: usize,
}

impl LevelAnalysis {
    /// Runs ASAP and ALAP labelling on the graph (unit latencies).
    pub fn new(g: &Dfg) -> Self {
        let n = g.num_ops();
        let order = g.topo_order();
        let mut asap = vec![0usize; n];
        for &v in &order {
            asap[v.0] = g.preds(v).iter().map(|p| asap[p.0] + 1).max().unwrap_or(0);
        }
        let depth = asap.iter().copied().max().map_or(0, |d| d + 1);
        let mut alap = vec![depth.saturating_sub(1); n];
        for &v in order.iter().rev() {
            let succ_min = g.succs(v).iter().map(|s| alap[s.0]).min();
            if let Some(s) = succ_min {
                alap[v.0] = s - 1;
            }
        }
        LevelAnalysis { asap, alap, depth }
    }

    /// Earliest time step at which the operation can run.
    pub fn asap(&self, v: OpId) -> usize {
        self.asap[v.0]
    }

    /// Latest time step at which the operation can run without stretching
    /// the schedule beyond the critical path.
    pub fn alap(&self, v: OpId) -> usize {
        self.alap[v.0]
    }

    /// `alap - asap`: the operation's scheduling freedom.
    pub fn mobility(&self, v: OpId) -> usize {
        self.alap[v.0] - self.asap[v.0]
    }

    /// Number of time steps on the critical path (unit latencies).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Operations with zero mobility, in ASAP order — the critical path(s).
    pub fn critical_ops(&self) -> Vec<OpId> {
        let mut out: Vec<OpId> = (0..self.asap.len())
            .map(OpId)
            .filter(|&v| self.mobility(v) == 0)
            .collect();
        out.sort_by_key(|&v| self.asap(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DfgBuilder, Operand};

    /// Diamond: m0, m1 independent; a = m0 + m1; s = a - m0.
    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("d");
        let x = b.input("x");
        let y = b.input("y");
        let m0 = b.mul(x.into(), y.into());
        let m1 = b.mul(x.into(), Operand::Const(3));
        let a = b.add(m0.into(), m1.into());
        let s = b.sub(a.into(), m0.into());
        b.output("o", s);
        b.build().unwrap()
    }

    #[test]
    fn asap_alap_depth() {
        let g = diamond();
        let la = LevelAnalysis::new(&g);
        assert_eq!(la.depth(), 3);
        assert_eq!(la.asap(OpId(0)), 0);
        assert_eq!(la.asap(OpId(1)), 0);
        assert_eq!(la.asap(OpId(2)), 1);
        assert_eq!(la.asap(OpId(3)), 2);
        assert_eq!(la.alap(OpId(0)), 0); // feeds both a and s transitively
        assert_eq!(la.alap(OpId(1)), 0);
        assert_eq!(la.alap(OpId(3)), 2);
    }

    #[test]
    fn mobility_zero_on_critical_path() {
        let g = diamond();
        let la = LevelAnalysis::new(&g);
        // Everything here is critical except none — depth 3 with 4 ops; m1
        // feeds only `a`, so alap(m1)=0 as well -> mobility 0 everywhere.
        for v in g.op_ids() {
            assert_eq!(la.mobility(v), 0, "{v}");
        }
        assert_eq!(la.critical_ops().len(), 4);
    }

    #[test]
    fn slack_appears_off_critical_path() {
        let mut b = DfgBuilder::new("s");
        let x = b.input("x");
        // chain of three mults (critical), plus one independent add.
        let m0 = b.mul(x.into(), x.into());
        let m1 = b.mul(m0.into(), x.into());
        let m2 = b.mul(m1.into(), x.into());
        let a = b.add(x.into(), Operand::Const(1));
        b.output("m", m2);
        b.output("a", a);
        let g = b.build().unwrap();
        let la = LevelAnalysis::new(&g);
        assert_eq!(la.depth(), 3);
        assert_eq!(la.mobility(OpId(3)), 2); // the add floats freely
        assert_eq!(la.critical_ops(), vec![OpId(0), OpId(1), OpId(2)]);
    }

    #[test]
    fn empty_graph() {
        let g = DfgBuilder::new("e").build().unwrap();
        let la = LevelAnalysis::new(&g);
        assert_eq!(la.depth(), 0);
        assert!(la.critical_ops().is_empty());
    }
}
