//! Hostile-input hardening for `parse_wire_dfg`: arbitrary garbage,
//! mutated and truncated well-formed documents, JSON depth bombs, and a
//! targeted corpus of the nastiest shapes must always come back as a
//! `WireError` (or a valid graph) — never a panic. Every error renders
//! as `byte {offset}: {message}` with the offset inside the document.

use tauhls_check::forall;
use tauhls_dfg::{benchmarks, canonical_wire, parse_wire_dfg};

/// A token pool biased toward the wire grammar, so mutations explore
/// the parser's semantic checks instead of bouncing off JSON syntax.
const TOKENS: [&str; 22] = [
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "\"nodes\"",
    "\"edges\"",
    "\"outputs\"",
    "\"params\"",
    "\"id\"",
    "\"op\"",
    "\"value\"",
    "\"from\"",
    "\"to\"",
    "\"port\"",
    "\"input\"",
    "\"const\"",
    "\"add\"",
    "\"a\"",
    "-9223372036854775808",
    "0",
];

fn wellformed_corpus() -> Vec<String> {
    ["diffeq", "fir5", "iir3", "ewf"]
        .iter()
        .map(|name| canonical_wire(&benchmarks::by_name(name).expect("benchmark exists")))
        .collect()
}

/// The property under test: parsing terminates with a `Result`, and the
/// error path formats into a non-empty, byte-offset message pointing
/// inside the document.
fn never_panics(text: &str) {
    match parse_wire_dfg(text) {
        Ok(g) => {
            assert!(!g.name().is_empty());
            assert!(g.num_ops() > 0 || g.num_inputs() > 0);
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.starts_with("byte "), "unexpected error shape: {msg}");
            assert!(!e.message.is_empty());
            assert!(
                e.offset <= text.len(),
                "offset {} > len {}",
                e.offset,
                text.len()
            );
        }
    }
}

#[test]
fn random_token_soup_never_panics() {
    forall("wire_fuzz_token_soup", 300, |g| {
        let tokens = g.usize(0..40);
        let mut text = String::new();
        for _ in 0..tokens {
            #[allow(clippy::explicit_auto_deref)]
            text.push_str(*g.choose(&TOKENS));
            if g.bool(0.3) {
                text.push(' ');
            }
        }
        never_panics(&text);
    });
}

#[test]
fn random_bytes_never_panic() {
    forall("wire_fuzz_random_bytes", 300, |g| {
        let len = g.usize(0..200);
        let text: String = (0..len)
            .map(|_| match g.usize(0..10) {
                0 => '\u{00e9}',
                1 => '\u{4e16}',
                2 => '\n',
                3 => '\0',
                4 => '"',
                5 => '\\',
                _ => char::from(g.u8(9..127)),
            })
            .collect();
        never_panics(&text);
    });
}

#[test]
fn mutated_wellformed_documents_never_panic() {
    let corpus = wellformed_corpus();
    forall("wire_fuzz_mutations", 300, |g| {
        let mut text = g.choose(&corpus).clone();
        for _ in 0..g.usize(1..6) {
            match g.usize(0..4) {
                // Replace one char (at a char boundary) with a hostile one.
                0 => {
                    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
                    if let Some(&at) = boundaries.get(g.usize(0..boundaries.len().max(1))) {
                        let mut s = String::with_capacity(text.len());
                        for (i, c) in text.char_indices() {
                            s.push(if i == at {
                                *g.choose(&['@', '\0', '{', '"', '\u{00e9}'])
                            } else {
                                c
                            });
                        }
                        text = s;
                    }
                }
                // Duplicate a random object entry span (duplicate-id path).
                1 => {
                    if let (Some(open), Some(close)) = (text.find('{'), text.find('}')) {
                        if open < close {
                            let span = text[open..=close].to_string();
                            text.insert_str(close + 1, &format!(",{span}"));
                        }
                    }
                }
                // Delete a random char span (dangling-reference path).
                2 => {
                    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
                    if boundaries.len() > 2 {
                        let i = g.usize(0..boundaries.len() - 1);
                        let j = (i + 1 + g.usize(0..8)).min(boundaries.len() - 1);
                        text = format!("{}{}", &text[..boundaries[i]], &text[boundaries[j]..]);
                    }
                }
                // Swap two halves (syntax-error offsets on valid UTF-8).
                _ => {
                    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
                    if boundaries.len() > 2 {
                        let mid = boundaries[g.usize(1..boundaries.len())];
                        text = format!("{}{}", &text[mid..], &text[..mid]);
                    }
                }
            }
        }
        never_panics(&text);
    });
}

#[test]
fn truncations_never_panic() {
    let corpus = wellformed_corpus();
    forall("wire_fuzz_truncations", 200, |g| {
        let text = g.choose(&corpus);
        let boundaries: Vec<usize> = text
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(text.len()))
            .collect();
        let cut = boundaries[g.usize(0..boundaries.len())];
        never_panics(&text[..cut]);
    });
}

#[test]
fn depth_bombs_are_rejected_not_overflowed() {
    // JSON nesting bomb: the strict parser's depth limit must answer
    // with a byte-offset error, not recurse to death.
    for bomb in [
        "[".repeat(100_000),
        "{\"nodes\":".repeat(50_000),
        format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000)),
    ] {
        never_panics(&bomb);
        assert!(parse_wire_dfg(&bomb).is_err());
    }
    // Graph-shaped depth bomb: a maximal linear op chain parses fine
    // (the cycle check is iterative), one node past the cap is rejected.
    let chain = |n: usize| {
        let mut nodes = vec![r#"{"id":"a","op":"input"}"#.to_string()];
        let mut edges = Vec::new();
        for i in 0..n {
            nodes.push(format!(r#"{{"id":"n{i}","op":"add"}}"#));
            let prev = if i == 0 {
                "a".into()
            } else {
                format!("n{}", i - 1)
            };
            edges.push(format!(r#"{{"from":"{prev}","to":"n{i}","port":0}}"#));
            edges.push(format!(r#"{{"from":"a","to":"n{i}","port":1}}"#));
        }
        format!(
            r#"{{"nodes":[{}],"edges":[{}],"outputs":{{"o":"n{}"}}}}"#,
            nodes.join(","),
            edges.join(","),
            n - 1
        )
    };
    assert!(parse_wire_dfg(&chain(tauhls_dfg::MAX_WIRE_NODES - 1)).is_ok());
    let over = parse_wire_dfg(&chain(tauhls_dfg::MAX_WIRE_NODES)).expect_err("over the cap");
    assert!(over.message.contains("too many nodes"), "{over}");
}

#[test]
fn targeted_hostile_inputs() {
    for text in [
        "",
        "{}",
        "null",
        "[]",
        r#"{"nodes":[],"edges":[],"outputs":{}}"#,
        r#"{"nodes":[{"id":"a","op":"input"},{"id":"a","op":"input"}],"edges":[],"outputs":{}}"#,
        r#"{"nodes":[{"id":"s","op":"add"}],"edges":[{"from":"s","to":"s"}],"outputs":{"o":"s"}}"#,
        r#"{"nodes":[{"id":"k","op":"const","value":1.5}],"edges":[],"outputs":{}}"#,
        r#"{"nodes":[{"id":"k","op":"const","value":18446744073709551615}],"edges":[],"outputs":{}}"#,
        r#"{"nodes":[{"id":"a","op":"input"}],"edges":[{"from":"a","to":"a","port":9}],"outputs":{}}"#,
        r#"{"nodes":[{"id":"é","op":"input"}],"edges":[],"outputs":{}}"#,
        r#"{"nodes":[{"id":"a","op":"input"}],"edges":[],"outputs":{"r":"a"},"params":{"name":""}}"#,
        r#"{"nodes":[{"id":"a","op":"input"}],"edges":[],"outputs":{"r":"ghost"}}"#,
        r#"{"nodes":{"id":"a"},"edges":[],"outputs":{}}"#,
        r#"{"nodes":[42],"edges":[],"outputs":{}}"#,
        r#"{"nodes":[{"id":"a","op":"input"}],"edges":[17],"outputs":{}}"#,
        "{\"nodes\":[{\"id\":\"a\",\"op\":\"input\"}],\"edges\":[],\"outputs\":{\"r\u{0000}\":\"a\"}}",
    ] {
        never_panics(text);
    }
}
