//! Golden test for the DOT export fed from the JSON wire format:
//! `tauhls dfg dot <file>` is this pipeline (parse_wire_dfg → to_dot),
//! and the exact rendering — including label escaping and quoted ids —
//! is pinned here so accidental format drift shows up as a diff.

use tauhls_dfg::{canonical_wire, parse_wire_dfg, to_dot};

/// A small wire document exercising every node flavour the exporter
/// renders: inputs, a const (negative, so the id needs quoting), chained
/// ops, and multiple outputs.
const WIRE: &str = r#"{
  "nodes": [
    {"id": "a", "op": "input"},
    {"id": "x", "op": "input"},
    {"id": "bias", "op": "const", "value": -5},
    {"id": "m", "op": "mul"},
    {"id": "s", "op": "add"},
    {"id": "cmp", "op": "lt"}
  ],
  "edges": [
    {"from": "a", "to": "m", "port": 0},
    {"from": "x", "to": "m", "port": 1},
    {"from": "m", "to": "s", "port": 0},
    {"from": "bias", "to": "s", "port": 1},
    {"from": "s", "to": "cmp", "port": 0},
    {"from": "a", "to": "cmp", "port": 1}
  ],
  "outputs": {"y": "s", "flag": "cmp"},
  "params": {"name": "golden"}
}"#;

const GOLDEN_DOT: &str = r#"digraph "golden" {
  rankdir=TB;
  in0 [label="a", shape=plaintext];
  in1 [label="x", shape=plaintext];
  op0 [label="O0 [*]", shape=circle];
  op1 [label="O1 [+]", shape=circle];
  op2 [label="O2 [<]", shape=circle];
  in0 -> op0;
  in1 -> op0;
  op0 -> op1;
  "const_1_-5" [label="-5", shape=plaintext]; "const_1_-5" -> op1;
  op1 -> op2;
  in0 -> op2;
  "out_y" [label="y", shape=plaintext];
  op1 -> "out_y";
  "out_flag" [label="flag", shape=plaintext];
  op2 -> "out_flag";
}
"#;

#[test]
fn wire_to_dot_matches_the_golden_rendering() {
    let dfg = parse_wire_dfg(WIRE).expect("golden wire document parses");
    assert_eq!(to_dot(&dfg, &[]), GOLDEN_DOT);
}

#[test]
fn golden_document_round_trips_through_canonical_wire() {
    let dfg = parse_wire_dfg(WIRE).expect("golden wire document parses");
    let canon = canonical_wire(&dfg);
    let reparsed = parse_wire_dfg(&canon).expect("canonical form parses");
    assert_eq!(canonical_wire(&reparsed), canon, "canonical form drifted");
    assert_eq!(
        to_dot(&reparsed, &[]),
        GOLDEN_DOT,
        "dot diverged after round trip"
    );
}
