//! Hostile-input hardening for `parse_dfg`: arbitrary garbage, mutated
//! and truncated well-formed text must always come back as a
//! `ParseDfgError` (or a valid graph) — never a panic. The `forall`
//! harness reports the failing case seed, so any input that slips through
//! replays deterministically.

use tauhls_check::forall;
use tauhls_dfg::{benchmarks, dfg_to_text, parse_dfg};

/// A pool of tokens biased toward the grammar, so mutations explore the
/// parser's deep paths instead of bouncing off the directive match.
const TOKENS: [&str; 18] = [
    "dfg",
    "input",
    "op",
    "output",
    "=",
    "add",
    "sub",
    "mul",
    "lt",
    "a",
    "x",
    "t0",
    "t1",
    "9223372036854775807",
    "-9223372036854775808",
    "#",
    "0",
    "zz",
];

fn wellformed_corpus() -> Vec<String> {
    [
        benchmarks::diffeq(),
        benchmarks::fir5(),
        benchmarks::iir3(),
        benchmarks::ewf(),
    ]
    .iter()
    .map(dfg_to_text)
    .collect()
}

/// The property under test: parsing terminates with a `Result`, and the
/// error path formats into a non-empty, line-numbered message.
fn never_panics(text: &str) {
    match parse_dfg(text) {
        Ok(g) => {
            // A graph that parses must at least be internally consistent.
            assert!(!g.name().is_empty());
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.starts_with("line "), "unexpected error shape: {msg}");
            assert!(!e.message.is_empty());
        }
    }
}

#[test]
fn random_token_soup_never_panics() {
    forall("parse_fuzz_token_soup", 300, |g| {
        let lines = g.usize(0..12);
        let mut text = String::new();
        for _ in 0..lines {
            let tokens = g.usize(0..7);
            for _ in 0..tokens {
                // The deref pins `choose`'s element type to `&str`;
                // without it inference unifies with `str` and fails.
                #[allow(clippy::explicit_auto_deref)]
                text.push_str(*g.choose(&TOKENS));
                text.push(if g.bool(0.9) { ' ' } else { '\t' });
            }
            text.push('\n');
        }
        never_panics(&text);
    });
}

#[test]
fn random_bytes_never_panic() {
    forall("parse_fuzz_random_bytes", 300, |g| {
        let len = g.usize(0..200);
        let text: String = (0..len)
            .map(|_| {
                // Mostly ASCII (printable + controls), sprinkled with
                // multi-byte chars to stress any byte-indexed slicing.
                match g.usize(0..10) {
                    0 => '\u{00e9}',
                    1 => '\u{4e16}',
                    2 => '\n',
                    3 => '\0',
                    _ => char::from(g.u8(9..127)),
                }
            })
            .collect();
        never_panics(&text);
    });
}

#[test]
fn mutated_wellformed_text_never_panics() {
    let corpus = wellformed_corpus();
    forall("parse_fuzz_mutations", 300, |g| {
        let mut text = g.choose(&corpus).clone();
        for _ in 0..g.usize(1..6) {
            match g.usize(0..4) {
                // Replace one char (at a char boundary) with a hostile one.
                0 => {
                    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
                    if let Some(&at) = boundaries.get(g.usize(0..boundaries.len().max(1))) {
                        let mut s = String::with_capacity(text.len());
                        for (i, c) in text.char_indices() {
                            s.push(if i == at {
                                *g.choose(&['@', '\0', '=', '\u{00e9}'])
                            } else {
                                c
                            });
                        }
                        text = s;
                    }
                }
                // Duplicate a random line (duplicate-name path).
                1 => {
                    let lines: Vec<&str> = text.lines().collect();
                    if !lines.is_empty() {
                        let l = lines[g.usize(0..lines.len())].to_string();
                        text.push_str(&l);
                        text.push('\n');
                    }
                }
                // Delete a random line (use-before-def path).
                2 => {
                    let lines: Vec<String> = text.lines().map(String::from).collect();
                    if lines.len() > 1 {
                        let skip = g.usize(0..lines.len());
                        text = lines
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != skip)
                            .map(|(_, l)| format!("{l}\n"))
                            .collect();
                    }
                }
                // Swap two lines (header-not-first / forward-ref paths).
                _ => {
                    let mut lines: Vec<String> = text.lines().map(String::from).collect();
                    if lines.len() > 1 {
                        let i = g.usize(0..lines.len());
                        let j = g.usize(0..lines.len());
                        lines.swap(i, j);
                        text = lines.iter().map(|l| format!("{l}\n")).collect();
                    }
                }
            }
        }
        never_panics(&text);
    });
}

#[test]
fn truncations_never_panic() {
    let corpus = wellformed_corpus();
    forall("parse_fuzz_truncations", 200, |g| {
        let text = g.choose(&corpus);
        let boundaries: Vec<usize> = text
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(text.len()))
            .collect();
        let cut = boundaries[g.usize(0..boundaries.len())];
        never_panics(&text[..cut]);
    });
}

#[test]
fn targeted_hostile_inputs() {
    // Deterministic regression corpus for the nastiest shapes.
    for text in [
        "",
        "\n\n\n",
        "#",
        "dfg",
        "dfg x\ndfg y\n",
        "op a = add 1 2\n",
        "dfg x\nop a = add a a\n",                       // self-reference
        "dfg x\nop a = mul 99999999999999999999999 1\n", // overflowing const
        "dfg x\ninput \u{4e16}\u{754c}\nop a = add \u{4e16}\u{754c} 1\noutput r a\n",
        "dfg x\ninput a\nop b = add a 1\noutput r b\noutput r b\n",
        "dfg x # comment\u{0}with\u{0}nuls\n",
        "output r t0\ndfg x\n",
    ] {
        never_panics(text);
    }
}
