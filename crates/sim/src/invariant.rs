//! Cross-simulator invariant checking.
//!
//! The paper's correctness argument (§4) is that the distributed
//! controllers, coordinating through completion signals alone, execute the
//! same dataflow tokens as a centralized controller would — just earlier.
//! This module makes that claim checkable:
//!
//! * **token conservation** — every operation fires exactly once per
//!   iteration: it starts, it completes, and completion does not precede
//!   start (the simulators latch a completion token at most once by
//!   construction, so a conserved run also has no duplicate fires);
//! * **lockstep equivalence** — a fault-free distributed run under a fixed
//!   completion table is legal, computes the same values as the
//!   centralized synchronized oracle under the *same* table, and never
//!   loses to it in latency.

use crate::batch::trial_rng;
use crate::centsync::simulate_cent_sync;
use crate::distributed::simulate_distributed;
use crate::model::CompletionModel;
use crate::result::SimResult;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;

/// Seed-space partition used by [`check_lockstep`]'s trial RNGs, chosen to
/// stay clear of the job ids sweeps hand to the batch engine.
const LOCKSTEP_JOB_ID: u64 = 0x70_6B_65_6E; // "tokn"

/// Checks token conservation on a completed run: every operation started
/// and completed exactly once, in that order.
pub fn check_token_conservation(result: &SimResult, bound: &BoundDfg) -> Result<(), String> {
    for v in bound.dfg().op_ids() {
        let (start, end) = (result.start_cycle[v.0], result.completion_cycle[v.0]);
        if end == 0 {
            return Err(format!("{v} never produced its completion token"));
        }
        if start == 0 {
            return Err(format!("{v} completed without ever starting"));
        }
        if start > end {
            return Err(format!(
                "{v} completed at cycle {end} before starting at cycle {start}"
            ));
        }
    }
    Ok(())
}

/// Runs `trials` coupled trials of the fault-free distributed engine
/// against the centralized synchronized oracle and checks, per trial:
/// token conservation, execution legality of both runs, value equivalence,
/// and latency dominance of the distributed controllers.
///
/// Deterministic in `(base_seed, trials)`; returns a description of the
/// first violated invariant.
pub fn check_lockstep(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    p: f64,
    trials: u64,
    base_seed: u64,
) -> Result<(), String> {
    let num_ops = bound.dfg().num_ops();
    for trial in 0..trials {
        let mut rng = trial_rng(base_seed, LOCKSTEP_JOB_ID, trial);
        let table = CompletionModel::draw_table(num_ops, p, &mut rng);
        let dist = simulate_distributed(bound, cu, &table, None, &mut rng)
            .map_err(|e| format!("trial {trial}: distributed run failed: {e}"))?;
        let sync = simulate_cent_sync(bound, &table, None, &mut rng)
            .map_err(|e| format!("trial {trial}: centralized run failed: {e}"))?;
        check_token_conservation(&dist, bound)
            .map_err(|e| format!("trial {trial}: distributed: {e}"))?;
        dist.verify(bound)
            .map_err(|e| format!("trial {trial}: distributed run illegal: {e}"))?;
        sync.verify(bound)
            .map_err(|e| format!("trial {trial}: centralized run illegal: {e}"))?;
        if dist.values != sync.values {
            return Err(format!(
                "trial {trial}: distributed and centralized runs disagree on values"
            ));
        }
        if dist.cycles > sync.cycles {
            return Err(format!(
                "trial {trial}: distributed control lost lockstep dominance ({} > {} cycles)",
                dist.cycles, sync.cycles
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{diffeq, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn paper_benchmarks_hold_the_invariants() {
        for (g, alloc) in [
            (fir5(), Allocation::paper(2, 1, 0)),
            (diffeq(), Allocation::paper(2, 1, 1)),
        ] {
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            check_lockstep(&bound, &cu, 0.5, 50, 99).unwrap();
        }
    }

    #[test]
    fn token_conservation_flags_broken_records() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = trial_rng(1, 0, 0);
        let mut run =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        check_token_conservation(&run, &bound).unwrap();
        // Break one field per case and restore it afterwards — no record
        // clones, and each check sees exactly one violation.
        let saved = std::mem::replace(&mut run.completion_cycle[2], 0);
        assert!(check_token_conservation(&run, &bound)
            .unwrap_err()
            .contains("never produced"));
        run.completion_cycle[2] = saved;
        let saved = std::mem::replace(&mut run.start_cycle[1], 0);
        assert!(check_token_conservation(&run, &bound)
            .unwrap_err()
            .contains("without ever starting"));
        run.start_cycle[1] = saved;
        run.start_cycle[0] = run.completion_cycle[0] + 1;
        assert!(check_token_conservation(&run, &bound)
            .unwrap_err()
            .contains("before starting"));
    }
}
