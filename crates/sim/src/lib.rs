//! # tauhls-sim — cycle-accurate simulation of telescopic control units
//!
//! The evaluation substrate of the `tauhls` workspace (paper §5):
//!
//! * [`simulate_distributed`] — steps every arithmetic-unit controller FSM
//!   cycle by cycle against the datapath, with combinational completion
//!   propagation and latched (`done`) completion flags;
//! * [`simulate_cent_sync`] — the synchronized TAUBM step-walk (`LT_TAU`);
//! * [`CompletionModel`] — Bernoulli(`P`), deterministic extremes, or
//!   operand-driven completion through `tauhls-datapath` bit-level units;
//! * [`latency_summary`] — the `[best][avg@P...][worst]` cells of Table 2
//!   plus the enhancement column;
//! * [`BatchRunner`] / [`SimJob`] — a deterministic parallel Monte-Carlo
//!   engine: per-trial RNGs derived from `(base_seed, job_id, trial)` and
//!   chunk-ordered reduction make results bit-identical for any thread
//!   count, with `threads = 1` as the reference oracle.
//!
//! # Examples
//!
//! Measure the FIR5 row of Table 2 (in cycles):
//!
//! ```
//! use tauhls_sim::{latency_summary, enhancement_percent, ControlStyle};
//! use tauhls_sched::{Allocation, BoundDfg};
//! use tauhls_dfg::benchmarks::fir5;
//! use rand::SeedableRng;
//!
//! let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dist = latency_summary(&bound, ControlStyle::Distributed, &[0.9], 200, &mut rng);
//! let sync = latency_summary(&bound, ControlStyle::CentSync, &[0.9], 200, &mut rng);
//! assert!(dist.average_cycles[0] <= sync.average_cycles[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod centsync;
mod distributed;
mod latency;
mod model;
mod pipeline;
mod result;

pub use batch::{
    derive_seed, latency_pair_batch, latency_summary_batch, trial_rng, Accumulator, BatchRunner,
    CycleStats, SimJob, DEFAULT_CHUNK_SIZE,
};
pub use centsync::{simulate_cent_sync, simulate_cent_sync_with_schedule};
pub use distributed::simulate_distributed;
pub use latency::{
    enhancement_percent, latency_pair, latency_summary, ControlStyle, LatencySummary,
};
pub use model::{CompletionModel, TauLibrary};
pub use pipeline::{simulate_pipelined, PipelinedResult};
pub use result::SimResult;
