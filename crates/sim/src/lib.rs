//! # tauhls-sim — cycle-accurate simulation of telescopic control units
//!
//! The evaluation substrate of the `tauhls` workspace (paper §5):
//!
//! * [`simulate_distributed`] — steps every arithmetic-unit controller FSM
//!   cycle by cycle against the datapath, with combinational completion
//!   propagation and latched (`done`) completion flags;
//! * [`simulate_cent_sync`] — the synchronized TAUBM step-walk (`LT_TAU`);
//! * [`CompletionModel`] — Bernoulli(`P`), deterministic extremes, or
//!   operand-driven completion through `tauhls-datapath` bit-level units;
//! * [`latency_summary`] — the `[best][avg@P...][worst]` cells of Table 2
//!   plus the enhancement column;
//! * [`BatchRunner`] / [`SimJob`] — a deterministic parallel Monte-Carlo
//!   engine: per-trial RNGs derived from `(base_seed, job_id, trial)` and
//!   chunk-ordered reduction make results bit-identical for any thread
//!   count, with `threads = 1` as the reference oracle;
//! * [`FaultPlan`] / [`SimConfig`] — deterministic completion-signal fault
//!   injection (stuck-at predictors, dropped/spurious pulses, delayed
//!   latches, state-register upsets), with abnormal runs classified as
//!   structured [`SimError`]s carrying per-controller diagnostics instead
//!   of panicking.
//!
//! # Examples
//!
//! Measure the FIR5 row of Table 2 (in cycles):
//!
//! ```
//! use tauhls_sim::{latency_summary, enhancement_percent, ControlStyle};
//! use tauhls_sched::{Allocation, BoundDfg};
//! use tauhls_dfg::benchmarks::fir5;
//! use rand::SeedableRng;
//!
//! let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let dist = latency_summary(&bound, ControlStyle::Distributed, &[0.9], 200, &mut rng).unwrap();
//! let sync = latency_summary(&bound, ControlStyle::CentSync, &[0.9], 200, &mut rng).unwrap();
//! assert!(dist.average_cycles[0] <= sync.average_cycles[0]);
//! ```
//!
//! Inject a stuck-at-long completion signal and observe the deadlock:
//!
//! ```
//! use tauhls_sim::{simulate_distributed_with, CompletionModel, FaultKind, FaultPlan,
//!                  SimConfig, SimError};
//! use tauhls_sched::{Allocation, BoundDfg};
//! use tauhls_fsm::DistributedControlUnit;
//! use tauhls_dfg::{benchmarks::fir5, OpId};
//! use rand::SeedableRng;
//!
//! let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
//! let cu = DistributedControlUnit::generate(&bound);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = SimConfig::with_faults(FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(0) }));
//! let err = simulate_distributed_with(
//!     &bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng, &cfg,
//! ).unwrap_err();
//! assert!(matches!(err, SimError::Deadlock(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod batch;
mod cent;
mod centsync;
mod distributed;
mod elastic;
mod error;
mod fault;
mod invariant;
pub mod kernel;
mod latency;
mod model;
mod pipeline;
mod result;
pub mod sliced;

pub use batch::{
    derive_seed, latency_pair_batch, latency_quad_batch, latency_quad_batch_indexed,
    latency_summary_batch, latency_triple_batch, latency_triple_batch_indexed, trial_rng,
    Accumulator, BatchRunner, CancelToken, CycleStats, FirstError, SimJob, DEFAULT_CHUNK_SIZE,
};
pub use cent::{simulate_cent, simulate_cent_with, CentControlUnit, CENT_FSM_NAME};
pub use centsync::{simulate_cent_sync, simulate_cent_sync_with, simulate_cent_sync_with_schedule};
pub use distributed::{simulate_distributed, simulate_distributed_with};
pub use elastic::{
    elastic_trial_skew_seed, simulate_elastic, simulate_elastic_saturated, simulate_elastic_with,
    ELASTIC_SKEW_SALT,
};
pub use error::{ControllerSnapshot, Diagnostics, SimError};
pub use fault::{Fault, FaultKind, FaultPlan, SimConfig, Watchdog};
pub use invariant::{check_lockstep, check_token_conservation};
pub use kernel::{ClockFabric, ElasticSpec};
pub use latency::{
    enhancement_percent, latency_pair, latency_quad, latency_summary, latency_triple, ControlStyle,
    ControlStyleSet, LatencySummary,
};
pub use model::{CompletionModel, TauLibrary};
pub use pipeline::{simulate_pipelined, simulate_pipelined_with, PipelinedResult};
pub use result::SimResult;
pub use sliced::{LaneConfigs, LaneModels, LaneOutcome, PipelinedLaneOutcome, SlicedSim, LANES};
