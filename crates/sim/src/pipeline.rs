//! Pipelined (overlapped-iteration) simulation.
//!
//! The Algorithm-1 controllers wrap around for "repetitive execution of
//! the DFG": once a unit finishes its last operation it immediately starts
//! the next iteration's first one, so successive DFG iterations overlap in
//! the datapath. This module measures the steady-state **initiation
//! interval** of that mode and — because the paper's single-register-
//! per-result datapath can overwrite a value that a lagging consumer has
//! not fetched yet — detects **write-after-read hazards**, reporting how
//! much buffering pipelined operation would actually need.
//!
//! Completion signals are iteration-tagged: consumer instance `k` of an
//! operation waits for instance `k` of each cross-unit producer.

use crate::error::{Diagnostics, SimError};
use crate::fault::SimConfig;
use crate::kernel::{self, CompletionFabric, FsmBank, FsmStyle, OpSet, PulseHooks};
use crate::model::CompletionModel;
use rand::Rng;
use tauhls_dfg::{Dfg, OpId};
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;

/// Result of a pipelined multi-iteration run.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinedResult {
    /// Number of completed DFG iterations.
    pub iterations: usize,
    /// Cycle in which the last operation of each iteration completed.
    pub iteration_end_cycle: Vec<usize>,
    /// Total cycles simulated.
    pub total_cycles: usize,
    /// Write-after-read hazards: `(producer, iteration)` pairs where the
    /// producer's next-iteration result was latched before every consumer
    /// of the current iteration had started (i.e. fetched its operands).
    pub war_hazards: Vec<(OpId, usize)>,
}

impl PipelinedResult {
    /// Mean initiation interval in cycles over the steady-state iterations
    /// (first iteration excluded as pipeline fill).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two iterations were run.
    pub fn initiation_interval(&self) -> f64 {
        assert!(self.iterations >= 2, "need >= 2 iterations for II");
        let first = self.iteration_end_cycle[0];
        let last = *self.iteration_end_cycle.last().expect("nonempty");
        (last - first) as f64 / (self.iterations - 1) as f64
    }
}

/// The pipelined engine's [`PulseHooks`]: iteration-tagged completion
/// semantics (instance counts instead of done latches), WAR-hazard
/// bookkeeping on every latch, and producer-instance protocol checks.
struct PipelinedHooks<'a> {
    bound: &'a BoundDfg,
    iterations: usize,
    /// completions[op] = number of finished instances.
    completions: Vec<usize>,
    /// starts[op] = number of instances that have begun execution.
    starts: Vec<usize>,
    iteration_end_cycle: Vec<usize>,
    war_hazards: Vec<(OpId, usize)>,
}

impl PulseHooks for PipelinedHooks<'_> {
    fn exec(
        &mut self,
        _fabric: &CompletionFabric,
        dfg: &Dfg,
        op: OpId,
        stage: u32,
        _cycle: usize,
        faulty: bool,
    ) -> Result<(), String> {
        if stage == 0 && self.starts[op.0] == self.completions[op.0] {
            self.starts[op.0] += 1;
            // Iteration-tagged protocol invariant: instance k of `op`
            // needs instance k of every producer. Only enforced under
            // fault injection — the fault-free engine is byte-identical
            // to its historical self.
            if faulty {
                let k = self.starts[op.0];
                if let Some(p) = dfg.preds(op).iter().find(|p| self.completions[p.0] < k) {
                    return Err(format!(
                        "{op} started instance {k} before producer {p} finished it"
                    ));
                }
            }
        }
        Ok(())
    }

    fn operands(&self, _op: OpId) -> (i64, i64) {
        // Bernoulli-style models only; operand-driven completion would
        // need per-iteration input streams.
        (0, 0)
    }

    fn busy(&mut self, _fabric: &CompletionFabric, _op: OpId, _unit: usize) {}

    fn cco(
        &self,
        _fabric: &CompletionFabric,
        pulses: &OpSet,
        p: usize,
        cur: OpId,
        _cycle: usize,
    ) -> bool {
        // Iteration-tagged semantics: the consumer currently working
        // toward instance k of `cur` sees C_CO(p) high iff instance k of
        // p has completed, where k = completions[cur] + 1.
        let needed = self.completions[cur.0] + 1;
        self.completions[p] + usize::from(pulses.contains(OpId(p))) >= needed
    }

    fn skip_latch(&self, _fabric: &CompletionFabric, _op: OpId) -> bool {
        false
    }

    /// Records one completion-pulse latch: WAR hazard bookkeeping,
    /// instance count, and iteration-end accounting.
    fn latch(&mut self, _fabric: &mut CompletionFabric, op: OpId, at: usize) {
        // WAR hazard check: latching instance k+1 of `op` while some
        // consumer has not yet *started* instance k+1 of itself with
        // the old value — i.e. a consumer's start count is behind the
        // producer's completion count.
        let k = self.completions[op.0]; // finished instances before this one
        if k >= 1 && k < self.iterations {
            for c in self.bound.cross_unit_succs(op) {
                if self.starts[c.0] < k {
                    self.war_hazards.push((op, k));
                    break;
                }
            }
        }
        self.completions[op.0] += 1;
        let iter_done = self.completions[op.0];
        if iter_done <= self.iterations && self.completions.iter().all(|&c| c >= iter_done) {
            self.iteration_end_cycle[iter_done - 1] = at;
        }
    }

    fn running(&self, _fabric: &CompletionFabric) -> bool {
        self.completions.iter().any(|&c| c < self.iterations)
    }

    fn diagnostics(
        &self,
        bank: &FsmBank,
        fabric: &CompletionFabric,
        cycle: usize,
        reason: String,
    ) -> Box<Diagnostics> {
        Box::new(Diagnostics {
            cycle,
            reason,
            controllers: bank.snapshots(),
            done: self
                .completions
                .iter()
                .map(|&c| c >= self.iterations)
                .collect(),
            outstanding: self
                .completions
                .iter()
                .enumerate()
                .filter(|(_, &c)| c < self.iterations)
                .map(|(i, _)| i)
                .collect(),
            pulses: fabric.pulses().iter().map(|o| o.0).collect(),
        })
    }
}

/// Simulates `iterations` overlapped DFG iterations under the distributed
/// control unit, with Bernoulli-style completion (operand-driven models
/// would need per-iteration input streams and are not supported here).
///
/// Fault-free entry point; returns [`SimError::InvalidConfig`] when
/// `iterations == 0` and [`SimError::Deadlock`] should the controllers
/// stall (a generation bug in a fault-free run).
pub fn simulate_pipelined(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    iterations: usize,
    rng: &mut impl Rng,
) -> Result<PipelinedResult, SimError> {
    simulate_pipelined_with(bound, cu, model, iterations, rng, &SimConfig::default())
}

/// [`simulate_pipelined`] with a fault/watchdog configuration. As in the
/// single-iteration engine, faults never touch the RNG stream.
pub fn simulate_pipelined_with(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    iterations: usize,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<PipelinedResult, SimError> {
    if iterations == 0 {
        return Err(SimError::InvalidConfig(
            "pipelined simulation needs iterations >= 1".to_string(),
        ));
    }
    let dfg = bound.dfg();
    model
        .validate(dfg.num_ops())
        .map_err(SimError::InvalidConfig)?;
    let n = dfg.num_ops();
    let mut fabric = CompletionFabric::new(n);
    let bank = FsmBank::new(cu, bound.allocation().units().len());
    let hooks = PipelinedHooks {
        bound,
        iterations,
        completions: vec![0usize; n],
        starts: vec![0usize; n],
        iteration_end_cycle: vec![0usize; iterations],
        war_hazards: Vec::new(),
    };
    let mut style = FsmStyle {
        bank,
        hooks,
        dfg,
        model,
    };
    let cycle = kernel::run(
        &mut style,
        &mut fabric,
        rng,
        config,
        config.budget(n, iterations),
    )?;

    let PipelinedHooks {
        mut iteration_end_cycle,
        war_hazards,
        ..
    } = style.hooks;
    // Backfill iteration end cycles (an iteration "ends" when its last op
    // completes; the kernel loop records it when the minimum count rises).
    for i in 1..iterations {
        if iteration_end_cycle[i] == 0 {
            iteration_end_cycle[i] = iteration_end_cycle[i - 1];
        }
    }

    Ok(PipelinedResult {
        iterations,
        iteration_end_cycle,
        total_cycles: cycle,
        war_hazards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::simulate_distributed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{fir3, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn pipelined_ii_beats_back_to_back_latency() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(1);
        let single =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        let piped =
            simulate_pipelined(&bound, &cu, &CompletionModel::AlwaysShort, 12, &mut rng).unwrap();
        // Overlap: the steady-state initiation interval is below the
        // single-iteration latency (units start iteration k+1 while the
        // accumulation tail of iteration k is still running).
        assert!(
            piped.initiation_interval() < single.cycles as f64,
            "II {} vs latency {}",
            piped.initiation_interval(),
            single.cycles
        );
        // Sanity: II is at least the bottleneck unit's work (3 mults).
        assert!(piped.initiation_interval() >= 3.0 - 1e-9);
    }

    #[test]
    fn pipelined_monotone_iteration_ends() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(3);
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.7 },
            10,
            &mut rng,
        )
        .unwrap();
        assert_eq!(piped.iteration_end_cycle.len(), 10);
        for w in piped.iteration_end_cycle.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(
            piped.total_cycles,
            *piped.iteration_end_cycle.last().unwrap()
        );
    }

    #[test]
    fn war_hazards_detected_on_unbalanced_chains() {
        // fig2-style unbalanced graph: one chain runs ahead of the other,
        // so pipelined overlap may clobber the slow consumer's operand —
        // the hazard list tells the designer how much buffering is needed.
        use tauhls_dfg::benchmarks::fig2_dfg;
        let bound = BoundDfg::bind(&fig2_dfg(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(5);
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.5 },
            16,
            &mut rng,
        )
        .unwrap();
        // The run completes regardless; hazards are reported, not fatal.
        assert_eq!(piped.iterations, 16);
        // Hazard entries reference real ops and iterations.
        for (op, iter) in &piped.war_hazards {
            assert!(op.0 < bound.dfg().num_ops());
            assert!(*iter >= 1 && *iter < 16);
        }
    }

    #[test]
    fn zero_iterations_is_a_config_error() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(0);
        let err = simulate_pipelined(&bound, &cu, &CompletionModel::AlwaysShort, 0, &mut rng)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }
}
