//! Pipelined (overlapped-iteration) simulation.
//!
//! The Algorithm-1 controllers wrap around for "repetitive execution of
//! the DFG": once a unit finishes its last operation it immediately starts
//! the next iteration's first one, so successive DFG iterations overlap in
//! the datapath. This module measures the steady-state **initiation
//! interval** of that mode and — because the paper's single-register-
//! per-result datapath can overwrite a value that a lagging consumer has
//! not fetched yet — detects **write-after-read hazards**, reporting how
//! much buffering pipelined operation would actually need.
//!
//! Completion signals are iteration-tagged: consumer instance `k` of an
//! operation waits for instance `k` of each cross-unit producer.

use crate::model::CompletionModel;
use rand::Rng;
use tauhls_dfg::OpId;
use tauhls_fsm::{DistributedControlUnit, Fsm, StateId};
use tauhls_sched::BoundDfg;

/// Result of a pipelined multi-iteration run.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinedResult {
    /// Number of completed DFG iterations.
    pub iterations: usize,
    /// Cycle in which the last operation of each iteration completed.
    pub iteration_end_cycle: Vec<usize>,
    /// Total cycles simulated.
    pub total_cycles: usize,
    /// Write-after-read hazards: `(producer, iteration)` pairs where the
    /// producer's next-iteration result was latched before every consumer
    /// of the current iteration had started (i.e. fetched its operands).
    pub war_hazards: Vec<(OpId, usize)>,
}

impl PipelinedResult {
    /// Mean initiation interval in cycles over the steady-state iterations
    /// (first iteration excluded as pipeline fill).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two iterations were run.
    pub fn initiation_interval(&self) -> f64 {
        assert!(self.iterations >= 2, "need >= 2 iterations for II");
        let first = self.iteration_end_cycle[0];
        let last = *self.iteration_end_cycle.last().expect("nonempty");
        (last - first) as f64 / (self.iterations - 1) as f64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Exec(OpId, u32),
    Ready(OpId),
}

fn parse_phase(name: &str) -> Phase {
    if let Some(rest) = name.strip_prefix('S') {
        let stage = rest.chars().rev().take_while(|&c| c == '\'').count() as u32;
        Phase::Exec(
            OpId(
                rest[..rest.len() - stage as usize]
                    .parse()
                    .expect("state name"),
            ),
            stage,
        )
    } else if let Some(rest) = name.strip_prefix('R') {
        Phase::Ready(OpId(rest.parse().expect("state name")))
    } else {
        panic!("unrecognized controller state name {name}")
    }
}

/// Simulates `iterations` overlapped DFG iterations under the distributed
/// control unit, with Bernoulli-style completion (operand-driven models
/// would need per-iteration input streams and are not supported here).
///
/// # Panics
///
/// Panics if `iterations == 0` or the controllers deadlock.
pub fn simulate_pipelined(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    iterations: usize,
    rng: &mut impl Rng,
) -> PipelinedResult {
    assert!(iterations > 0);
    let dfg = bound.dfg();
    let n = dfg.num_ops();
    // completions[op] = number of finished instances.
    let mut completions = vec![0usize; n];
    // starts[op] = number of instances that have begun execution.
    let mut starts = vec![0usize; n];
    let mut iteration_end_cycle = vec![0usize; iterations];
    let mut war_hazards = Vec::new();

    let fsms: Vec<(usize, &Fsm)> = cu.controllers().iter().map(|(u, f)| (u.0, f)).collect();
    let mut states: Vec<StateId> = fsms.iter().map(|(_, f)| f.initial()).collect();

    let single_iter_bound = 6 * n + 32;
    let max_cycles = single_iter_bound * iterations;
    let mut cycle = 0usize;

    while completions.iter().any(|&c| c < iterations) {
        cycle += 1;
        assert!(
            cycle <= max_cycles,
            "pipelined control deadlocked after {cycle} cycles"
        );

        let num_units = bound.allocation().units().len();
        let mut unit_completion = vec![false; num_units];
        for ((u, f), &st) in fsms.iter().zip(&states) {
            if let Phase::Exec(op, stage) = parse_phase(f.state_name(st)) {
                if stage == 0 && starts[op.0] == completions[op.0] {
                    starts[op.0] += 1;
                }
                let node = dfg.op(op);
                unit_completion[*u] = model.completion(op, node.kind, 0, 0, rng);
                let _ = node;
            }
        }

        // Fixpoint over this cycle's completion pulses. Iteration-tagged
        // semantics: consumer instance k of op v sees C_PO(p) high iff
        // instance k of p has completed, where k = completions[v] + 1.
        let mut pulses: Vec<OpId> = Vec::new();
        let mut steps: Vec<StateId> = Vec::new();
        for _round in 0..fsms.len() + 2 {
            steps.clear();
            let mut new_pulses: Vec<OpId> = Vec::new();
            for ((u, f), &st) in fsms.iter().zip(&states) {
                // The instance index this controller is working toward for
                // the op named in its current state.
                let wait_instance = |consumer: OpId| completions[consumer.0] + 1;
                let current_op = match parse_phase(f.state_name(st)) {
                    Phase::Exec(op, _) | Phase::Ready(op) => op,
                };
                let (next, outs) = f.step(st, |v| {
                    let name = &f.inputs()[v];
                    if let Some(rest) = name.strip_prefix("C_CO(") {
                        let p: usize = rest
                            .strip_suffix(')')
                            .and_then(|s| s.parse().ok())
                            .expect("completion signal name");
                        let needed = wait_instance(current_op);
                        completions[p] + usize::from(pulses.contains(&OpId(p))) >= needed
                    } else {
                        unit_completion[*u]
                    }
                });
                for &o in &outs {
                    if let Some(rest) = f.outputs()[o].strip_prefix("RE") {
                        new_pulses.push(OpId(rest.parse::<usize>().expect("RE name")));
                    }
                }
                steps.push(next);
            }
            new_pulses.sort_unstable();
            new_pulses.dedup();
            if new_pulses == pulses {
                break;
            }
            pulses = new_pulses;
        }

        for (slot, next) in states.iter_mut().zip(&steps) {
            *slot = *next;
        }
        for op in &pulses {
            // WAR hazard check: latching instance k+1 of `op` while some
            // consumer has not yet *started* instance k+1 of itself with
            // the old value — i.e. a consumer's start count is behind the
            // producer's completion count.
            let k = completions[op.0]; // finished instances before this one
            if k >= 1 && k < iterations {
                for c in bound.cross_unit_succs(*op) {
                    if starts[c.0] < k {
                        war_hazards.push((*op, k));
                        break;
                    }
                }
            }
            completions[op.0] += 1;
            let iter_done = completions[op.0];
            if iter_done <= iterations && completions.iter().all(|&c| c >= iter_done) {
                iteration_end_cycle[iter_done - 1] = cycle;
            }
        }
    }
    // Backfill iteration end cycles (an iteration "ends" when its last op
    // completes; the loop above records it when the minimum count rises).
    for i in 1..iterations {
        if iteration_end_cycle[i] == 0 {
            iteration_end_cycle[i] = iteration_end_cycle[i - 1];
        }
    }

    PipelinedResult {
        iterations,
        iteration_end_cycle,
        total_cycles: cycle,
        war_hazards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::simulate_distributed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{fir3, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn pipelined_ii_beats_back_to_back_latency() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(1);
        let single =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng);
        let piped = simulate_pipelined(&bound, &cu, &CompletionModel::AlwaysShort, 12, &mut rng);
        // Overlap: the steady-state initiation interval is below the
        // single-iteration latency (units start iteration k+1 while the
        // accumulation tail of iteration k is still running).
        assert!(
            piped.initiation_interval() < single.cycles as f64,
            "II {} vs latency {}",
            piped.initiation_interval(),
            single.cycles
        );
        // Sanity: II is at least the bottleneck unit's work (3 mults).
        assert!(piped.initiation_interval() >= 3.0 - 1e-9);
    }

    #[test]
    fn pipelined_monotone_iteration_ends() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(3);
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.7 },
            10,
            &mut rng,
        );
        assert_eq!(piped.iteration_end_cycle.len(), 10);
        for w in piped.iteration_end_cycle.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(
            piped.total_cycles,
            *piped.iteration_end_cycle.last().unwrap()
        );
    }

    #[test]
    fn war_hazards_detected_on_unbalanced_chains() {
        // fig2-style unbalanced graph: one chain runs ahead of the other,
        // so pipelined overlap may clobber the slow consumer's operand —
        // the hazard list tells the designer how much buffering is needed.
        use tauhls_dfg::benchmarks::fig2_dfg;
        let bound = BoundDfg::bind(&fig2_dfg(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(5);
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.5 },
            16,
            &mut rng,
        );
        // The run completes regardless; hazards are reported, not fatal.
        assert_eq!(piped.iterations, 16);
        // Hazard entries reference real ops and iterations.
        for (op, iter) in &piped.war_hazards {
            assert!(op.0 < bound.dfg().num_ops());
            assert!(*iter >= 1 && *iter < 16);
        }
    }
}
