//! Pipelined (overlapped-iteration) simulation.
//!
//! The Algorithm-1 controllers wrap around for "repetitive execution of
//! the DFG": once a unit finishes its last operation it immediately starts
//! the next iteration's first one, so successive DFG iterations overlap in
//! the datapath. This module measures the steady-state **initiation
//! interval** of that mode and — because the paper's single-register-
//! per-result datapath can overwrite a value that a lagging consumer has
//! not fetched yet — detects **write-after-read hazards**, reporting how
//! much buffering pipelined operation would actually need.
//!
//! Completion signals are iteration-tagged: consumer instance `k` of an
//! operation waits for instance `k` of each cross-unit producer.

use crate::distributed::{controller_snapshots, parse_phase, Phase};
use crate::error::{Diagnostics, SimError};
use crate::fault::SimConfig;
use crate::model::CompletionModel;
use rand::Rng;
use tauhls_dfg::OpId;
use tauhls_fsm::{DistributedControlUnit, Fsm, StateId};
use tauhls_sched::BoundDfg;

/// Result of a pipelined multi-iteration run.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinedResult {
    /// Number of completed DFG iterations.
    pub iterations: usize,
    /// Cycle in which the last operation of each iteration completed.
    pub iteration_end_cycle: Vec<usize>,
    /// Total cycles simulated.
    pub total_cycles: usize,
    /// Write-after-read hazards: `(producer, iteration)` pairs where the
    /// producer's next-iteration result was latched before every consumer
    /// of the current iteration had started (i.e. fetched its operands).
    pub war_hazards: Vec<(OpId, usize)>,
}

impl PipelinedResult {
    /// Mean initiation interval in cycles over the steady-state iterations
    /// (first iteration excluded as pipeline fill).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two iterations were run.
    pub fn initiation_interval(&self) -> f64 {
        assert!(self.iterations >= 2, "need >= 2 iterations for II");
        let first = self.iteration_end_cycle[0];
        let last = *self.iteration_end_cycle.last().expect("nonempty");
        (last - first) as f64 / (self.iterations - 1) as f64
    }
}

fn diagnostics(
    cycle: usize,
    reason: String,
    fsms: &[(usize, &Fsm)],
    states: &[StateId],
    completions: &[usize],
    iterations: usize,
    pulses: &[OpId],
) -> Box<Diagnostics> {
    Box::new(Diagnostics {
        cycle,
        reason,
        controllers: controller_snapshots(fsms, states),
        done: completions.iter().map(|&c| c >= iterations).collect(),
        outstanding: completions
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < iterations)
            .map(|(i, _)| i)
            .collect(),
        pulses: pulses.iter().map(|o| o.0).collect(),
    })
}

/// Records one completion-pulse latch: WAR hazard bookkeeping, instance
/// count, and iteration-end accounting.
#[allow(clippy::too_many_arguments)]
fn latch_instance(
    op: OpId,
    cycle: usize,
    iterations: usize,
    bound: &BoundDfg,
    completions: &mut [usize],
    starts: &[usize],
    war_hazards: &mut Vec<(OpId, usize)>,
    iteration_end_cycle: &mut [usize],
) {
    // WAR hazard check: latching instance k+1 of `op` while some
    // consumer has not yet *started* instance k+1 of itself with
    // the old value — i.e. a consumer's start count is behind the
    // producer's completion count.
    let k = completions[op.0]; // finished instances before this one
    if k >= 1 && k < iterations {
        for c in bound.cross_unit_succs(op) {
            if starts[c.0] < k {
                war_hazards.push((op, k));
                break;
            }
        }
    }
    completions[op.0] += 1;
    let iter_done = completions[op.0];
    if iter_done <= iterations && completions.iter().all(|&c| c >= iter_done) {
        iteration_end_cycle[iter_done - 1] = cycle;
    }
}

/// Simulates `iterations` overlapped DFG iterations under the distributed
/// control unit, with Bernoulli-style completion (operand-driven models
/// would need per-iteration input streams and are not supported here).
///
/// Fault-free entry point; returns [`SimError::InvalidConfig`] when
/// `iterations == 0` and [`SimError::Deadlock`] should the controllers
/// stall (a generation bug in a fault-free run).
pub fn simulate_pipelined(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    iterations: usize,
    rng: &mut impl Rng,
) -> Result<PipelinedResult, SimError> {
    simulate_pipelined_with(bound, cu, model, iterations, rng, &SimConfig::default())
}

/// [`simulate_pipelined`] with a fault/watchdog configuration. As in the
/// single-iteration engine, faults never touch the RNG stream.
pub fn simulate_pipelined_with(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    iterations: usize,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<PipelinedResult, SimError> {
    if iterations == 0 {
        return Err(SimError::InvalidConfig(
            "pipelined simulation needs iterations >= 1".to_string(),
        ));
    }
    let faults = &config.faults;
    let faulty = !faults.is_empty();
    let dfg = bound.dfg();
    let n = dfg.num_ops();
    // completions[op] = number of finished instances.
    let mut completions = vec![0usize; n];
    // starts[op] = number of instances that have begun execution.
    let mut starts = vec![0usize; n];
    let mut iteration_end_cycle = vec![0usize; iterations];
    let mut war_hazards = Vec::new();
    // DelayLatch-deferred instance latches: (latch cycle, op).
    let mut deferred: Vec<(usize, OpId)> = Vec::new();

    let fsms: Vec<(usize, &Fsm)> = cu.controllers().iter().map(|(u, f)| (u.0, f)).collect();
    let mut states: Vec<StateId> = fsms.iter().map(|(_, f)| f.initial()).collect();

    let max_cycles = config.budget(n, iterations);
    let mut cycle = 0usize;
    let mut pulses: Vec<OpId> = Vec::new();

    while completions.iter().any(|&c| c < iterations) {
        cycle += 1;
        if cycle > max_cycles {
            return Err(SimError::Deadlock(diagnostics(
                cycle,
                format!("no progress within the {max_cycles}-cycle watchdog budget"),
                &fsms,
                &states,
                &completions,
                iterations,
                &pulses,
            )));
        }

        deferred.retain(|&(at, op)| {
            if at <= cycle {
                latch_instance(
                    op,
                    at,
                    iterations,
                    bound,
                    &mut completions,
                    &starts,
                    &mut war_hazards,
                    &mut iteration_end_cycle,
                );
                false
            } else {
                true
            }
        });

        let num_units = bound.allocation().units().len();
        let mut unit_completion = vec![false; num_units];
        let mut diverged: Vec<Option<bool>> = vec![None; num_units];
        for ((u, f), &st) in fsms.iter().zip(&states) {
            let name = match f.state_name_opt(st) {
                Some(name) => name,
                None => {
                    return Err(SimError::Desync(diagnostics(
                        cycle,
                        format!("controller {} latched invalid state id {}", f.name(), st.0),
                        &fsms,
                        &states,
                        &completions,
                        iterations,
                        &pulses,
                    )))
                }
            };
            let phase = match parse_phase(name) {
                Some(p) => p,
                None => {
                    return Err(SimError::UnknownState {
                        fsm: f.name().to_string(),
                        state: name.to_string(),
                    })
                }
            };
            if let Phase::Exec(op, stage) = phase {
                if stage == 0 && starts[op.0] == completions[op.0] {
                    starts[op.0] += 1;
                    // Iteration-tagged protocol invariant: instance k of
                    // `op` needs instance k of every producer. Only
                    // enforced under fault injection — the fault-free
                    // engine is byte-identical to its historical self.
                    if faulty {
                        let k = starts[op.0];
                        if let Some(p) = dfg.preds(op).iter().find(|p| completions[p.0] < k) {
                            return Err(SimError::Desync(diagnostics(
                                cycle,
                                format!(
                                    "{op} started instance {k} before producer {p} finished it"
                                ),
                                &fsms,
                                &states,
                                &completions,
                                iterations,
                                &pulses,
                            )));
                        }
                    }
                }
                let node = dfg.op(op);
                let truth = model.completion(op, node.kind, 0, 0, rng);
                let eff = faults.stuck_completion(op, cycle).unwrap_or(truth);
                unit_completion[*u] = eff;
                if eff != truth {
                    diverged[*u] = Some(truth);
                }
            }
        }

        // Fixpoint over this cycle's completion pulses. Iteration-tagged
        // semantics: consumer instance k of op v sees C_PO(p) high iff
        // instance k of p has completed, where k = completions[v] + 1.
        let mut injected: Vec<OpId> = Vec::new();
        faults.spurious_at(cycle, &mut injected);
        injected.sort_unstable();
        injected.dedup();
        pulses = injected.clone();
        let mut steps: Vec<(StateId, Vec<usize>)> = Vec::new();
        for _round in 0..fsms.len() + 2 {
            steps.clear();
            let mut new_pulses: Vec<OpId> = injected.clone();
            for ((u, f), &st) in fsms.iter().zip(&states) {
                // The instance index this controller is working toward for
                // the op named in its current state.
                let wait_instance = |consumer: OpId| completions[consumer.0] + 1;
                let current_op = match parse_phase(f.state_name(st)) {
                    Some(Phase::Exec(op, _)) | Some(Phase::Ready(op)) => op,
                    None => unreachable!("phase validated above"),
                };
                let step = f.try_step(st, |v| {
                    let name = &f.inputs()[v];
                    if let Some(rest) = name.strip_prefix("C_CO(") {
                        let p: usize = rest
                            .strip_suffix(')')
                            .and_then(|s| s.parse().ok())
                            .expect("completion signal name");
                        match faults.stuck_completion(OpId(p), cycle) {
                            Some(forced) => forced,
                            None => {
                                let needed = wait_instance(current_op);
                                completions[p] + usize::from(pulses.contains(&OpId(p))) >= needed
                            }
                        }
                    } else {
                        unit_completion[*u]
                    }
                });
                let (next, outs) = match step {
                    Ok(r) => r,
                    Err(e) => {
                        return Err(SimError::Desync(diagnostics(
                            cycle,
                            format!("controller {} lost lockstep: {e}", f.name()),
                            &fsms,
                            &states,
                            &completions,
                            iterations,
                            &pulses,
                        )))
                    }
                };
                for &o in &outs {
                    if let Some(rest) = f.outputs()[o].strip_prefix("RE") {
                        let op = OpId(rest.parse::<usize>().expect("RE name"));
                        if !faults.drops_pulse(op, cycle) {
                            new_pulses.push(op);
                        }
                    }
                }
                steps.push((next, outs));
            }
            new_pulses.sort_unstable();
            new_pulses.dedup();
            if new_pulses == pulses {
                break;
            }
            pulses = new_pulses;
        }

        // Premature-latch check under stuck-at overrides (see the
        // single-iteration engine for the rationale).
        if faulty {
            for (i, ((u, f), &st)) in fsms.iter().zip(&states).enumerate() {
                let Some(truth) = diverged[*u] else { continue };
                let wait_instance = |consumer: OpId| completions[consumer.0] + 1;
                let current_op = match parse_phase(f.state_name(st)) {
                    Some(Phase::Exec(op, _)) | Some(Phase::Ready(op)) => op,
                    None => unreachable!("phase validated above"),
                };
                let truth_step = f.try_step(st, |v| {
                    let name = &f.inputs()[v];
                    if let Some(rest) = name.strip_prefix("C_CO(") {
                        let p: usize = rest
                            .strip_suffix(')')
                            .and_then(|s| s.parse().ok())
                            .expect("completion signal name");
                        let needed = wait_instance(current_op);
                        completions[p] + usize::from(pulses.contains(&OpId(p))) >= needed
                    } else {
                        truth
                    }
                });
                let truth_outs = match truth_step {
                    Ok((_, outs)) => outs,
                    Err(_) => continue,
                };
                for &o in &steps[i].1 {
                    if !truth_outs.contains(&o) && f.outputs()[o].starts_with("RE") {
                        return Err(SimError::Desync(diagnostics(
                            cycle,
                            format!(
                                "unit {} latched {} before its true completion (stuck-at-short)",
                                u,
                                f.outputs()[o]
                            ),
                            &fsms,
                            &states,
                            &completions,
                            iterations,
                            &pulses,
                        )));
                    }
                }
            }
        }

        for (slot, (next, _)) in states.iter_mut().zip(&steps) {
            *slot = *next;
        }
        for op in &pulses {
            if deferred.iter().any(|&(_, d)| d == *op) {
                continue;
            }
            let delay = faults.latch_delay(*op, cycle);
            if delay == 0 {
                latch_instance(
                    *op,
                    cycle,
                    iterations,
                    bound,
                    &mut completions,
                    &starts,
                    &mut war_hazards,
                    &mut iteration_end_cycle,
                );
            } else {
                deferred.push((cycle + delay, *op));
            }
        }
        if faulty {
            for (i, s) in states.iter_mut().enumerate() {
                if let Some(bit) = faults.flip_at(i, cycle) {
                    *s = StateId(s.0 ^ (1usize << bit));
                }
            }
        }
    }
    // Backfill iteration end cycles (an iteration "ends" when its last op
    // completes; the loop above records it when the minimum count rises).
    for i in 1..iterations {
        if iteration_end_cycle[i] == 0 {
            iteration_end_cycle[i] = iteration_end_cycle[i - 1];
        }
    }

    Ok(PipelinedResult {
        iterations,
        iteration_end_cycle,
        total_cycles: cycle,
        war_hazards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::simulate_distributed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{fir3, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn pipelined_ii_beats_back_to_back_latency() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(1);
        let single =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        let piped =
            simulate_pipelined(&bound, &cu, &CompletionModel::AlwaysShort, 12, &mut rng).unwrap();
        // Overlap: the steady-state initiation interval is below the
        // single-iteration latency (units start iteration k+1 while the
        // accumulation tail of iteration k is still running).
        assert!(
            piped.initiation_interval() < single.cycles as f64,
            "II {} vs latency {}",
            piped.initiation_interval(),
            single.cycles
        );
        // Sanity: II is at least the bottleneck unit's work (3 mults).
        assert!(piped.initiation_interval() >= 3.0 - 1e-9);
    }

    #[test]
    fn pipelined_monotone_iteration_ends() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(3);
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.7 },
            10,
            &mut rng,
        )
        .unwrap();
        assert_eq!(piped.iteration_end_cycle.len(), 10);
        for w in piped.iteration_end_cycle.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(
            piped.total_cycles,
            *piped.iteration_end_cycle.last().unwrap()
        );
    }

    #[test]
    fn war_hazards_detected_on_unbalanced_chains() {
        // fig2-style unbalanced graph: one chain runs ahead of the other,
        // so pipelined overlap may clobber the slow consumer's operand —
        // the hazard list tells the designer how much buffering is needed.
        use tauhls_dfg::benchmarks::fig2_dfg;
        let bound = BoundDfg::bind(&fig2_dfg(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(5);
        let piped = simulate_pipelined(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.5 },
            16,
            &mut rng,
        )
        .unwrap();
        // The run completes regardless; hazards are reported, not fatal.
        assert_eq!(piped.iterations, 16);
        // Hazard entries reference real ops and iterations.
        for (op, iter) in &piped.war_hazards {
            assert!(op.0 < bound.dfg().num_ops());
            assert!(*iter >= 1 && *iter < 16);
        }
    }

    #[test]
    fn zero_iterations_is_a_config_error() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(0);
        let err = simulate_pipelined(&bound, &cu, &CompletionModel::AlwaysShort, 0, &mut rng)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }
}
