//! Simulation of the synchronized centralized controller (TAUBM /
//! CENT-SYNC, Fig 4b): the step-walk semantics of the paper's `LT_TAU`.
//!
//! A time step with TAU operations spends its extension half unless
//! *every* active TAU completes short — the `P^n` synchronization penalty.
//!
//! Fault support: the centralized controller has no completion-pulse
//! fabric and no distributed state registers, so only the signal-level
//! fault kinds apply — stuck-at completion predictors (a stuck-at-short
//! predictor that suppresses a needed step extension is detected as
//! [`SimError::Desync`]) and delayed result latches. Dropped/spurious
//! pulses and state flips are no-ops here by construction.

use crate::error::{Diagnostics, SimError};
use crate::fault::SimConfig;
use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{Operand, TaubmDfg};
use tauhls_sched::BoundDfg;

/// Simulates one iteration under synchronized centralized control, using
/// the binding's list schedule for the time steps (fault-free).
pub fn simulate_cent_sync(
    bound: &BoundDfg,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    simulate_cent_sync_with(bound, model, inputs, rng, &SimConfig::default())
}

/// [`simulate_cent_sync`] with a fault/watchdog configuration. Faults are
/// applied after the completion draws, so the RNG stream is independent of
/// the plan.
pub fn simulate_cent_sync_with(
    bound: &BoundDfg,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    cent_sync_impl(
        bound,
        bound.schedule().step_of(),
        model,
        inputs,
        rng,
        config,
    )
}

/// Like [`simulate_cent_sync`] with an explicit time-step assignment.
///
/// # Panics
///
/// Panics if the step assignment violates a data dependence.
pub fn simulate_cent_sync_with_schedule(
    bound: &BoundDfg,
    step_of: &[usize],
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    cent_sync_impl(bound, step_of, model, inputs, rng, &SimConfig::default())
}

fn desync(cycle: usize, reason: String, completed: &[usize]) -> SimError {
    SimError::Desync(Box::new(Diagnostics {
        cycle,
        reason,
        controllers: Vec::new(), // single centralized FSM, not modelled per-unit
        done: completed.iter().map(|&c| c > 0).collect(),
        outstanding: completed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect(),
        pulses: Vec::new(),
    }))
}

fn cent_sync_impl(
    bound: &BoundDfg,
    step_of: &[usize],
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let dfg = bound.dfg();
    let taubm = TaubmDfg::derive(dfg, step_of, bound.allocation().tau_classes());
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);
    let operand = |o: Operand| -> i64 {
        match o {
            Operand::Input(i) => input_vals[i.0],
            Operand::Const(c) => c,
            Operand::Op(p) => values[p.0],
        }
    };

    let faults = &config.faults;
    let faulty = !faults.is_empty();

    let n = dfg.num_ops();
    let mut completion_cycle = vec![0usize; n];
    let mut start_cycle = vec![0usize; n];
    let num_units = bound.allocation().units().len();
    let mut unit_busy = vec![0usize; num_units];

    let mut cycle = 0usize;
    for step in taubm.steps() {
        cycle += 1; // the base half T_i
        for &o in &step.fixed_ops {
            start_cycle[o.0] = cycle;
            completion_cycle[o.0] = cycle;
            unit_busy[bound.unit_of(o).0] += 1;
        }
        if step.tau_ops.is_empty() {
            continue;
        }
        let mut all_short = true;
        let mut shorts = Vec::with_capacity(step.tau_ops.len());
        let mut truths = Vec::with_capacity(step.tau_ops.len());
        for &o in &step.tau_ops {
            start_cycle[o.0] = cycle;
            let node = dfg.op(o);
            let truth = model.completion(o, node.kind, operand(node.lhs), operand(node.rhs), rng);
            let short = faults.stuck_completion(o, cycle).unwrap_or(truth);
            shorts.push(short);
            truths.push(truth);
            all_short &= short;
        }
        if !all_short {
            cycle += 1; // the extension half T_i'
        }
        // A stuck-at-short predictor that masks a long completion while no
        // sibling extends the step makes the synchronized latch capture an
        // unfinished result.
        if faulty && all_short {
            for (&o, &truth) in step.tau_ops.iter().zip(&truths) {
                if !truth {
                    return Err(desync(
                        cycle,
                        format!(
                            "step latched {o} at the base half but its true completion was long"
                        ),
                        &completion_cycle,
                    ));
                }
            }
        }
        for (&o, &short) in step.tau_ops.iter().zip(&shorts) {
            // Synchronized: every TAU result latches when the step ends,
            // but a unit is *busy* only while actually computing — a short
            // operation whose step extends for a sibling sits idle in the
            // extension half (the idle time the paper's §1 points at).
            completion_cycle[o.0] = cycle + faults.latch_delay(o, cycle);
            unit_busy[bound.unit_of(o).0] += if short { 1 } else { 2 };
        }
    }

    let total = cycle.max(completion_cycle.iter().copied().max().unwrap_or(0));
    let result = SimResult {
        cycles: total,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    };
    if faulty {
        if let Err(msg) = result.verify(bound) {
            let completed = result.completion_cycle.clone();
            return Err(desync(
                total,
                format!("post-run invariant violated: {msg}"),
                &completed,
            ));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fir3, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn extremes_match_taubm_bounds() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let best =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng).unwrap();
        let worst =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng).unwrap();
        assert_eq!(best.cycles, taubm.best_latency_cycles());
        assert_eq!(worst.cycles, taubm.worst_latency_cycles());
    }

    #[test]
    fn monte_carlo_matches_analytic_expectation() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        let p = 0.7;
        let analytic = taubm.expected_latency_cycles_sync(p);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let total: usize = (0..trials)
            .map(|_| {
                simulate_cent_sync(&bound, &CompletionModel::Bernoulli { p }, None, &mut rng)
                    .unwrap()
                    .cycles
            })
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - analytic).abs() < 0.05,
            "mean {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn sync_never_beats_distributed() {
        use crate::distributed::simulate_distributed;
        use tauhls_fsm::DistributedControlUnit;
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&fir5(), &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        for seed in 0..40 {
            // Same seed stream for both -> same completion draws per op
            // are NOT guaranteed (different sampling order), so compare
            // distributions via matched extremes and many-seed dominance
            // in expectation instead of per-seed equality.
            let mut rng1 = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed + 1000);
            let d = simulate_distributed(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng1,
            )
            .unwrap();
            let s = simulate_cent_sync(
                &bound,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng2,
            )
            .unwrap();
            // Hard bounds always hold.
            assert!(d.cycles >= 5 && d.cycles <= 8, "dist {}", d.cycles);
            assert!(s.cycles >= 5 && s.cycles <= 8, "sync {}", s.cycles);
        }
        // Deterministic dominance at the extremes.
        let mut rng = StdRng::seed_from_u64(0);
        let db = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
            .unwrap();
        let sb = simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng).unwrap();
        assert!(db.cycles <= sb.cycles);
        let dw = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysLong, None, &mut rng)
            .unwrap();
        let sw = simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng).unwrap();
        assert!(dw.cycles <= sw.cycles);
    }

    #[test]
    fn fir3_sync_latencies_match_paper_row() {
        // Paper 3rd FIR LT_TAU: best 45 ns (3 cycles), worst 75 ns (5).
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(0);
        let best =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng).unwrap();
        let worst =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng).unwrap();
        assert_eq!(best.cycles, 3);
        assert_eq!(worst.cycles, 5);
    }

    #[test]
    fn completion_cycles_respect_dependences() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_cent_sync(
            &bound,
            &CompletionModel::Bernoulli { p: 0.5 },
            None,
            &mut rng,
        )
        .unwrap();
        for v in bound.dfg().op_ids() {
            for p in bound.dfg().preds(v) {
                assert!(r.completion_cycle[p.0] < r.start_cycle[v.0]);
            }
        }
    }
}
