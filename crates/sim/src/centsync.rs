//! Simulation of the synchronized centralized controller (TAUBM /
//! CENT-SYNC, Fig 4b): the step-walk semantics of the paper's `LT_TAU`.
//!
//! A time step with TAU operations spends its extension half unless
//! *every* active TAU completes short — the `P^n` synchronization penalty.

use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{Operand, TaubmDfg};
use tauhls_sched::BoundDfg;

/// Simulates one iteration under synchronized centralized control, using
/// the binding's list schedule for the time steps.
pub fn simulate_cent_sync(
    bound: &BoundDfg,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> SimResult {
    simulate_cent_sync_with_schedule(bound, bound.schedule().step_of(), model, inputs, rng)
}

/// Like [`simulate_cent_sync`] with an explicit time-step assignment.
///
/// # Panics
///
/// Panics if the step assignment violates a data dependence.
pub fn simulate_cent_sync_with_schedule(
    bound: &BoundDfg,
    step_of: &[usize],
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> SimResult {
    let dfg = bound.dfg();
    let taubm = TaubmDfg::derive(dfg, step_of, bound.allocation().tau_classes());
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);
    let operand = |o: Operand| -> i64 {
        match o {
            Operand::Input(i) => input_vals[i.0],
            Operand::Const(c) => c,
            Operand::Op(p) => values[p.0],
        }
    };

    let n = dfg.num_ops();
    let mut completion_cycle = vec![0usize; n];
    let mut start_cycle = vec![0usize; n];
    let num_units = bound.allocation().units().len();
    let mut unit_busy = vec![0usize; num_units];

    let mut cycle = 0usize;
    for step in taubm.steps() {
        cycle += 1; // the base half T_i
        for &o in &step.fixed_ops {
            start_cycle[o.0] = cycle;
            completion_cycle[o.0] = cycle;
            unit_busy[bound.unit_of(o).0] += 1;
        }
        if step.tau_ops.is_empty() {
            continue;
        }
        let mut all_short = true;
        let mut shorts = Vec::with_capacity(step.tau_ops.len());
        for &o in &step.tau_ops {
            start_cycle[o.0] = cycle;
            let node = dfg.op(o);
            let short = model.completion(o, node.kind, operand(node.lhs), operand(node.rhs), rng);
            shorts.push(short);
            all_short &= short;
        }
        if !all_short {
            cycle += 1; // the extension half T_i'
        }
        for (&o, &short) in step.tau_ops.iter().zip(&shorts) {
            // Synchronized: every TAU result latches when the step ends,
            // but a unit is *busy* only while actually computing — a short
            // operation whose step extends for a sibling sits idle in the
            // extension half (the idle time the paper's §1 points at).
            completion_cycle[o.0] = cycle;
            unit_busy[bound.unit_of(o).0] += if short { 1 } else { 2 };
        }
    }

    SimResult {
        cycles: cycle,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fir3, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn extremes_match_taubm_bounds() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let best = simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng);
        let worst = simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng);
        assert_eq!(best.cycles, taubm.best_latency_cycles());
        assert_eq!(worst.cycles, taubm.worst_latency_cycles());
    }

    #[test]
    fn monte_carlo_matches_analytic_expectation() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        let p = 0.7;
        let analytic = taubm.expected_latency_cycles_sync(p);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let total: usize = (0..trials)
            .map(|_| {
                simulate_cent_sync(&bound, &CompletionModel::Bernoulli { p }, None, &mut rng).cycles
            })
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - analytic).abs() < 0.05,
            "mean {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn sync_never_beats_distributed() {
        use crate::distributed::simulate_distributed;
        use tauhls_fsm::DistributedControlUnit;
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&fir5(), &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        for seed in 0..40 {
            // Same seed stream for both -> same completion draws per op
            // are NOT guaranteed (different sampling order), so compare
            // distributions via matched extremes and many-seed dominance
            // in expectation instead of per-seed equality.
            let mut rng1 = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed + 1000);
            let d = simulate_distributed(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng1,
            );
            let s = simulate_cent_sync(
                &bound,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng2,
            );
            // Hard bounds always hold.
            assert!(d.cycles >= 5 && d.cycles <= 8, "dist {}", d.cycles);
            assert!(s.cycles >= 5 && s.cycles <= 8, "sync {}", s.cycles);
        }
        // Deterministic dominance at the extremes.
        let mut rng = StdRng::seed_from_u64(0);
        let db = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng);
        let sb = simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng);
        assert!(db.cycles <= sb.cycles);
        let dw = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysLong, None, &mut rng);
        let sw = simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng);
        assert!(dw.cycles <= sw.cycles);
    }

    #[test]
    fn fir3_sync_latencies_match_paper_row() {
        // Paper 3rd FIR LT_TAU: best 45 ns (3 cycles), worst 75 ns (5).
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(0);
        let best = simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng);
        let worst = simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng);
        assert_eq!(best.cycles, 3);
        assert_eq!(worst.cycles, 5);
    }

    #[test]
    fn completion_cycles_respect_dependences() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_cent_sync(
            &bound,
            &CompletionModel::Bernoulli { p: 0.5 },
            None,
            &mut rng,
        );
        for v in bound.dfg().op_ids() {
            for p in bound.dfg().preds(v) {
                assert!(r.completion_cycle[p.0] < r.start_cycle[v.0]);
            }
        }
    }
}
