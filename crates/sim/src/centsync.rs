//! Simulation of the synchronized centralized controller (TAUBM /
//! CENT-SYNC, Fig 4b): the step-walk semantics of the paper's `LT_TAU`.
//!
//! A time step with TAU operations spends its extension half unless
//! *every* active TAU completes short — the `P^n` synchronization penalty.
//!
//! Runs on the shared [`crate::kernel`] loop as a step-walk
//! [`ControlStyle`]: each `advance` consumes one TAUBM time step
//! (incrementing the cycle counter in place for the extension half), so the
//! engine inherits the kernel's watchdog — under [`crate::Watchdog::Auto`]
//! the budget always exceeds the `2n` step-walk bound and never trips.
//!
//! Fault support: the centralized controller has no completion-pulse
//! fabric and no distributed state registers, so only the signal-level
//! fault kinds apply — stuck-at completion predictors (a stuck-at-short
//! predictor that suppresses a needed step extension is detected as
//! [`SimError::Desync`]) and delayed result latches. Dropped/spurious
//! pulses and state flips are no-ops here by construction. Delayed latches
//! are applied inline to the latch cycle (the synchronized datapath has no
//! per-op pulse to defer), so the kernel's deferred queue stays empty.

use crate::error::{Diagnostics, SimError};
use crate::fault::SimConfig;
use crate::kernel::{self, CompletionFabric, ControlStyle};
use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{OpId, TaubmDfg};
use tauhls_sched::BoundDfg;

/// Simulates one iteration under synchronized centralized control, using
/// the binding's list schedule for the time steps (fault-free).
pub fn simulate_cent_sync(
    bound: &BoundDfg,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    simulate_cent_sync_with(bound, model, inputs, rng, &SimConfig::default())
}

/// [`simulate_cent_sync`] with a fault/watchdog configuration. Faults are
/// applied after the completion draws, so the RNG stream is independent of
/// the plan.
pub fn simulate_cent_sync_with(
    bound: &BoundDfg,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    cent_sync_impl(
        bound,
        bound.schedule().step_of(),
        model,
        inputs,
        rng,
        config,
    )
}

/// Like [`simulate_cent_sync`] with an explicit time-step assignment.
///
/// # Panics
///
/// Panics if the step assignment violates a data dependence.
pub fn simulate_cent_sync_with_schedule(
    bound: &BoundDfg,
    step_of: &[usize],
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    cent_sync_impl(bound, step_of, model, inputs, rng, &SimConfig::default())
}

fn cent_sync_diag(cycle: usize, reason: String, completed: &[usize]) -> Box<Diagnostics> {
    Box::new(Diagnostics {
        cycle,
        reason,
        controllers: Vec::new(), // single centralized FSM, not modelled per-unit
        done: completed.iter().map(|&c| c > 0).collect(),
        outstanding: completed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect(),
        pulses: Vec::new(),
    })
}

fn desync(cycle: usize, reason: String, completed: &[usize]) -> SimError {
    SimError::Desync(cent_sync_diag(cycle, reason, completed))
}

/// The synchronized step-walk as a kernel [`ControlStyle`]: one `advance`
/// call per TAUBM time step, with the extension half folded in as an
/// in-place cycle increment.
struct CentSyncStyle<'a> {
    bound: &'a BoundDfg,
    taubm: TaubmDfg,
    model: &'a CompletionModel,
    /// Precomputed `(lhs, rhs)` operand values per op id.
    operand_vals: Vec<(i64, i64)>,
    step_idx: usize,
    completion_cycle: Vec<usize>,
    start_cycle: Vec<usize>,
    unit_busy: Vec<usize>,
    // Per-step draw buffers, reused across steps.
    shorts: Vec<bool>,
    truths: Vec<bool>,
}

impl<R: Rng> ControlStyle<R> for CentSyncStyle<'_> {
    fn running(&self, _fabric: &CompletionFabric) -> bool {
        self.step_idx < self.taubm.steps().len()
    }

    fn latch(&mut self, _fabric: &mut CompletionFabric, _op: OpId, _at: usize) {
        // Latch delays are applied inline when the step ends; the kernel's
        // deferred queue is never populated for this style.
    }

    fn advance(
        &mut self,
        cycle: &mut usize,
        _fabric: &mut CompletionFabric,
        rng: &mut R,
        config: &SimConfig,
    ) -> Result<(), SimError> {
        let faults = &config.faults;
        let faulty = !faults.is_empty();
        let dfg = self.bound.dfg();
        let step = &self.taubm.steps()[self.step_idx];
        self.step_idx += 1;

        // `*cycle` is the base half T_i (the kernel pre-increments).
        for &o in &step.fixed_ops {
            self.start_cycle[o.0] = *cycle;
            self.completion_cycle[o.0] = *cycle;
            self.unit_busy[self.bound.unit_of(o).0] += 1;
        }
        if step.tau_ops.is_empty() {
            return Ok(());
        }
        let mut all_short = true;
        self.shorts.clear();
        self.truths.clear();
        for &o in &step.tau_ops {
            self.start_cycle[o.0] = *cycle;
            let node = dfg.op(o);
            let (lhs, rhs) = self.operand_vals[o.0];
            let truth = self.model.completion(o, node.kind, lhs, rhs, rng);
            let short = faults.stuck_completion(o, *cycle).unwrap_or(truth);
            self.shorts.push(short);
            self.truths.push(truth);
            all_short &= short;
        }
        if !all_short {
            *cycle += 1; // the extension half T_i'
        }
        // A stuck-at-short predictor that masks a long completion while no
        // sibling extends the step makes the synchronized latch capture an
        // unfinished result.
        if faulty && all_short {
            for (&o, &truth) in step.tau_ops.iter().zip(&self.truths) {
                if !truth {
                    return Err(desync(
                        *cycle,
                        format!(
                            "step latched {o} at the base half but its true completion was long"
                        ),
                        &self.completion_cycle,
                    ));
                }
            }
        }
        for (&o, &short) in step.tau_ops.iter().zip(&self.shorts) {
            // Synchronized: every TAU result latches when the step ends,
            // but a unit is *busy* only while actually computing — a short
            // operation whose step extends for a sibling sits idle in the
            // extension half (the idle time the paper's §1 points at).
            self.completion_cycle[o.0] = *cycle + faults.latch_delay(o, *cycle);
            self.unit_busy[self.bound.unit_of(o).0] += if short { 1 } else { 2 };
        }
        Ok(())
    }

    fn diagnostics(
        &self,
        cycle: usize,
        reason: String,
        _fabric: &CompletionFabric,
    ) -> Box<Diagnostics> {
        cent_sync_diag(cycle, reason, &self.completion_cycle)
    }
}

fn cent_sync_impl(
    bound: &BoundDfg,
    step_of: &[usize],
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let dfg = bound.dfg();
    model
        .validate(dfg.num_ops())
        .map_err(SimError::InvalidConfig)?;
    let taubm = TaubmDfg::derive(dfg, step_of, bound.allocation().tau_classes());
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);
    let operand_vals = crate::distributed::operand_values(bound, input_vals, &values);

    let faulty = !config.faults.is_empty();
    let n = dfg.num_ops();
    let num_units = bound.allocation().units().len();
    let mut fabric = CompletionFabric::new(n);
    let mut style = CentSyncStyle {
        bound,
        taubm,
        model,
        operand_vals,
        step_idx: 0,
        completion_cycle: vec![0usize; n],
        start_cycle: vec![0usize; n],
        unit_busy: vec![0usize; num_units],
        shorts: Vec::new(),
        truths: Vec::new(),
    };
    let cycle = kernel::run(&mut style, &mut fabric, rng, config, config.budget(n, 1))?;
    let CentSyncStyle {
        completion_cycle,
        start_cycle,
        unit_busy,
        ..
    } = style;

    let total = cycle.max(completion_cycle.iter().copied().max().unwrap_or(0));
    let result = SimResult {
        cycles: total,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    };
    if faulty {
        if let Err(msg) = result.verify(bound) {
            let completed = result.completion_cycle.clone();
            return Err(desync(
                total,
                format!("post-run invariant violated: {msg}"),
                &completed,
            ));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fir3, fir5};
    use tauhls_sched::Allocation;

    #[test]
    fn extremes_match_taubm_bounds() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let best =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng).unwrap();
        let worst =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng).unwrap();
        assert_eq!(best.cycles, taubm.best_latency_cycles());
        assert_eq!(worst.cycles, taubm.worst_latency_cycles());
    }

    #[test]
    fn monte_carlo_matches_analytic_expectation() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        let p = 0.7;
        let analytic = taubm.expected_latency_cycles_sync(p);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 30_000;
        let total: usize = (0..trials)
            .map(|_| {
                simulate_cent_sync(&bound, &CompletionModel::Bernoulli { p }, None, &mut rng)
                    .unwrap()
                    .cycles
            })
            .sum();
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - analytic).abs() < 0.05,
            "mean {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn sync_never_beats_distributed() {
        use crate::distributed::simulate_distributed;
        use tauhls_fsm::DistributedControlUnit;
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&fir5(), &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        for seed in 0..40 {
            // Same seed stream for both -> same completion draws per op
            // are NOT guaranteed (different sampling order), so compare
            // distributions via matched extremes and many-seed dominance
            // in expectation instead of per-seed equality.
            let mut rng1 = StdRng::seed_from_u64(seed);
            let mut rng2 = StdRng::seed_from_u64(seed + 1000);
            let d = simulate_distributed(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng1,
            )
            .unwrap();
            let s = simulate_cent_sync(
                &bound,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng2,
            )
            .unwrap();
            // Hard bounds always hold.
            assert!(d.cycles >= 5 && d.cycles <= 8, "dist {}", d.cycles);
            assert!(s.cycles >= 5 && s.cycles <= 8, "sync {}", s.cycles);
        }
        // Deterministic dominance at the extremes.
        let mut rng = StdRng::seed_from_u64(0);
        let db = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
            .unwrap();
        let sb = simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng).unwrap();
        assert!(db.cycles <= sb.cycles);
        let dw = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysLong, None, &mut rng)
            .unwrap();
        let sw = simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng).unwrap();
        assert!(dw.cycles <= sw.cycles);
    }

    #[test]
    fn fir3_sync_latencies_match_paper_row() {
        // Paper 3rd FIR LT_TAU: best 45 ns (3 cycles), worst 75 ns (5).
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(0);
        let best =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysShort, None, &mut rng).unwrap();
        let worst =
            simulate_cent_sync(&bound, &CompletionModel::AlwaysLong, None, &mut rng).unwrap();
        assert_eq!(best.cycles, 3);
        assert_eq!(worst.cycles, 5);
    }

    #[test]
    fn completion_cycles_respect_dependences() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_cent_sync(
            &bound,
            &CompletionModel::Bernoulli { p: 0.5 },
            None,
            &mut rng,
        )
        .unwrap();
        for v in bound.dfg().op_ids() {
            for p in bound.dfg().preds(v) {
                assert!(r.completion_cycle[p.0] < r.start_cycle[v.0]);
            }
        }
    }
    #[test]
    fn short_table_is_invalid_config() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(0);
        let err = simulate_cent_sync(&bound, &CompletionModel::Table(vec![true]), None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }
}
