//! Latency statistics: best / average / worst summaries in cycles and
//! nanoseconds, in the format of the paper's Table 2.

use crate::cent::{simulate_cent, CentControlUnit};
use crate::centsync::simulate_cent_sync;
use crate::distributed::simulate_distributed;
use crate::error::SimError;
use crate::model::CompletionModel;
use rand::Rng;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;

/// Best / average(s) / worst latency summary for one controller style.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencySummary {
    /// Best-case cycles (every TAU short).
    pub best_cycles: usize,
    /// Mean cycles per swept `P` value, in sweep order.
    pub average_cycles: Vec<f64>,
    /// Worst-case cycles (every TAU long).
    pub worst_cycles: usize,
    /// The swept `P` values.
    pub p_values: Vec<f64>,
}

impl LatencySummary {
    /// Renders the paper's `[best][avg...][worst]` cell in nanoseconds.
    pub fn to_ns_string(&self, clock_ns: f64) -> String {
        let avgs: Vec<String> = self
            .average_cycles
            .iter()
            .map(|c| format!("{:.1}", c * clock_ns))
            .collect();
        format!(
            "[{:.0}][{}][{:.0}]",
            self.best_cycles as f64 * clock_ns,
            avgs.join(", "),
            self.worst_cycles as f64 * clock_ns
        )
    }
}

/// Controller styles the latency harness can evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlStyle {
    /// The distributed control unit (paper's proposal, `LT_DIST`).
    Distributed,
    /// The centralized product controller tracking each TAU independently
    /// (`LT_CENT`; same latency as `LT_DIST` by bisimulation).
    Cent,
    /// The synchronized centralized TAUBM controller (`LT_TAU`).
    CentSync,
}

/// The generated machinery one [`ControlStyle`] needs — built once per
/// summary, reused across trials.
enum Engine {
    Dist(DistributedControlUnit),
    Cent(CentControlUnit),
    Sync,
}

impl Engine {
    fn generate(bound: &BoundDfg, style: ControlStyle) -> Self {
        match style {
            ControlStyle::Distributed => Engine::Dist(DistributedControlUnit::generate(bound)),
            ControlStyle::Cent => Engine::Cent(CentControlUnit::without_product(bound)),
            ControlStyle::CentSync => Engine::Sync,
        }
    }

    fn run_once<R: Rng>(
        &self,
        bound: &BoundDfg,
        model: &CompletionModel,
        rng: &mut R,
    ) -> Result<usize, SimError> {
        Ok(match self {
            Engine::Dist(cu) => simulate_distributed(bound, cu, model, None, rng)?.cycles,
            Engine::Cent(cu) => simulate_cent(bound, cu, model, None, rng)?.cycles,
            Engine::Sync => simulate_cent_sync(bound, model, None, rng)?.cycles,
        })
    }
}

/// Measures a [`LatencySummary`] for a bound DFG under one control style.
///
/// Best/worst come from the deterministic extreme models; each average is
/// a Monte-Carlo mean over `trials` runs of `Bernoulli(p)`.
///
/// Returns [`SimError::InvalidConfig`] when `trials == 0` and propagates
/// any simulation failure.
pub fn latency_summary(
    bound: &BoundDfg,
    style: ControlStyle,
    p_values: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<LatencySummary, SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency summary needs trials >= 1".to_string(),
        ));
    }
    let engine = Engine::generate(bound, style);
    let run = |model: &CompletionModel, rng: &mut _| engine.run_once(bound, model, rng);
    let best_cycles = run(&CompletionModel::AlwaysShort, rng)?;
    let worst_cycles = run(&CompletionModel::AlwaysLong, rng)?;
    let mut average_cycles = Vec::with_capacity(p_values.len());
    for &p in p_values {
        let mut total = 0usize;
        for _ in 0..trials {
            total += run(&CompletionModel::Bernoulli { p }, rng)?;
        }
        average_cycles.push(total as f64 / trials as f64);
    }
    Ok(LatencySummary {
        best_cycles,
        average_cycles,
        worst_cycles,
        p_values: p_values.to_vec(),
    })
}

/// Measures `LT_TAU` (CENT-SYNC) and `LT_DIST` summaries with **coupled**
/// completion draws: each trial draws one short/long outcome per operation
/// and feeds the same table to both styles, so the comparison is free of
/// sampling skew (distributed control dominates per-trial, not merely in
/// expectation).
///
/// Returns `(sync, dist)`, or [`SimError::InvalidConfig`] when
/// `trials == 0`.
pub fn latency_pair(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<(LatencySummary, LatencySummary), SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency pair needs trials >= 1".to_string(),
        ));
    }
    let cu = DistributedControlUnit::generate(bound);
    let num_ops = bound.dfg().num_ops();
    let measure = |model: &CompletionModel, rng: &mut _| -> Result<(usize, usize), SimError> {
        Ok((
            simulate_cent_sync(bound, model, None, rng)?.cycles,
            simulate_distributed(bound, &cu, model, None, rng)?.cycles,
        ))
    };
    let (sync_best, dist_best) = measure(&CompletionModel::AlwaysShort, rng)?;
    let (sync_worst, dist_worst) = measure(&CompletionModel::AlwaysLong, rng)?;
    let mut sync_avg = Vec::with_capacity(p_values.len());
    let mut dist_avg = Vec::with_capacity(p_values.len());
    for &p in p_values {
        let mut s_total = 0usize;
        let mut d_total = 0usize;
        for _ in 0..trials {
            let table = CompletionModel::draw_table(num_ops, p, rng);
            let (s, d) = measure(&table, rng)?;
            debug_assert!(d <= s, "distributed lost a coupled trial: {d} > {s}");
            s_total += s;
            d_total += d;
        }
        sync_avg.push(s_total as f64 / trials as f64);
        dist_avg.push(d_total as f64 / trials as f64);
    }
    Ok((
        LatencySummary {
            best_cycles: sync_best,
            average_cycles: sync_avg,
            worst_cycles: sync_worst,
            p_values: p_values.to_vec(),
        },
        LatencySummary {
            best_cycles: dist_best,
            average_cycles: dist_avg,
            worst_cycles: dist_worst,
            p_values: p_values.to_vec(),
        },
    ))
}

/// Measures all three controller styles — `LT_TAU` (CENT-SYNC), `LT_DIST`,
/// and `LT_CENT` — with **coupled** completion draws: one table per trial,
/// fed to every style.
///
/// The deterministic models never consume RNG, so the sync and dist legs
/// reproduce [`latency_pair`] bit for bit; the CENT leg is expected to
/// match DIST exactly (the product controller is bisimilar to the
/// distributed one) and that equality is *measured* per trial, not
/// assumed.
///
/// Returns `(sync, dist, cent)`, or [`SimError::InvalidConfig`] when
/// `trials == 0`.
pub fn latency_triple(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<(LatencySummary, LatencySummary, LatencySummary), SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency triple needs trials >= 1".to_string(),
        ));
    }
    let cu = DistributedControlUnit::generate(bound);
    let cent_cu = CentControlUnit::without_product(bound);
    let num_ops = bound.dfg().num_ops();
    let measure =
        |model: &CompletionModel, rng: &mut _| -> Result<(usize, usize, usize), SimError> {
            Ok((
                simulate_cent_sync(bound, model, None, rng)?.cycles,
                simulate_distributed(bound, &cu, model, None, rng)?.cycles,
                simulate_cent(bound, &cent_cu, model, None, rng)?.cycles,
            ))
        };
    let (sync_best, dist_best, cent_best) = measure(&CompletionModel::AlwaysShort, rng)?;
    let (sync_worst, dist_worst, cent_worst) = measure(&CompletionModel::AlwaysLong, rng)?;
    let mut sync_avg = Vec::with_capacity(p_values.len());
    let mut dist_avg = Vec::with_capacity(p_values.len());
    let mut cent_avg = Vec::with_capacity(p_values.len());
    for &p in p_values {
        let mut s_total = 0usize;
        let mut d_total = 0usize;
        let mut c_total = 0usize;
        for _ in 0..trials {
            let table = CompletionModel::draw_table(num_ops, p, rng);
            let (s, d, c) = measure(&table, rng)?;
            debug_assert!(d <= s, "distributed lost a coupled trial: {d} > {s}");
            debug_assert_eq!(c, d, "CENT diverged from DIST on a coupled trial");
            s_total += s;
            d_total += d;
            c_total += c;
        }
        sync_avg.push(s_total as f64 / trials as f64);
        dist_avg.push(d_total as f64 / trials as f64);
        cent_avg.push(c_total as f64 / trials as f64);
    }
    let summary = |best, avg: Vec<f64>, worst| LatencySummary {
        best_cycles: best,
        average_cycles: avg,
        worst_cycles: worst,
        p_values: p_values.to_vec(),
    };
    Ok((
        summary(sync_best, sync_avg, sync_worst),
        summary(dist_best, dist_avg, dist_worst),
        summary(cent_best, cent_avg, cent_worst),
    ))
}

/// Percentage improvement of `dist` over `sync` per swept `P`
/// (the paper's "Performance Enhancement" column).
pub fn enhancement_percent(sync: &LatencySummary, dist: &LatencySummary) -> Vec<f64> {
    sync.average_cycles
        .iter()
        .zip(&dist.average_cycles)
        .map(|(s, d)| (s - d) / s * 100.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{fir5, iir2};
    use tauhls_sched::Allocation;

    #[test]
    fn fir5_distributed_beats_sync_on_average() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(1);
        let ps = [0.9, 0.7, 0.5];
        let sync = latency_summary(&bound, ControlStyle::CentSync, &ps, 2000, &mut rng).unwrap();
        let dist = latency_summary(&bound, ControlStyle::Distributed, &ps, 2000, &mut rng).unwrap();
        assert_eq!(sync.best_cycles, dist.best_cycles);
        assert!(dist.worst_cycles <= sync.worst_cycles);
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s, "dist {d} > sync {s}");
        }
        let enh = enhancement_percent(&sync, &dist);
        // The paper reports 4.9-13.2 % for FIR5; demand a visible gain.
        assert!(enh[2] > 2.0, "enhancement at P=0.5: {enh:?}");
        // Gap widens as P shrinks.
        assert!(enh[2] >= enh[0] - 0.5, "{enh:?}");
    }

    #[test]
    fn averages_monotone_in_p() {
        let bound = BoundDfg::bind(&iir2(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(2);
        let s = latency_summary(
            &bound,
            ControlStyle::Distributed,
            &[0.9, 0.7, 0.5],
            1500,
            &mut rng,
        )
        .unwrap();
        assert!(s.average_cycles[0] <= s.average_cycles[1]);
        assert!(s.average_cycles[1] <= s.average_cycles[2]);
        assert!(s.best_cycles as f64 <= s.average_cycles[0]);
        assert!(s.average_cycles[2] <= s.worst_cycles as f64);
    }

    #[test]
    fn coupled_pair_dominates_per_trial() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(9);
        let (sync, dist) = latency_pair(&bound, &[0.9, 0.7, 0.5], 400, &mut rng).unwrap();
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s, "coupled dist {d} > sync {s}");
        }
        assert!(dist.worst_cycles <= sync.worst_cycles);
    }

    #[test]
    fn triple_reproduces_pair_and_cent_tracks_dist() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let ps = [0.9, 0.5];
        let mut rng1 = StdRng::seed_from_u64(9);
        let (pair_sync, pair_dist) = latency_pair(&bound, &ps, 200, &mut rng1).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let (sync, dist, cent) = latency_triple(&bound, &ps, 200, &mut rng2).unwrap();
        // The extra CENT leg consumes no RNG, so the pair is reproduced
        // bit for bit under the same seed.
        assert_eq!(sync, pair_sync);
        assert_eq!(dist, pair_dist);
        // CENT is cycle-identical to DIST (bisimulation), trial for trial.
        assert_eq!(cent, dist);
    }

    #[test]
    fn zero_trials_is_a_config_error() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(0);
        let err =
            latency_summary(&bound, ControlStyle::Distributed, &[0.5], 0, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        let err = latency_pair(&bound, &[0.5], 0, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn ns_rendering() {
        let s = LatencySummary {
            best_cycles: 3,
            average_cycles: vec![3.29, 3.81],
            worst_cycles: 5,
            p_values: vec![0.9, 0.5],
        };
        assert_eq!(s.to_ns_string(15.0), "[45][49.4, 57.1][75]");
    }
}
