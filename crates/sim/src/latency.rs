//! Latency statistics: best / average / worst summaries in cycles and
//! nanoseconds, in the format of the paper's Table 2.

use crate::batch::derive_seed;
use crate::cent::{simulate_cent, CentControlUnit};
use crate::centsync::simulate_cent_sync;
use crate::distributed::simulate_distributed;
use crate::elastic::{elastic_trial_skew_seed, simulate_elastic, simulate_elastic_saturated};
use crate::error::SimError;
use crate::fault::SimConfig;
use crate::kernel::ElasticSpec;
use crate::model::CompletionModel;
use rand::Rng;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;

/// Best / average(s) / worst latency summary for one controller style.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencySummary {
    /// Best-case cycles (every TAU short).
    pub best_cycles: usize,
    /// Mean cycles per swept `P` value, in sweep order.
    pub average_cycles: Vec<f64>,
    /// Worst-case cycles (every TAU long).
    pub worst_cycles: usize,
    /// The swept `P` values.
    pub p_values: Vec<f64>,
}

impl LatencySummary {
    /// Renders the paper's `[best][avg...][worst]` cell in nanoseconds.
    pub fn to_ns_string(&self, clock_ns: f64) -> String {
        let avgs: Vec<String> = self
            .average_cycles
            .iter()
            .map(|c| format!("{:.1}", c * clock_ns))
            .collect();
        format!(
            "[{:.0}][{}][{:.0}]",
            self.best_cycles as f64 * clock_ns,
            avgs.join(", "),
            self.worst_cycles as f64 * clock_ns
        )
    }
}

/// Controller styles the latency harness can evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlStyle {
    /// The distributed control unit (paper's proposal, `LT_DIST`).
    Distributed,
    /// The centralized product controller tracking each TAU independently
    /// (`LT_CENT`; same latency as `LT_DIST` by bisimulation).
    Cent,
    /// The synchronized centralized TAUBM controller (`LT_TAU`).
    CentSync,
    /// The distributed control unit under elastic (GALS) clocking: local
    /// per-controller clocks with bounded skew and handshake-latched
    /// cross-domain completion transfer (`LT_ELAS`).
    Elastic(ElasticSpec),
}

/// A set of controller styles, with the one name↔style mapping every
/// front end (CLI flags, JobSpec parsing, table renderers) shares — so
/// adding a style is a one-site change.
///
/// Canonical names, in canonical order: `tau` (CENT-SYNC), `dist`,
/// `cent`, `elastic`. Parsing accepts the aliases listed on
/// [`ControlStyleSet::parse`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlStyleSet {
    bits: u8,
}

impl ControlStyleSet {
    /// The synchronized TAUBM style (`LT_TAU`).
    pub const TAU: ControlStyleSet = ControlStyleSet { bits: 1 };
    /// The distributed style (`LT_DIST`).
    pub const DIST: ControlStyleSet = ControlStyleSet { bits: 2 };
    /// The centralized product style (`LT_CENT`).
    pub const CENT: ControlStyleSet = ControlStyleSet { bits: 4 };
    /// The elastic (GALS) style (`LT_ELAS`).
    pub const ELASTIC: ControlStyleSet = ControlStyleSet { bits: 8 };

    /// The empty set.
    pub fn empty() -> Self {
        ControlStyleSet { bits: 0 }
    }

    /// Every style.
    pub fn all() -> Self {
        Self::TAU | Self::DIST | Self::CENT | Self::ELASTIC
    }

    /// True when every member of `other` is in `self`.
    pub fn contains(self, other: ControlStyleSet) -> bool {
        self.bits & other.bits == other.bits
    }

    /// True when no style is in the set.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// The flag a [`ControlStyle`] value belongs to.
    pub fn of(style: ControlStyle) -> Self {
        match style {
            ControlStyle::CentSync => Self::TAU,
            ControlStyle::Distributed => Self::DIST,
            ControlStyle::Cent => Self::CENT,
            ControlStyle::Elastic(_) => Self::ELASTIC,
        }
    }

    /// Parses one style name. Accepted (case-insensitive): `tau`,
    /// `cent_sync`, `centsync`, `sync` → TAU; `dist`, `distributed` →
    /// DIST; `cent`, `centralized` → CENT; `elastic`, `gals` → ELASTIC.
    pub fn parse_one(name: &str) -> Result<ControlStyleSet, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "tau" | "cent_sync" | "centsync" | "sync" => Ok(Self::TAU),
            "dist" | "distributed" => Ok(Self::DIST),
            "cent" | "centralized" => Ok(Self::CENT),
            "elastic" | "gals" => Ok(Self::ELASTIC),
            other => Err(format!(
                "unknown control style '{other}' (expected tau|dist|cent|elastic)"
            )),
        }
    }

    /// Parses a comma-separated style list (e.g. `dist,cent,elastic`).
    /// Rejects empty lists and unknown names.
    pub fn parse(list: &str) -> Result<ControlStyleSet, String> {
        let mut set = Self::empty();
        for name in list.split(',').filter(|s| !s.trim().is_empty()) {
            set = set | Self::parse_one(name)?;
        }
        if set.is_empty() {
            return Err("empty control-style list (expected tau|dist|cent|elastic)".to_string());
        }
        Ok(set)
    }

    /// The canonical names of the members, in canonical order.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (flag, name) in [
            (Self::TAU, "tau"),
            (Self::DIST, "dist"),
            (Self::CENT, "cent"),
            (Self::ELASTIC, "elastic"),
        ] {
            if self.contains(flag) {
                out.push(name);
            }
        }
        out
    }
}

impl std::ops::BitOr for ControlStyleSet {
    type Output = ControlStyleSet;
    fn bitor(self, rhs: ControlStyleSet) -> ControlStyleSet {
        ControlStyleSet {
            bits: self.bits | rhs.bits,
        }
    }
}

/// The generated machinery one [`ControlStyle`] needs — built once per
/// summary, reused across trials.
enum Engine {
    Dist(DistributedControlUnit),
    Cent(CentControlUnit),
    Sync,
    Elastic(DistributedControlUnit, ElasticSpec),
}

impl Engine {
    fn generate(bound: &BoundDfg, style: ControlStyle) -> Self {
        match style {
            ControlStyle::Distributed => Engine::Dist(DistributedControlUnit::generate(bound)),
            ControlStyle::Cent => Engine::Cent(CentControlUnit::without_product(bound)),
            ControlStyle::CentSync => Engine::Sync,
            ControlStyle::Elastic(spec) => {
                Engine::Elastic(DistributedControlUnit::generate(bound), spec)
            }
        }
    }

    /// Runs one trial. `run_tag` numbers the run within the summary; only
    /// the elastic engine consumes it (its skew schedule is drawn from
    /// `elastic_trial_skew_seed(0, 0, run_tag)`, never from `rng`, so the
    /// synchronous styles' RNG streams are unaffected by the tag).
    fn run_once<R: Rng>(
        &self,
        bound: &BoundDfg,
        model: &CompletionModel,
        rng: &mut R,
        run_tag: u64,
    ) -> Result<usize, SimError> {
        Ok(match self {
            Engine::Dist(cu) => simulate_distributed(bound, cu, model, None, rng)?.cycles,
            Engine::Cent(cu) => simulate_cent(bound, cu, model, None, rng)?.cycles,
            Engine::Sync => simulate_cent_sync(bound, model, None, rng)?.cycles,
            Engine::Elastic(cu, spec) => {
                let skew_seed = elastic_trial_skew_seed(0, 0, run_tag);
                simulate_elastic(bound, cu, model, None, rng, *spec, skew_seed)?.cycles
            }
        })
    }
}

/// Measures a [`LatencySummary`] for a bound DFG under one control style.
///
/// Best/worst come from the deterministic extreme models; each average is
/// a Monte-Carlo mean over `trials` runs of `Bernoulli(p)`.
///
/// Returns [`SimError::InvalidConfig`] when `trials == 0` and propagates
/// any simulation failure.
pub fn latency_summary(
    bound: &BoundDfg,
    style: ControlStyle,
    p_values: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<LatencySummary, SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency summary needs trials >= 1".to_string(),
        ));
    }
    let engine = Engine::generate(bound, style);
    // Envelope legs: deterministic completion extremes. The elastic style
    // additionally pins the schedule-space extremes — stall-free floor
    // for best, saturated ceiling for worst — so its envelope brackets
    // the averages regardless of the skew seeds the trials draw.
    let (best_cycles, worst_cycles) = match &engine {
        Engine::Elastic(cu, spec) => {
            let floor = ElasticSpec {
                skew_bound: 0,
                ..*spec
            };
            let cfg = SimConfig::default();
            (
                simulate_elastic(
                    bound,
                    cu,
                    &CompletionModel::AlwaysShort,
                    None,
                    rng,
                    floor,
                    0,
                )?
                .cycles,
                simulate_elastic_saturated(
                    bound,
                    cu,
                    &CompletionModel::AlwaysLong,
                    None,
                    rng,
                    &cfg,
                    *spec,
                )?
                .cycles,
            )
        }
        _ => (
            engine.run_once(bound, &CompletionModel::AlwaysShort, rng, 0)?,
            engine.run_once(bound, &CompletionModel::AlwaysLong, rng, 1)?,
        ),
    };
    let mut run_tag = 2u64;
    let mut run = |model: &CompletionModel, rng: &mut _| {
        let tag = run_tag;
        run_tag += 1;
        engine.run_once(bound, model, rng, tag)
    };
    let mut average_cycles = Vec::with_capacity(p_values.len());
    for &p in p_values {
        let mut total = 0usize;
        for _ in 0..trials {
            total += run(&CompletionModel::Bernoulli { p }, rng)?;
        }
        average_cycles.push(total as f64 / trials as f64);
    }
    Ok(LatencySummary {
        best_cycles,
        average_cycles,
        worst_cycles,
        p_values: p_values.to_vec(),
    })
}

/// Measures `LT_TAU` (CENT-SYNC) and `LT_DIST` summaries with **coupled**
/// completion draws: each trial draws one short/long outcome per operation
/// and feeds the same table to both styles, so the comparison is free of
/// sampling skew (distributed control dominates per-trial, not merely in
/// expectation).
///
/// Returns `(sync, dist)`, or [`SimError::InvalidConfig`] when
/// `trials == 0`.
pub fn latency_pair(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<(LatencySummary, LatencySummary), SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency pair needs trials >= 1".to_string(),
        ));
    }
    let cu = DistributedControlUnit::generate(bound);
    let num_ops = bound.dfg().num_ops();
    let measure = |model: &CompletionModel, rng: &mut _| -> Result<(usize, usize), SimError> {
        Ok((
            simulate_cent_sync(bound, model, None, rng)?.cycles,
            simulate_distributed(bound, &cu, model, None, rng)?.cycles,
        ))
    };
    let (sync_best, dist_best) = measure(&CompletionModel::AlwaysShort, rng)?;
    let (sync_worst, dist_worst) = measure(&CompletionModel::AlwaysLong, rng)?;
    let mut sync_avg = Vec::with_capacity(p_values.len());
    let mut dist_avg = Vec::with_capacity(p_values.len());
    for &p in p_values {
        let mut s_total = 0usize;
        let mut d_total = 0usize;
        for _ in 0..trials {
            let table = CompletionModel::draw_table(num_ops, p, rng);
            let (s, d) = measure(&table, rng)?;
            debug_assert!(d <= s, "distributed lost a coupled trial: {d} > {s}");
            s_total += s;
            d_total += d;
        }
        sync_avg.push(s_total as f64 / trials as f64);
        dist_avg.push(d_total as f64 / trials as f64);
    }
    Ok((
        LatencySummary {
            best_cycles: sync_best,
            average_cycles: sync_avg,
            worst_cycles: sync_worst,
            p_values: p_values.to_vec(),
        },
        LatencySummary {
            best_cycles: dist_best,
            average_cycles: dist_avg,
            worst_cycles: dist_worst,
            p_values: p_values.to_vec(),
        },
    ))
}

/// Measures all three controller styles — `LT_TAU` (CENT-SYNC), `LT_DIST`,
/// and `LT_CENT` — with **coupled** completion draws: one table per trial,
/// fed to every style.
///
/// The deterministic models never consume RNG, so the sync and dist legs
/// reproduce [`latency_pair`] bit for bit; the CENT leg is expected to
/// match DIST exactly (the product controller is bisimilar to the
/// distributed one) and that equality is *measured* per trial, not
/// assumed.
///
/// Returns `(sync, dist, cent)`, or [`SimError::InvalidConfig`] when
/// `trials == 0`.
pub fn latency_triple(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: usize,
    rng: &mut impl Rng,
) -> Result<(LatencySummary, LatencySummary, LatencySummary), SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency triple needs trials >= 1".to_string(),
        ));
    }
    let cu = DistributedControlUnit::generate(bound);
    let cent_cu = CentControlUnit::without_product(bound);
    let num_ops = bound.dfg().num_ops();
    let measure =
        |model: &CompletionModel, rng: &mut _| -> Result<(usize, usize, usize), SimError> {
            Ok((
                simulate_cent_sync(bound, model, None, rng)?.cycles,
                simulate_distributed(bound, &cu, model, None, rng)?.cycles,
                simulate_cent(bound, &cent_cu, model, None, rng)?.cycles,
            ))
        };
    let (sync_best, dist_best, cent_best) = measure(&CompletionModel::AlwaysShort, rng)?;
    let (sync_worst, dist_worst, cent_worst) = measure(&CompletionModel::AlwaysLong, rng)?;
    let mut sync_avg = Vec::with_capacity(p_values.len());
    let mut dist_avg = Vec::with_capacity(p_values.len());
    let mut cent_avg = Vec::with_capacity(p_values.len());
    for &p in p_values {
        let mut s_total = 0usize;
        let mut d_total = 0usize;
        let mut c_total = 0usize;
        for _ in 0..trials {
            let table = CompletionModel::draw_table(num_ops, p, rng);
            let (s, d, c) = measure(&table, rng)?;
            debug_assert!(d <= s, "distributed lost a coupled trial: {d} > {s}");
            debug_assert_eq!(c, d, "CENT diverged from DIST on a coupled trial");
            s_total += s;
            d_total += d;
            c_total += c;
        }
        sync_avg.push(s_total as f64 / trials as f64);
        dist_avg.push(d_total as f64 / trials as f64);
        cent_avg.push(c_total as f64 / trials as f64);
    }
    let summary = |best, avg: Vec<f64>, worst| LatencySummary {
        best_cycles: best,
        average_cycles: avg,
        worst_cycles: worst,
        p_values: p_values.to_vec(),
    };
    Ok((
        summary(sync_best, sync_avg, sync_worst),
        summary(dist_best, dist_avg, dist_worst),
        summary(cent_best, cent_avg, cent_worst),
    ))
}

/// Measures all four controller styles — `LT_TAU`, `LT_DIST`, `LT_CENT`
/// and `LT_ELAS` — with **coupled** completion draws: one table per trial,
/// fed to every style.
///
/// The elastic leg draws its per-trial skew schedule from
/// `derive_seed(skew_seed, p_index, trial)` — never from `rng` — so the
/// first three legs reproduce [`latency_triple`] bit for bit under the
/// same seed. Per coupled trial, DIST can only be at least as fast as
/// ELASTIC (skew stalls and handshake latency never speed a run up);
/// that domination is debug-asserted, like the CENT/DIST bisimulation.
///
/// Best/worst elastic legs are schedule-independent extremes of the
/// whole spec space: the best cell runs the stall-free floor schedule
/// (spec `{skew_bound: 0, sync_latency}`), the worst the saturated
/// schedule ([`simulate_elastic_saturated`]), so the envelope brackets
/// the seeded per-trial averages no matter which skew seeds they drew.
///
/// Returns `(sync, dist, cent, elastic)`, or
/// [`SimError::InvalidConfig`] when `trials == 0`.
pub fn latency_quad(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: usize,
    spec: ElasticSpec,
    skew_seed: u64,
    rng: &mut impl Rng,
) -> Result<
    (
        LatencySummary,
        LatencySummary,
        LatencySummary,
        LatencySummary,
    ),
    SimError,
> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency quad needs trials >= 1".to_string(),
        ));
    }
    let cu = DistributedControlUnit::generate(bound);
    let cent_cu = CentControlUnit::without_product(bound);
    let num_ops = bound.dfg().num_ops();
    let measure = |model: &CompletionModel,
                   rng: &mut _,
                   trial_skew: u64|
     -> Result<(usize, usize, usize, usize), SimError> {
        Ok((
            simulate_cent_sync(bound, model, None, rng)?.cycles,
            simulate_distributed(bound, &cu, model, None, rng)?.cycles,
            simulate_cent(bound, &cent_cu, model, None, rng)?.cycles,
            simulate_elastic(bound, &cu, model, None, rng, spec, trial_skew)?.cycles,
        ))
    };
    // Deterministic models draw nothing from `rng`, so the discarded
    // elastic legs of the two `measure` calls leave the stream untouched.
    let floor = ElasticSpec {
        skew_bound: 0,
        ..spec
    };
    let cfg = SimConfig::default();
    let (sync_best, dist_best, cent_best, _) = measure(&CompletionModel::AlwaysShort, rng, 0)?;
    let elas_best = simulate_elastic(
        bound,
        &cu,
        &CompletionModel::AlwaysShort,
        None,
        rng,
        floor,
        0,
    )?
    .cycles;
    let (sync_worst, dist_worst, cent_worst, _) = measure(&CompletionModel::AlwaysLong, rng, 0)?;
    let elas_worst = simulate_elastic_saturated(
        bound,
        &cu,
        &CompletionModel::AlwaysLong,
        None,
        rng,
        &cfg,
        spec,
    )?
    .cycles;
    let mut sync_avg = Vec::with_capacity(p_values.len());
    let mut dist_avg = Vec::with_capacity(p_values.len());
    let mut cent_avg = Vec::with_capacity(p_values.len());
    let mut elas_avg = Vec::with_capacity(p_values.len());
    for (idx, &p) in p_values.iter().enumerate() {
        let mut s_total = 0usize;
        let mut d_total = 0usize;
        let mut c_total = 0usize;
        let mut e_total = 0usize;
        for trial in 0..trials {
            let table = CompletionModel::draw_table(num_ops, p, rng);
            let trial_skew = derive_seed(skew_seed, idx as u64, trial as u64);
            let (s, d, c, e) = measure(&table, rng, trial_skew)?;
            debug_assert!(d <= s, "distributed lost a coupled trial: {d} > {s}");
            debug_assert_eq!(c, d, "CENT diverged from DIST on a coupled trial");
            debug_assert!(d <= e, "elastic beat dist on a coupled trial: {e} < {d}");
            s_total += s;
            d_total += d;
            c_total += c;
            e_total += e;
        }
        sync_avg.push(s_total as f64 / trials as f64);
        dist_avg.push(d_total as f64 / trials as f64);
        cent_avg.push(c_total as f64 / trials as f64);
        elas_avg.push(e_total as f64 / trials as f64);
    }
    let summary = |best, avg: Vec<f64>, worst| LatencySummary {
        best_cycles: best,
        average_cycles: avg,
        worst_cycles: worst,
        p_values: p_values.to_vec(),
    };
    Ok((
        summary(sync_best, sync_avg, sync_worst),
        summary(dist_best, dist_avg, dist_worst),
        summary(cent_best, cent_avg, cent_worst),
        summary(elas_best, elas_avg, elas_worst),
    ))
}

/// Percentage improvement of `dist` over `sync` per swept `P`
/// (the paper's "Performance Enhancement" column).
pub fn enhancement_percent(sync: &LatencySummary, dist: &LatencySummary) -> Vec<f64> {
    sync.average_cycles
        .iter()
        .zip(&dist.average_cycles)
        .map(|(s, d)| (s - d) / s * 100.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{fir5, iir2};
    use tauhls_sched::Allocation;

    #[test]
    fn fir5_distributed_beats_sync_on_average() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(1);
        let ps = [0.9, 0.7, 0.5];
        let sync = latency_summary(&bound, ControlStyle::CentSync, &ps, 2000, &mut rng).unwrap();
        let dist = latency_summary(&bound, ControlStyle::Distributed, &ps, 2000, &mut rng).unwrap();
        assert_eq!(sync.best_cycles, dist.best_cycles);
        assert!(dist.worst_cycles <= sync.worst_cycles);
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s, "dist {d} > sync {s}");
        }
        let enh = enhancement_percent(&sync, &dist);
        // The paper reports 4.9-13.2 % for FIR5; demand a visible gain.
        assert!(enh[2] > 2.0, "enhancement at P=0.5: {enh:?}");
        // Gap widens as P shrinks.
        assert!(enh[2] >= enh[0] - 0.5, "{enh:?}");
    }

    #[test]
    fn averages_monotone_in_p() {
        let bound = BoundDfg::bind(&iir2(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(2);
        let s = latency_summary(
            &bound,
            ControlStyle::Distributed,
            &[0.9, 0.7, 0.5],
            1500,
            &mut rng,
        )
        .unwrap();
        assert!(s.average_cycles[0] <= s.average_cycles[1]);
        assert!(s.average_cycles[1] <= s.average_cycles[2]);
        assert!(s.best_cycles as f64 <= s.average_cycles[0]);
        assert!(s.average_cycles[2] <= s.worst_cycles as f64);
    }

    #[test]
    fn coupled_pair_dominates_per_trial() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(9);
        let (sync, dist) = latency_pair(&bound, &[0.9, 0.7, 0.5], 400, &mut rng).unwrap();
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s, "coupled dist {d} > sync {s}");
        }
        assert!(dist.worst_cycles <= sync.worst_cycles);
    }

    #[test]
    fn triple_reproduces_pair_and_cent_tracks_dist() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let ps = [0.9, 0.5];
        let mut rng1 = StdRng::seed_from_u64(9);
        let (pair_sync, pair_dist) = latency_pair(&bound, &ps, 200, &mut rng1).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let (sync, dist, cent) = latency_triple(&bound, &ps, 200, &mut rng2).unwrap();
        // The extra CENT leg consumes no RNG, so the pair is reproduced
        // bit for bit under the same seed.
        assert_eq!(sync, pair_sync);
        assert_eq!(dist, pair_dist);
        // CENT is cycle-identical to DIST (bisimulation), trial for trial.
        assert_eq!(cent, dist);
    }

    #[test]
    fn quad_reproduces_triple_and_elastic_never_wins() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let ps = [0.9, 0.5];
        let mut rng1 = StdRng::seed_from_u64(9);
        let (tri_sync, tri_dist, tri_cent) = latency_triple(&bound, &ps, 200, &mut rng1).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let (sync, dist, cent, elas) =
            latency_quad(&bound, &ps, 200, ElasticSpec::default(), 21, &mut rng2).unwrap();
        // The extra ELASTIC leg consumes no trial RNG, so the established
        // triple is reproduced bit for bit under the same seed.
        assert_eq!(sync, tri_sync);
        assert_eq!(dist, tri_dist);
        assert_eq!(cent, tri_cent);
        // Elastic clocking can only cost cycles (domination is asserted
        // per coupled trial inside the quad; check the aggregates too).
        for (d, e) in dist.average_cycles.iter().zip(&elas.average_cycles) {
            assert!(d <= e, "elastic avg {e} < dist avg {d}");
        }
        assert!(dist.worst_cycles <= elas.worst_cycles);
    }

    #[test]
    fn quad_with_zero_spec_collapses_elastic_onto_dist() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(4);
        let (_, dist, _, elas) =
            latency_quad(&bound, &[0.9, 0.5], 150, ElasticSpec::zero(), 99, &mut rng).unwrap();
        assert_eq!(dist, elas);
    }

    #[test]
    fn elastic_summary_runs_and_brackets() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(6);
        let style = ControlStyle::Elastic(ElasticSpec::default());
        let s = latency_summary(&bound, style, &[0.9, 0.5], 200, &mut rng).unwrap();
        assert!(s.best_cycles as f64 <= s.average_cycles[0]);
        assert!(s.average_cycles[1] <= s.worst_cycles as f64);
    }

    #[test]
    fn style_set_parses_aliases_and_renders_canonical_names() {
        let set = ControlStyleSet::parse("dist,cent,elastic").unwrap();
        assert!(set.contains(ControlStyleSet::DIST));
        assert!(set.contains(ControlStyleSet::CENT));
        assert!(set.contains(ControlStyleSet::ELASTIC));
        assert!(!set.contains(ControlStyleSet::TAU));
        assert_eq!(set.names(), vec!["dist", "cent", "elastic"]);
        // Aliases, case-insensitivity, spacing.
        assert_eq!(
            ControlStyleSet::parse("CentSync, Distributed").unwrap(),
            ControlStyleSet::TAU | ControlStyleSet::DIST
        );
        assert_eq!(
            ControlStyleSet::parse("gals").unwrap(),
            ControlStyleSet::ELASTIC
        );
        assert_eq!(ControlStyleSet::all().names().len(), 4);
        // Unknown names and empty lists are rejected.
        assert!(ControlStyleSet::parse("dist,bogus").is_err());
        assert!(ControlStyleSet::parse("").is_err());
        assert!(ControlStyleSet::parse(" , ").is_err());
        // Style-value mapping covers the elastic variant.
        assert_eq!(
            ControlStyleSet::of(ControlStyle::Elastic(ElasticSpec::default())),
            ControlStyleSet::ELASTIC
        );
    }

    #[test]
    fn zero_trials_is_a_config_error() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let mut rng = StdRng::seed_from_u64(0);
        let err =
            latency_summary(&bound, ControlStyle::Distributed, &[0.5], 0, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        let err = latency_pair(&bound, &[0.5], 0, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn ns_rendering() {
        let s = LatencySummary {
            best_cycles: 3,
            average_cycles: vec![3.29, 3.81],
            worst_cycles: 5,
            p_values: vec![0.9, 0.5],
        };
        assert_eq!(s.to_ns_string(15.0), "[45][49.4, 57.1][75]");
    }
}
