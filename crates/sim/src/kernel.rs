//! The shared cycle-accurate simulation kernel.
//!
//! Every controller-style simulator in this crate (distributed, the
//! centralized product controller, the synchronized TAUBM step-walk, and
//! the pipelined multi-iteration engine) runs on the same substrate:
//!
//! * a [`CompletionFabric`] holding the completion-signal state — pulse
//!   wavefronts, done latches and fault-deferred result latches — as
//!   packed `u64` bitset words keyed by [`OpId`], preallocated once per
//!   run so the cycle loop performs no per-cycle heap allocation of its
//!   own (controller stepping still returns its asserted-output list as a
//!   `Vec`, owned by the `tauhls-fsm` crate);
//! * a [`ControlStyle`] trait: how a style decides it is still running,
//!   how it latches a completion, and how it advances one cycle;
//! * [`run`] — the kernel loop, which implements the middleware every
//!   engine used to duplicate exactly once, in a fixed order per cycle:
//!   watchdog check, fault-deferred result latches coming due, then the
//!   style's `advance` (which itself applies fault overlays *after* the
//!   completion-model draws, keeping RNG streams plan-independent).
//!
//! FSM-driven styles (distributed / centralized / pipelined) additionally
//! share [`FsmStyle`]: completion sampling, the combinational pulse
//! fixpoint, the premature-latch oracle, commit and state-register upsets
//! are implemented once, with the style-specific residue (what `C_CO(op)`
//! means, when to latch, how to snapshot diagnostics) behind the small
//! `PulseHooks` trait.

use crate::error::{ControllerSnapshot, Diagnostics, SimError};
use crate::fault::{FaultPlan, SimConfig};
use crate::model::CompletionModel;
use rand::{splitmix64_mix, Rng};
use tauhls_dfg::{Dfg, OpId};
use tauhls_fsm::{DistributedControlUnit, Fsm, StateId};
use tauhls_sched::BoundDfg;

/// A set of operation ids stored as packed 64-bit words.
///
/// Membership updates and queries are O(1); iteration is ascending by op
/// id (the order the legacy engines got from their sort-and-dedup pulse
/// vectors). Out-of-range ids are ignored on insert and absent on query,
/// so a hostile fault plan cannot push the fabric out of bounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpSet {
    words: Vec<u64>,
    len: usize,
}

impl OpSet {
    /// An empty set over the id universe `0..len`.
    pub fn new(len: usize) -> Self {
        OpSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts `op`; ids outside the universe are ignored.
    pub fn insert(&mut self, op: OpId) {
        if op.0 < self.len {
            self.words[op.0 / 64] |= 1u64 << (op.0 % 64);
        }
    }

    /// True when `op` is a member.
    pub fn contains(&self, op: OpId) -> bool {
        op.0 < self.len && self.words[op.0 / 64] & (1u64 << (op.0 % 64)) != 0
    }

    /// Overwrites `self` with the contents of `other` (same universe).
    pub fn copy_from(&mut self, other: &OpSet) {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = OpId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(OpId(wi * 64 + b))
                }
            })
        })
    }

    /// The ids of the universe *not* in the set, ascending — the
    /// set-difference `universe \ self`, walked word-by-word over the
    /// packed representation without materializing either side.
    pub fn complement(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.len;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = !w;
            std::iter::from_fn(move || loop {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let id = wi * 64 + b;
                if id < len {
                    return Some(id);
                }
            })
        })
    }
}

/// The completion-signal state shared by every controller style: pulse
/// wavefronts, done latches, and result latches deferred by `DelayLatch`
/// faults. All bitsets are allocated once, at [`CompletionFabric::new`].
#[derive(Clone, Debug)]
pub struct CompletionFabric {
    /// Ops whose single-iteration result has been latched (`done` flags).
    /// Multi-instance styles (pipelined) track instance counts themselves
    /// and leave this empty.
    pub(crate) done: OpSet,
    /// Member count of `done`, maintained incrementally.
    pub(crate) done_count: usize,
    /// The completion pulses asserted in the current cycle's fixpoint.
    pub(crate) pulses: OpSet,
    /// Fault-injected spurious pulses seeding the current wavefront.
    pub(crate) injected: OpSet,
    /// Scratch set for the next fixpoint round.
    pub(crate) scratch: OpSet,
    /// Reusable buffer for [`crate::FaultPlan::spurious_at`].
    pub(crate) spur_buf: Vec<OpId>,
    /// Result latches deferred by `DelayLatch` faults: `(due cycle, op)`,
    /// in insertion order.
    pub(crate) deferred: Vec<(usize, OpId)>,
}

impl CompletionFabric {
    /// A fabric for `num_ops` operations, with every bitset preallocated.
    pub fn new(num_ops: usize) -> Self {
        CompletionFabric {
            done: OpSet::new(num_ops),
            done_count: 0,
            pulses: OpSet::new(num_ops),
            injected: OpSet::new(num_ops),
            scratch: OpSet::new(num_ops),
            spur_buf: Vec::new(),
            deferred: Vec::new(),
        }
    }

    /// The done latches.
    pub fn done(&self) -> &OpSet {
        &self.done
    }

    /// The pulse wavefront of the most recent cycle.
    pub fn pulses(&self) -> &OpSet {
        &self.pulses
    }

    /// Latches `op` as done (idempotent; maintains the member count).
    pub fn mark_done(&mut self, op: OpId) {
        if !self.done.contains(op) {
            self.done.insert(op);
            self.done_count += 1;
        }
    }
}

/// Parameters of the ELASTIC (GALS) controller style: every control unit
/// runs on a local clock with seed-driven bounded skew, and completions
/// cross clock domains through a handshake with two-flop-style latency
/// measured in fabric cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ElasticSpec {
    /// Maximum stall cycles a local clock may insert within one skew
    /// window (the window is `skew_bound + 1` fabric cycles long, and
    /// every clock ticks at least once per window). Zero means every
    /// controller ticks every fabric cycle.
    pub skew_bound: u32,
    /// Handshake latency in fabric cycles before a latched completion
    /// becomes visible to *other* clock domains. Zero means combinational
    /// cross-domain visibility — the synchronous semantics.
    pub sync_latency: u32,
}

impl Default for ElasticSpec {
    fn default() -> Self {
        ElasticSpec {
            skew_bound: 1,
            sync_latency: 1,
        }
    }
}

impl ElasticSpec {
    /// The degenerate spec: no skew, no handshake latency. An elastic run
    /// under this spec is bisimilar to the distributed style cycle for
    /// cycle.
    pub fn zero() -> Self {
        ElasticSpec {
            skew_bound: 0,
            sync_latency: 0,
        }
    }

    /// The skew-window length in fabric cycles.
    pub fn period(&self) -> u32 {
        self.skew_bound + 1
    }
}

/// The clock-domain state of a run, alongside the [`CompletionFabric`]:
/// which controller local clocks tick on which fabric cycle, and when a
/// latched completion becomes visible across domains.
///
/// The synchronous styles (DIST / CENT / CENT-SYNC) are the degenerate
/// one-domain case: every controller ticks every cycle and visibility is
/// combinational, so for them the fabric is pure bookkeeping with no
/// behavioral effect.
#[derive(Clone, Debug)]
pub struct ClockFabric {
    spec: ElasticSpec,
    skew_seed: u64,
    synchronous: bool,
    saturated: bool,
    /// Per-op fabric cycle at which the latched completion becomes
    /// visible to other clock domains (`usize::MAX` = not latched yet).
    visible_at: Vec<usize>,
}

impl ClockFabric {
    /// The one-domain fabric of the synchronous styles: every controller
    /// ticks every cycle, cross-domain visibility is combinational.
    pub fn synchronous(num_ops: usize) -> Self {
        ClockFabric {
            spec: ElasticSpec::zero(),
            skew_seed: 0,
            synchronous: true,
            saturated: false,
            visible_at: vec![usize::MAX; num_ops],
        }
    }

    /// A multi-domain fabric: one local clock per controller, stall
    /// schedules drawn deterministically from `skew_seed`.
    pub fn elastic(num_ops: usize, spec: ElasticSpec, skew_seed: u64) -> Self {
        ClockFabric {
            spec,
            skew_seed,
            synchronous: false,
            saturated: false,
            visible_at: vec![usize::MAX; num_ops],
        }
    }

    /// The worst schedule in `spec`'s schedule space: every controller
    /// stalls the full `skew_bound` in every window, ticking only on the
    /// window's last cycle. Stalls delay events monotonically, so this
    /// fabric bounds every seeded schedule from above — it backs the
    /// schedule-independent `worst` cell of elastic latency summaries.
    pub fn elastic_saturated(num_ops: usize, spec: ElasticSpec) -> Self {
        ClockFabric {
            spec,
            skew_seed: 0,
            synchronous: false,
            saturated: true,
            visible_at: vec![usize::MAX; num_ops],
        }
    }

    /// The spec this fabric was built from.
    pub fn spec(&self) -> &ElasticSpec {
        &self.spec
    }

    /// The stall count (leading skipped ticks) of controller `ctrl` in
    /// skew window `window`: a deterministic draw in `0..period`, so each
    /// clock ticks at least once per window. Public so the bit-sliced
    /// engine reproduces the exact same schedule per lane.
    pub fn window_stall(skew_seed: u64, ctrl: usize, window: usize, period: u32) -> u32 {
        let mixed = splitmix64_mix(
            skew_seed
                ^ (ctrl as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (window as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        (mixed % u64::from(period.max(1))) as u32
    }

    /// True when controller `ctrl`'s local clock ticks at fabric cycle
    /// `cycle` (cycles are 1-based, as in the kernel loop).
    pub fn ticks(&self, ctrl: usize, cycle: usize) -> bool {
        if self.synchronous || self.spec.skew_bound == 0 {
            return true;
        }
        let period = self.spec.period() as usize;
        let window = cycle.saturating_sub(1) / period;
        let pos = (cycle.saturating_sub(1) % period) as u32;
        if self.saturated {
            return pos >= self.spec.skew_bound;
        }
        pos >= Self::window_stall(self.skew_seed, ctrl, window, self.spec.period())
    }

    /// True when cross-domain completion visibility is combinational
    /// (same-cycle), which is the synchronous semantics.
    pub fn combinational(&self) -> bool {
        self.synchronous || self.spec.sync_latency == 0
    }

    /// Records the handshake start for `op`'s completion, latched at
    /// fabric cycle `at`: it becomes visible at `at + sync_latency`.
    pub fn on_latch(&mut self, op: OpId, at: usize) {
        if let Some(slot) = self.visible_at.get_mut(op.0) {
            *slot = (*slot).min(at + self.spec.sync_latency as usize);
        }
    }

    /// True when `op`'s latched completion has crossed the handshake and
    /// is visible to other clock domains at fabric cycle `cycle`.
    pub fn done_visible(&self, op: usize, cycle: usize) -> bool {
        self.visible_at.get(op).is_some_and(|&v| v <= cycle)
    }
}

/// One controller style on the kernel: the style owns its per-op
/// bookkeeping (start/completion cycles, busy counters, instance counts)
/// and tells the kernel how to drive it cycle by cycle.
pub trait ControlStyle<R: Rng> {
    /// True while the run has outstanding work. The kernel stops — and
    /// reports the final cycle count — as soon as this goes false.
    fn running(&self, fabric: &CompletionFabric) -> bool;

    /// Latches the completion of `op` at cycle `at`. Called by the kernel
    /// when a fault-deferred result latch comes due.
    fn latch(&mut self, fabric: &mut CompletionFabric, op: OpId, at: usize);

    /// Advances one cycle: sample completions, propagate pulses, commit.
    /// `cycle` is the current cycle number; step-walk styles that consume
    /// an extension half-cycle increment it in place.
    fn advance(
        &mut self,
        cycle: &mut usize,
        fabric: &mut CompletionFabric,
        rng: &mut R,
        config: &SimConfig,
    ) -> Result<(), SimError>;

    /// Snapshots the style's view of the run for an error report.
    fn diagnostics(
        &self,
        cycle: usize,
        reason: String,
        fabric: &CompletionFabric,
    ) -> Box<Diagnostics>;
}

/// The kernel loop: runs `style` to completion and returns the final
/// cycle count.
///
/// Per cycle, in order: watchdog check (against `max_cycles`), deferred
/// result latches coming due, then the style's [`ControlStyle::advance`].
/// Note the watchdog diagnostics snapshot the *previous* cycle's pulse
/// wavefront — the current cycle never sampled.
pub fn run<R: Rng, S: ControlStyle<R>>(
    style: &mut S,
    fabric: &mut CompletionFabric,
    rng: &mut R,
    config: &SimConfig,
    max_cycles: usize,
) -> Result<usize, SimError> {
    let mut cycle = 0usize;
    while style.running(fabric) {
        cycle += 1;
        if cycle > max_cycles {
            return Err(SimError::Deadlock(style.diagnostics(
                cycle,
                format!("no progress within the {max_cycles}-cycle watchdog budget"),
                fabric,
            )));
        }

        // Deferred result latches that come due this cycle (kept in
        // insertion order: downstream hazard accounting depends on it).
        let mut deferred = std::mem::take(&mut fabric.deferred);
        deferred.retain(|&(at, op)| {
            if at <= cycle {
                style.latch(fabric, op, at);
                false
            } else {
                true
            }
        });
        fabric.deferred = deferred;

        style.advance(&mut cycle, fabric, rng, config)?;
    }
    Ok(cycle)
}

/// Decodes a `C_CO(op)` completion-signal input name.
fn parse_cco(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("C_CO(")?;
    Some(
        rest.strip_suffix(')')
            .and_then(|s| s.parse().ok())
            .expect("completion signal name"),
    )
}

/// The style-specific residue of an FSM-driven engine; everything else
/// (sampling order, fixpoint, premature-latch oracle, commit, upsets)
/// lives in [`FsmStyle::advance`].
pub(crate) trait PulseHooks {
    /// Per-`Exec`-phase bookkeeping before the completion draw (start
    /// cycles, instance counts, producer-order protocol checks). An
    /// `Err(reason)` becomes a [`SimError::Desync`].
    fn exec(
        &mut self,
        fabric: &CompletionFabric,
        dfg: &Dfg,
        op: OpId,
        stage: u32,
        cycle: usize,
        faulty: bool,
    ) -> Result<(), String>;

    /// Operand values fed to the completion model for `op`.
    fn operands(&self, op: OpId) -> (i64, i64);

    /// Busy-cycle accounting for the unit executing `op`.
    fn busy(&mut self, fabric: &CompletionFabric, op: OpId, unit: usize);

    /// The *true* value of the `C_CO(p)` input as seen by a controller
    /// currently working toward `cur`, given the pulse wavefront (stuck-at
    /// overrides are layered on top by the kernel). `cycle` is the current
    /// fabric cycle — the elastic style needs it to decide handshake
    /// visibility; synchronous styles ignore it.
    fn cco(
        &self,
        fabric: &CompletionFabric,
        pulses: &OpSet,
        p: usize,
        cur: OpId,
        cycle: usize,
    ) -> bool;

    /// Whether controller `ctrl`'s local clock ticks at fabric cycle
    /// `cycle`. A controller that does not tick is completely frozen for
    /// the cycle: no phase decode, no completion draw, no busy
    /// accounting, no transition. Synchronous styles always tick; the
    /// elastic style stalls controllers inside their skew window and
    /// under `ClockSkew` faults.
    fn ticks(&self, _ctrl: usize, _cycle: usize, _faults: &FaultPlan) -> bool {
        true
    }

    /// True when a pulse for `op` must not latch again (already done).
    fn skip_latch(&self, fabric: &CompletionFabric, op: OpId) -> bool;

    /// Latches the completion of `op` at cycle `at`.
    fn latch(&mut self, fabric: &mut CompletionFabric, op: OpId, at: usize);

    /// True while the style has outstanding work.
    fn running(&self, fabric: &CompletionFabric) -> bool;

    /// Error-report snapshot.
    fn diagnostics(
        &self,
        bank: &FsmBank,
        fabric: &CompletionFabric,
        cycle: usize,
        reason: String,
    ) -> Box<Diagnostics>;
}

/// The controller FSMs of a run plus every per-cycle scratch buffer the
/// legacy engines used to reallocate each cycle.
pub(crate) struct FsmBank<'a> {
    /// `(unit index, controller)` in generation order.
    pub(crate) fsms: Vec<(usize, &'a Fsm)>,
    /// Current state of each controller.
    pub(crate) states: Vec<StateId>,
    /// The last fixpoint round's `(next state, asserted outputs)`.
    steps: Vec<(StateId, Vec<usize>)>,
    /// The op each controller's current state refers to.
    cur_op: Vec<OpId>,
    /// Sampled (fault-overlaid) unit completion signals.
    unit_completion: Vec<bool>,
    /// Where a stuck-at override contradicted the model draw: the truth.
    diverged: Vec<Option<bool>>,
}

impl<'a> FsmBank<'a> {
    pub(crate) fn new(cu: &'a DistributedControlUnit, num_units: usize) -> Self {
        let fsms: Vec<(usize, &Fsm)> = cu.controllers().iter().map(|(u, f)| (u.0, f)).collect();
        let states: Vec<StateId> = fsms.iter().map(|(_, f)| f.initial()).collect();
        let n = fsms.len();
        FsmBank {
            fsms,
            states,
            steps: Vec::with_capacity(n),
            cur_op: vec![OpId(0); n],
            unit_completion: vec![false; num_units],
            diverged: vec![None; num_units],
        }
    }

    /// Per-controller state snapshots for a [`Diagnostics`] record.
    pub(crate) fn snapshots(&self) -> Vec<ControllerSnapshot> {
        crate::distributed::controller_snapshots(&self.fsms, &self.states)
    }

    /// The component state names joined with `.` — the composite state
    /// name of the equivalent product controller.
    pub(crate) fn composite_state(&self) -> String {
        self.fsms
            .iter()
            .zip(&self.states)
            .map(|((_, f), &st)| {
                f.state_name_opt(st)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("<invalid:{}>", st.0))
            })
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// An FSM-driven controller style on the kernel: the shared cycle body
/// (sampling → fixpoint → premature-latch oracle → commit → upsets) over
/// a [`FsmBank`], parameterized by [`PulseHooks`].
pub(crate) struct FsmStyle<'a, H> {
    pub(crate) bank: FsmBank<'a>,
    pub(crate) hooks: H,
    pub(crate) dfg: &'a Dfg,
    pub(crate) model: &'a CompletionModel,
}

impl<R: Rng, H: PulseHooks> ControlStyle<R> for FsmStyle<'_, H> {
    fn running(&self, fabric: &CompletionFabric) -> bool {
        self.hooks.running(fabric)
    }

    fn latch(&mut self, fabric: &mut CompletionFabric, op: OpId, at: usize) {
        self.hooks.latch(fabric, op, at);
    }

    fn diagnostics(
        &self,
        cycle: usize,
        reason: String,
        fabric: &CompletionFabric,
    ) -> Box<Diagnostics> {
        self.hooks.diagnostics(&self.bank, fabric, cycle, reason)
    }

    fn advance(
        &mut self,
        cycle: &mut usize,
        fabric: &mut CompletionFabric,
        rng: &mut R,
        config: &SimConfig,
    ) -> Result<(), SimError> {
        let FsmStyle {
            bank,
            hooks,
            dfg,
            model,
        } = self;
        let cycle = *cycle;
        let faults = &config.faults;
        let faulty = !faults.is_empty();

        // Completion sampling: units in an Exec phase draw the model once
        // (so the RNG stream only depends on controller states, never on
        // the fault plan), stuck-at overrides are layered on afterwards,
        // and `diverged` remembers any contradiction for the
        // premature-latch oracle below.
        bank.unit_completion.fill(false);
        bank.diverged.fill(None);
        for i in 0..bank.fsms.len() {
            // A controller whose local clock does not tick this fabric
            // cycle is completely frozen: it decodes no phase, draws no
            // completion, and holds its state through the fixpoint below.
            if !hooks.ticks(i, cycle, faults) {
                continue;
            }
            let (u, f) = bank.fsms[i];
            let st = bank.states[i];
            let name = match f.state_name_opt(st) {
                Some(name) => name,
                None => {
                    return Err(SimError::Desync(hooks.diagnostics(
                        bank,
                        fabric,
                        cycle,
                        format!("controller {} latched invalid state id {}", f.name(), st.0),
                    )))
                }
            };
            let phase = match crate::distributed::parse_phase(name) {
                Some(p) => p,
                None => {
                    return Err(SimError::UnknownState {
                        fsm: f.name().to_string(),
                        state: name.to_string(),
                    })
                }
            };
            use crate::distributed::Phase;
            bank.cur_op[i] = match phase {
                Phase::Exec(op, _) | Phase::Ready(op) => op,
            };
            if let Phase::Exec(op, stage) = phase {
                if let Err(reason) = hooks.exec(fabric, dfg, op, stage, cycle, faulty) {
                    return Err(SimError::Desync(
                        hooks.diagnostics(bank, fabric, cycle, reason),
                    ));
                }
                let node = dfg.op(op);
                let (lhs, rhs) = hooks.operands(op);
                let truth = model.completion(op, node.kind, lhs, rhs, rng);
                let eff = faults.stuck_completion(op, cycle).unwrap_or(truth);
                bank.unit_completion[u] = eff;
                if eff != truth {
                    bank.diverged[u] = Some(truth);
                }
                hooks.busy(fabric, op, u);
            }
        }

        // Fixpoint over same-cycle completion pulses (C_CO chains).
        // Spurious-pulse faults seed the wavefront; drop faults censor it.
        {
            let CompletionFabric {
                spur_buf,
                injected,
                pulses,
                ..
            } = &mut *fabric;
            spur_buf.clear();
            faults.spurious_at(cycle, spur_buf);
            injected.clear();
            for &op in spur_buf.iter() {
                injected.insert(op);
            }
            pulses.copy_from(injected);
        }
        for _round in 0..bank.fsms.len() + 2 {
            bank.steps.clear();
            {
                let CompletionFabric {
                    scratch, injected, ..
                } = &mut *fabric;
                scratch.copy_from(injected);
            }
            for i in 0..bank.fsms.len() {
                if !hooks.ticks(i, cycle, faults) {
                    bank.steps.push((bank.states[i], Vec::new()));
                    continue;
                }
                let (u, f) = bank.fsms[i];
                let st = bank.states[i];
                let cur = bank.cur_op[i];
                let h: &H = hooks;
                let fab: &CompletionFabric = fabric;
                let unit_completion = &bank.unit_completion;
                let step = f.try_step(st, |v| {
                    let name = &f.inputs()[v];
                    match parse_cco(name) {
                        Some(p) => match faults.stuck_completion(OpId(p), cycle) {
                            Some(forced) => forced,
                            None => h.cco(fab, &fab.pulses, p, cur, cycle),
                        },
                        // Own unit completion C_{name}.
                        None => unit_completion[u],
                    }
                });
                let (next, outs) = match step {
                    Ok(r) => r,
                    Err(e) => {
                        return Err(SimError::Desync(hooks.diagnostics(
                            bank,
                            fabric,
                            cycle,
                            format!("controller {} lost lockstep: {e}", f.name()),
                        )))
                    }
                };
                for &o in &outs {
                    if let Some(rest) = f.outputs()[o].strip_prefix("RE") {
                        let op = OpId(rest.parse::<usize>().expect("RE signal name"));
                        if !faults.drops_pulse(op, cycle) {
                            fabric.scratch.insert(op);
                        }
                    }
                }
                bank.steps.push((next, outs));
            }
            if fabric.scratch == fabric.pulses {
                break;
            }
            std::mem::swap(&mut fabric.pulses, &mut fabric.scratch);
        }

        // Premature-latch oracle: where a stuck-at override contradicted
        // the telescopic predictor, re-step the affected controller with
        // the *true* completion value. A result-enable pulse the override
        // emitted but the truth would not means the unit latched a result
        // that was not ready.
        if faulty {
            for i in 0..bank.fsms.len() {
                let (u, f) = bank.fsms[i];
                let st = bank.states[i];
                let Some(truth) = bank.diverged[u] else {
                    continue;
                };
                let cur = bank.cur_op[i];
                let h: &H = hooks;
                let fab: &CompletionFabric = fabric;
                let truth_step = f.try_step(st, |v| {
                    let name = &f.inputs()[v];
                    match parse_cco(name) {
                        Some(p) => h.cco(fab, &fab.pulses, p, cur, cycle),
                        None => truth,
                    }
                });
                let truth_outs = match truth_step {
                    Ok((_, outs)) => outs,
                    Err(_) => continue,
                };
                for &o in &bank.steps[i].1 {
                    if !truth_outs.contains(&o) && f.outputs()[o].starts_with("RE") {
                        return Err(SimError::Desync(hooks.diagnostics(
                            bank,
                            fabric,
                            cycle,
                            format!(
                                "unit {} latched {} before its true completion (stuck-at-short)",
                                u,
                                f.outputs()[o]
                            ),
                        )));
                    }
                }
            }
        }

        // Commit: advance states, latch completions (possibly deferred by
        // a DelayLatch fault), apply scheduled state-register upsets.
        for i in 0..bank.steps.len() {
            bank.states[i] = bank.steps[i].0;
        }
        let committed = std::mem::take(&mut fabric.pulses);
        for op in committed.iter() {
            if hooks.skip_latch(fabric, op) || fabric.deferred.iter().any(|&(_, d)| d == op) {
                continue;
            }
            let delay = faults.latch_delay(op, cycle);
            if delay == 0 {
                hooks.latch(fabric, op, cycle);
            } else {
                fabric.deferred.push((cycle + delay, op));
            }
        }
        fabric.pulses = committed;
        if faulty {
            for i in 0..bank.states.len() {
                if let Some(bit) = faults.flip_at(i, cycle) {
                    bank.states[i] = StateId(bank.states[i].0 ^ (1usize << bit));
                }
            }
        }
        Ok(())
    }
}

/// How a single-iteration FSM engine labels its diagnostics: one snapshot
/// per unit controller (distributed), or one composite snapshot naming
/// the product controller (centralized).
pub(crate) enum DiagMode {
    PerUnit,
    Composite(String),
}

/// Hooks for the single-iteration engines (distributed and centralized):
/// done latches live in the fabric, completion semantics are
/// latched-pulse (`done || pulse`), and busy cycles are counted per unit.
pub(crate) struct SingleIterHooks<'a> {
    pub(crate) bound: &'a BoundDfg,
    /// Precomputed operand values per op (model draws are RNG-neutral in
    /// the operands, so this is exactly the legacy closure's values).
    pub(crate) operand_values: Vec<(i64, i64)>,
    pub(crate) completion_cycle: Vec<usize>,
    pub(crate) start_cycle: Vec<usize>,
    pub(crate) unit_busy: Vec<usize>,
    pub(crate) diag: DiagMode,
}

impl<'a> SingleIterHooks<'a> {
    pub(crate) fn new(
        bound: &'a BoundDfg,
        operand_values: Vec<(i64, i64)>,
        diag: DiagMode,
    ) -> Self {
        let n = bound.dfg().num_ops();
        let num_units = bound.allocation().units().len();
        SingleIterHooks {
            bound,
            operand_values,
            completion_cycle: vec![0; n],
            start_cycle: vec![0; n],
            unit_busy: vec![0; num_units],
            diag,
        }
    }
}

/// Builds the single-iteration diagnostics snapshot (shared between the
/// hook impl and the entry functions' post-run invariant check).
pub(crate) fn single_iter_diagnostics(
    diag: &DiagMode,
    bank: &FsmBank,
    fabric: &CompletionFabric,
    cycle: usize,
    reason: String,
) -> Box<Diagnostics> {
    let n = fabric.done.len;
    Box::new(Diagnostics {
        cycle,
        reason,
        controllers: match diag {
            DiagMode::PerUnit => bank.snapshots(),
            DiagMode::Composite(name) => vec![ControllerSnapshot {
                unit: 0,
                fsm: name.clone(),
                state: bank.composite_state(),
            }],
        },
        done: (0..n).map(|i| fabric.done.contains(OpId(i))).collect(),
        outstanding: fabric.done.complement().collect(),
        pulses: fabric.pulses.iter().map(|o| o.0).collect(),
    })
}

impl PulseHooks for SingleIterHooks<'_> {
    fn exec(
        &mut self,
        fabric: &CompletionFabric,
        dfg: &Dfg,
        op: OpId,
        stage: u32,
        cycle: usize,
        _faulty: bool,
    ) -> Result<(), String> {
        if stage == 0 && self.start_cycle[op.0] == 0 {
            self.start_cycle[op.0] = cycle;
        }
        // Protocol invariant: all predecessors latched their results
        // before a consumer occupies its unit. Faults (stuck-at-short
        // consumer reads, delayed latches, state flips) break exactly
        // this, so it is checked on every execution cycle, not just in
        // debug builds.
        if let Some(p) = dfg.preds(op).iter().find(|p| !fabric.done.contains(**p)) {
            return Err(format!("{op} fired before its producer {p} completed"));
        }
        Ok(())
    }

    fn operands(&self, op: OpId) -> (i64, i64) {
        self.operand_values[op.0]
    }

    fn busy(&mut self, fabric: &CompletionFabric, op: OpId, unit: usize) {
        // Wrap-around re-executions of already-done operations (the
        // controller loops for repetitive DFG execution, but we measure a
        // single iteration) are not busy work.
        if !fabric.done.contains(op) {
            self.unit_busy[unit] += 1;
        }
    }

    fn cco(
        &self,
        fabric: &CompletionFabric,
        pulses: &OpSet,
        p: usize,
        _cur: OpId,
        _cycle: usize,
    ) -> bool {
        fabric.done.contains(OpId(p)) || pulses.contains(OpId(p))
    }

    fn skip_latch(&self, fabric: &CompletionFabric, op: OpId) -> bool {
        fabric.done.contains(op)
    }

    fn latch(&mut self, fabric: &mut CompletionFabric, op: OpId, at: usize) {
        if !fabric.done.contains(op) {
            fabric.mark_done(op);
            self.completion_cycle[op.0] = at;
        }
    }

    fn running(&self, fabric: &CompletionFabric) -> bool {
        fabric.done_count < self.bound.dfg().num_ops() || !fabric.deferred.is_empty()
    }

    fn diagnostics(
        &self,
        bank: &FsmBank,
        fabric: &CompletionFabric,
        cycle: usize,
        reason: String,
    ) -> Box<Diagnostics> {
        single_iter_diagnostics(&self.diag, bank, fabric, cycle, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opset_insert_contains_iter_ascending() {
        let mut s = OpSet::new(130);
        for id in [129, 0, 64, 63, 65, 0] {
            s.insert(OpId(id));
        }
        assert!(s.contains(OpId(0)) && s.contains(OpId(129)));
        assert!(!s.contains(OpId(1)));
        assert_eq!(s.count(), 5);
        let got: Vec<usize> = s.iter().map(|o| o.0).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 129]);
    }

    #[test]
    fn opset_ignores_out_of_range() {
        let mut s = OpSet::new(10);
        s.insert(OpId(10));
        s.insert(OpId(1000));
        assert_eq!(s.count(), 0);
        assert!(!s.contains(OpId(1000)));
    }

    #[test]
    fn opset_complement_walks_the_difference() {
        let mut s = OpSet::new(70);
        for id in [0, 2, 69] {
            s.insert(OpId(id));
        }
        let missing: Vec<usize> = s.complement().collect();
        assert_eq!(missing.len(), 67);
        assert_eq!(missing[0], 1);
        assert_eq!(missing[1], 3);
        assert_eq!(*missing.last().unwrap(), 68);
        // Full set -> empty complement, bounded by the universe.
        let mut full = OpSet::new(70);
        for id in 0..70 {
            full.insert(OpId(id));
        }
        assert_eq!(full.complement().count(), 0);
    }

    #[test]
    fn fabric_done_count_is_idempotent() {
        let mut f = CompletionFabric::new(8);
        f.mark_done(OpId(3));
        f.mark_done(OpId(3));
        assert_eq!(f.done_count, 1);
        assert!(f.done().contains(OpId(3)));
    }
}
