//! Bit-sliced execution: up to 64 Monte-Carlo trials per `u64` word.
//!
//! The scalar engines in this crate advance one trial at a time, paying
//! the full controller-stepping cost (transition filtering, guard
//! evaluation through string-keyed input closures, per-step output
//! clones) once per trial per cycle. This module transposes the data:
//! trial `t` of a batch lives in bit position `t` of every word, so one
//! word-wide guard evaluation advances up to [`LANES`] trials at once —
//! the same transposed-bit-plane trick used by bit-parallel fault
//! simulators.
//!
//! # Contract
//!
//! The sliced engine is **bit-identical to the scalar kernel, per lane**:
//! for every trial it either produces exactly the [`SimResult`] the
//! scalar engine would (same RNG stream, same fault overlay, same cycle
//! accounting) or reports [`LaneOutcome::Fallback`], meaning the caller
//! must re-run that trial through the scalar engine. Every condition the
//! scalar engine reports as a [`crate::SimError`] — deadlock, desync,
//! premature latch, invalid config — falls back, because those paths
//! carry `Diagnostics` snapshots only the scalar engine can produce.
//! Fallback is always sound: the scalar re-run *is* the oracle, so
//! over-falling-back can cost speed but never correctness.
//!
//! # Layout
//!
//! * Completion state (`done`, `pulses`, `injected`, `scratch`) is one
//!   `u64` per op: bit `t` = trial `t`.
//! * Per-trial scalar quantities (`start_cycle`, `completion_cycle`,
//!   `unit_busy`) are stride-64 arrays indexed `op * 64 + t`.
//! * Controller state is an *occupancy list* per controller: `(state,
//!   lane mask)` groups, rebuilt each cycle from the transitions taken.
//!   Lanes sharing a state share one guard evaluation.
//!
//! Faults are whole-word overlays with per-lane masks
//! ([`LaneConfigs`]), applied after the completion-model draws exactly
//! like the scalar kernel, so RNG streams stay plan-independent.

use crate::distributed::{operand_values, parse_phase, Phase};
use crate::fault::SimConfig;
use crate::kernel::{ClockFabric, ElasticSpec};
use crate::model::CompletionModel;
use crate::pipeline::PipelinedResult;
use crate::result::SimResult;
use rand::rngs::StdRng;
use rand::Rng;
use tauhls_dfg::{OpId, TaubmDfg};
use tauhls_fsm::{DistributedControlUnit, StateId};
use tauhls_logic::Expr;
use tauhls_sched::BoundDfg;

/// Maximum trials per sliced run: one per bit of a `u64`.
pub const LANES: usize = 64;

/// Outcome of one lane (trial) of a sliced single-iteration run.
#[derive(Clone, Debug, PartialEq)]
pub enum LaneOutcome {
    /// The lane completed; the result is bit-identical to the scalar
    /// engine's for the same trial RNG and config.
    Done(SimResult),
    /// The lane hit a condition the scalar engine reports as a
    /// [`crate::SimError`] (or one the sliced engine cannot represent);
    /// re-run the trial through the scalar engine to recover the error's
    /// `Diagnostics` — or its result, when the sliced engine merely
    /// declined the case.
    Fallback,
}

/// Outcome of one lane of a sliced pipelined (multi-iteration) run.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelinedLaneOutcome {
    /// The lane completed, bit-identical to
    /// [`crate::simulate_pipelined_with`].
    Done(PipelinedResult),
    /// Re-run this trial through the scalar pipelined engine.
    Fallback,
}

/// Completion models per lane: one shared model (the common batch case)
/// or one model per lane (coupled-table comparisons, resilience sweeps).
#[derive(Clone, Copy, Debug)]
pub enum LaneModels<'a> {
    /// Every lane draws from the same model.
    Shared(&'a CompletionModel),
    /// Lane `t` draws from `models[t]`; the slice length must equal the
    /// number of RNG lanes passed to the run.
    PerLane(&'a [CompletionModel]),
}

impl LaneModels<'_> {
    /// Lanes whose model fails [`CompletionModel::validate`] (the scalar
    /// engine reports `InvalidConfig` for them — they fall back).
    fn invalid_mask(&self, num_ops: usize, lanes: usize) -> u64 {
        match self {
            LaneModels::Shared(m) => {
                if m.validate(num_ops).is_err() {
                    lane_mask(lanes)
                } else {
                    0
                }
            }
            LaneModels::PerLane(ms) => {
                let mut bad = 0u64;
                for (t, m) in ms.iter().enumerate().take(lanes) {
                    if m.validate(num_ops).is_err() {
                        bad |= 1u64 << t;
                    }
                }
                bad
            }
        }
    }

    /// Draws/computes the completion word for `op` over the lanes in `w`,
    /// consuming per-lane RNG draws exactly where the scalar model would.
    fn truth_word(
        &self,
        op: OpId,
        kind: tauhls_dfg::OpKind,
        lhs: i64,
        rhs: i64,
        w: u64,
        rngs: &mut [StdRng],
    ) -> u64 {
        match self {
            LaneModels::Shared(CompletionModel::AlwaysShort) => w,
            LaneModels::Shared(CompletionModel::AlwaysLong) => 0,
            LaneModels::Shared(CompletionModel::Table(t)) => {
                if t[op.0] {
                    w
                } else {
                    0
                }
            }
            LaneModels::Shared(CompletionModel::OperandDriven(lib)) => {
                if lib.completion(kind, lhs, rhs).unwrap_or(true) {
                    w
                } else {
                    0
                }
            }
            LaneModels::Shared(CompletionModel::Bernoulli { p }) => {
                let mut out = 0u64;
                for t in BitIter(w) {
                    if rngs[t].random_bool(*p) {
                        out |= 1u64 << t;
                    }
                }
                out
            }
            LaneModels::PerLane(ms) => {
                let mut out = 0u64;
                for t in BitIter(w) {
                    if ms[t].completion(op, kind, lhs, rhs, &mut rngs[t]) {
                        out |= 1u64 << t;
                    }
                }
                out
            }
        }
    }
}

/// Fault/watchdog configurations per lane: shared (typical batches) or
/// one [`SimConfig`] per lane (resilience sweeps injecting a different
/// plan into every trial).
#[derive(Clone, Copy, Debug)]
pub enum LaneConfigs<'a> {
    /// Every lane runs under the same configuration.
    Shared(&'a SimConfig),
    /// Lane `t` runs under `configs[t]`; the slice length must equal the
    /// number of RNG lanes.
    PerLane(&'a [SimConfig]),
}

impl LaneConfigs<'_> {
    fn cfg(&self, t: usize) -> &SimConfig {
        match self {
            LaneConfigs::Shared(c) => c,
            LaneConfigs::PerLane(cs) => &cs[t],
        }
    }

    /// Lanes with a non-empty fault plan.
    fn faulty_mask(&self, lanes: usize) -> u64 {
        match self {
            LaneConfigs::Shared(c) => {
                if c.faults.is_empty() {
                    0
                } else {
                    lane_mask(lanes)
                }
            }
            LaneConfigs::PerLane(cs) => {
                let mut m = 0u64;
                for (t, c) in cs.iter().enumerate().take(lanes) {
                    if !c.faults.is_empty() {
                        m |= 1u64 << t;
                    }
                }
                m
            }
        }
    }

    /// `(forced-short, forced-long)` lane masks for `op`'s completion
    /// signal at `cycle`, restricted to `w`.
    fn stuck_masks_at(&self, faulty: u64, op: OpId, cycle: usize, w: u64) -> (u64, u64) {
        let fw = faulty & w;
        if fw == 0 {
            return (0, 0);
        }
        match self {
            LaneConfigs::Shared(c) => match c.faults.stuck_completion(op, cycle) {
                Some(true) => (fw, 0),
                Some(false) => (0, fw),
                None => (0, 0),
            },
            LaneConfigs::PerLane(cs) => {
                let (mut s, mut l) = (0u64, 0u64);
                for t in BitIter(fw) {
                    match cs[t].faults.stuck_completion(op, cycle) {
                        Some(true) => s |= 1u64 << t,
                        Some(false) => l |= 1u64 << t,
                        None => {}
                    }
                }
                (s, l)
            }
        }
    }

    /// Lanes in `w` whose plan drops a pulse for `op` at `cycle`.
    fn drop_mask_at(&self, faulty: u64, op: OpId, cycle: usize, w: u64) -> u64 {
        let fw = faulty & w;
        if fw == 0 {
            return 0;
        }
        match self {
            LaneConfigs::Shared(c) => {
                if c.faults.drops_pulse(op, cycle) {
                    fw
                } else {
                    0
                }
            }
            LaneConfigs::PerLane(cs) => {
                let mut m = 0u64;
                for t in BitIter(fw) {
                    if cs[t].faults.drops_pulse(op, cycle) {
                        m |= 1u64 << t;
                    }
                }
                m
            }
        }
    }

    /// ORs spurious-pulse lane bits for `cycle` into `injected` (indexed
    /// by op), restricted to `w`. `buf` is a reusable query buffer.
    fn spurious_into(
        &self,
        faulty: u64,
        cycle: usize,
        w: u64,
        buf: &mut Vec<OpId>,
        injected: &mut [u64],
    ) {
        let fw = faulty & w;
        if fw == 0 {
            return;
        }
        match self {
            LaneConfigs::Shared(c) => {
                buf.clear();
                c.faults.spurious_at(cycle, buf);
                for &op in buf.iter() {
                    if op.0 < injected.len() {
                        injected[op.0] |= fw;
                    }
                }
            }
            LaneConfigs::PerLane(cs) => {
                for t in BitIter(fw) {
                    buf.clear();
                    cs[t].faults.spurious_at(cycle, buf);
                    for &op in buf.iter() {
                        if op.0 < injected.len() {
                            injected[op.0] |= 1u64 << t;
                        }
                    }
                }
            }
        }
    }

    /// Lanes in `w` whose plan freezes `controller`'s local clock at
    /// `cycle` (the `ClockSkew` kind — consulted by the elastic engine
    /// only, exactly like the scalar hooks).
    fn clock_stall_at(&self, faulty: u64, controller: usize, cycle: usize, w: u64) -> u64 {
        let fw = faulty & w;
        if fw == 0 {
            return 0;
        }
        match self {
            LaneConfigs::Shared(c) => {
                if c.faults.clock_stalled(controller, cycle) {
                    fw
                } else {
                    0
                }
            }
            LaneConfigs::PerLane(cs) => {
                let mut m = 0u64;
                for t in BitIter(fw) {
                    if cs[t].faults.clock_stalled(controller, cycle) {
                        m |= 1u64 << t;
                    }
                }
                m
            }
        }
    }

    /// Partitions `w` by latch delay for `op` at `cycle` into
    /// `(delay, lane mask)` groups (delay 0 latches immediately).
    fn latch_groups_at(
        &self,
        faulty: u64,
        op: OpId,
        cycle: usize,
        w: u64,
        out: &mut Vec<(usize, u64)>,
    ) {
        out.clear();
        let fw = faulty & w;
        if fw == 0 {
            if w != 0 {
                out.push((0, w));
            }
            return;
        }
        match self {
            LaneConfigs::Shared(c) => {
                out.push((c.faults.latch_delay(op, cycle), w));
            }
            LaneConfigs::PerLane(cs) => {
                if w & !fw != 0 {
                    out.push((0, w & !fw));
                }
                for t in BitIter(fw) {
                    let d = cs[t].faults.latch_delay(op, cycle);
                    if let Some(e) = out.iter_mut().find(|e| e.0 == d) {
                        e.1 |= 1u64 << t;
                    } else {
                        out.push((d, 1u64 << t));
                    }
                }
            }
        }
    }

    /// Partitions `w` by the state-register bit flipping in `controller`
    /// at `cycle` into `(bit, lane mask)` groups.
    fn flip_groups_at(
        &self,
        faulty: u64,
        controller: usize,
        cycle: usize,
        w: u64,
        out: &mut Vec<(u32, u64)>,
    ) {
        out.clear();
        let fw = faulty & w;
        if fw == 0 {
            return;
        }
        match self {
            LaneConfigs::Shared(c) => {
                if let Some(bit) = c.faults.flip_at(controller, cycle) {
                    out.push((bit, fw));
                }
            }
            LaneConfigs::PerLane(cs) => {
                for t in BitIter(fw) {
                    if let Some(bit) = cs[t].faults.flip_at(controller, cycle) {
                        if let Some(e) = out.iter_mut().find(|e| e.0 == bit) {
                            e.1 |= 1u64 << t;
                        } else {
                            out.push((bit, 1u64 << t));
                        }
                    }
                }
            }
        }
    }

    /// Per-lane watchdog budgets for an `n`-op DFG.
    fn budgets(&self, n: usize, iterations: usize, lanes: usize, out: &mut Vec<usize>) {
        out.clear();
        match self {
            LaneConfigs::Shared(c) => out.resize(lanes, c.budget(n, iterations)),
            LaneConfigs::PerLane(cs) => {
                out.extend(cs.iter().take(lanes).map(|c| c.budget(n, iterations)));
            }
        }
    }
}

/// Mask with the low `lanes` bits set.
fn lane_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Iterator over the set bit positions of a word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let t = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(t)
        }
    }
}

/// Evaluates a guard over word-valued inputs: each variable is a 64-lane
/// word, logic ops become bitwise ops.
fn eval_word(e: &Expr, inputs: &[u64]) -> u64 {
    match e {
        Expr::Const(b) => {
            if *b {
                !0
            } else {
                0
            }
        }
        Expr::Var(v) => inputs[*v],
        Expr::Not(x) => !eval_word(x, inputs),
        Expr::And(xs) => xs.iter().fold(!0, |a, x| a & eval_word(x, inputs)),
        Expr::Or(xs) => xs.iter().fold(0, |a, x| a | eval_word(x, inputs)),
    }
}

/// What a controller input means, decoded once at compile time (the
/// scalar kernel re-parses the `C_CO(op)` name on every guard probe).
enum InKind {
    /// `C_CO(p)`: completion of op `p` as seen by this controller.
    Cco(usize),
    /// The controller's own unit-completion signal.
    Own,
}

/// A compiled transition: guard and outputs borrowed from the FSM, with
/// the `RE{op}` result-enable ids pre-parsed.
struct CTrans<'a> {
    to: usize,
    guard: &'a Expr,
    outs: &'a [usize],
    /// Parsed op ids of the `RE{op}` outputs among `outs`.
    res: Vec<usize>,
}

/// A compiled controller: per-state phases and transitions grouped by
/// source state (preserving the FSM's global transition order, which is
/// the order the scalar `try_step` scan observes).
struct CCtrl<'a> {
    unit: usize,
    inputs: Vec<InKind>,
    out_is_re: Vec<bool>,
    phases: Vec<Option<Phase>>,
    trans: Vec<Vec<CTrans<'a>>>,
    initial: usize,
}

/// Compiles the control unit's FSMs, or `None` when any construct falls
/// outside what the word engine models (malformed signal names, guards
/// over undeclared inputs). `None` sends every lane to scalar fallback,
/// which reproduces the scalar engine's behaviour — including its
/// documented panics on malformed generated controllers — exactly.
fn compile(cu: &DistributedControlUnit) -> Option<Vec<CCtrl<'_>>> {
    let mut out = Vec::with_capacity(cu.controllers().len());
    for (u, f) in cu.controllers() {
        let mut inputs = Vec::with_capacity(f.inputs().len());
        for name in f.inputs() {
            if let Some(rest) = name.strip_prefix("C_CO(") {
                inputs.push(InKind::Cco(rest.strip_suffix(')')?.parse().ok()?));
            } else {
                inputs.push(InKind::Own);
            }
        }
        let mut out_is_re = Vec::with_capacity(f.outputs().len());
        let mut re_op: Vec<Option<usize>> = Vec::with_capacity(f.outputs().len());
        for name in f.outputs() {
            out_is_re.push(name.starts_with("RE"));
            re_op.push(match name.strip_prefix("RE") {
                Some(rest) => Some(rest.parse().ok()?),
                None => None,
            });
        }
        let phases = (0..f.num_states())
            .map(|s| f.state_name_opt(StateId(s)).and_then(parse_phase))
            .collect();
        let mut trans: Vec<Vec<CTrans>> = (0..f.num_states()).map(|_| Vec::new()).collect();
        for t in f.transitions() {
            if t.guard.variables().iter().any(|&v| v >= f.inputs().len()) {
                return None;
            }
            // Transitions from an out-of-range state can never fire; the
            // target state may be anything (the scalar engine only
            // validates it when it is *entered*, and so do we).
            if let Some(bucket) = trans.get_mut(t.from.0) {
                bucket.push(CTrans {
                    to: t.to.0,
                    guard: &t.guard,
                    outs: &t.outputs,
                    res: t
                        .outputs
                        .iter()
                        .filter_map(|&o| re_op.get(o).copied().flatten())
                        .collect(),
                });
            }
        }
        out.push(CCtrl {
            unit: u.0,
            inputs,
            out_is_re,
            phases,
            trans,
            initial: f.initial().0,
        });
    }
    Some(out)
}

/// One agenda entry: a group of lanes sharing a controller state this
/// cycle, with the op that state refers to (the `cur` of the scalar
/// kernel's hooks).
struct Agenda {
    st: usize,
    mask: u64,
    op: OpId,
}

/// All engine buffers, held by [`SlicedSim`] so a worker reuses them
/// across chunks (the scratch/arena-reuse contract of the batch runner).
#[derive(Default)]
struct Scratch {
    // Bit-planes indexed by op: bit `t` = trial `t`.
    done: Vec<u64>,
    pulses: Vec<u64>,
    injected: Vec<u64>,
    next: Vec<u64>,
    started: Vec<u64>,
    // Per-unit sampled completion words (and where faults contradicted
    // the model draw: `truth = completion ^ diverged`).
    unit_completion: Vec<u64>,
    unit_diverged: Vec<u64>,
    // Stride-64 per-trial values: index `op * 64 + t` / `unit * 64 + t`.
    completion_cycle: Vec<usize>,
    start_cycle: Vec<usize>,
    unit_busy: Vec<usize>,
    done_count: Vec<u32>,
    // Deferred result latches: `(due cycle, op, lane mask)`; all lanes in
    // one entry share the due cycle, so entries retire wholly, in
    // insertion order — each lane sees exactly its scalar deferred list.
    deferred: Vec<(usize, usize, u64)>,
    due: Vec<(usize, usize, u64)>,
    occupancy: Vec<Vec<(usize, u64)>>,
    agenda: Vec<Vec<Agenda>>,
    taken: Vec<Vec<(usize, usize, u64)>>,
    input_words: Vec<u64>,
    ev: Vec<u64>,
    tev: Vec<u64>,
    lg: Vec<(usize, u64)>,
    flips: Vec<(u32, u64)>,
    budgets: Vec<usize>,
    fin_cycle: Vec<usize>,
    spur: Vec<OpId>,
    // Pipelined-mode per-trial instance counts.
    starts: Vec<usize>,
    completions: Vec<usize>,
    iter_end: Vec<usize>,
    war: Vec<Vec<(OpId, usize)>>,
    at_target: Vec<u32>,
    // Cent-sync per-lane cycle counters and per-step draw words.
    cyc: Vec<usize>,
    short_w: Vec<u64>,
    truth_w: Vec<u64>,
    // Elastic-mode planes: cross-domain completion visibility per op,
    // a `sync_latency`-deep ring of pending handshakes (`slot * n + op`),
    // per-controller tick words (`ctrl * period + pos`, rebuilt each skew
    // window), the tick word of the current cycle per controller, stall
    // bucketing scratch, and held `(state, lanes)` groups of controllers
    // whose local clock did not tick this cycle.
    visible: Vec<u64>,
    vis_ring: Vec<u64>,
    tick_masks: Vec<u64>,
    tick_now: Vec<u64>,
    stall_buckets: Vec<u64>,
    held: Vec<Vec<(usize, u64)>>,
}

fn reset_words(v: &mut Vec<u64>, len: usize) {
    v.clear();
    v.resize(len, 0);
}

fn reset_usize(v: &mut Vec<usize>, len: usize) {
    v.clear();
    v.resize(len, 0);
}

/// Single-iteration latch of `op` for the lanes in `m` at cycle `at`.
/// Takes the scratch fields it touches as separate slices (not `&mut
/// Scratch`) so callers can hold disjoint borrows of the rest. Returns
/// the freshly latched lanes (first latch only) — the elastic caller
/// starts the cross-domain handshake exactly for those.
#[allow(clippy::too_many_arguments)]
fn latch_single(
    op: usize,
    m: u64,
    at: usize,
    n: usize,
    done: &mut [u64],
    completion_cycle: &mut [usize],
    done_count: &mut [u32],
    lanes_incomplete: &mut u64,
) -> u64 {
    let upd = m & !done[op];
    done[op] |= upd;
    for t in BitIter(upd) {
        completion_cycle[op * 64 + t] = at;
        done_count[t] += 1;
        if done_count[t] as usize == n {
            *lanes_incomplete &= !(1u64 << t);
        }
    }
    upd
}

/// Pipelined latch of `op` for the lanes in `m` at cycle `at`: WAR-hazard
/// bookkeeping, instance counts, iteration-end accounting — the scalar
/// `PipelinedHooks::latch`, per lane.
#[allow(clippy::too_many_arguments)]
fn latch_piped(
    op: usize,
    m: u64,
    at: usize,
    n: usize,
    iterations: usize,
    bound: &BoundDfg,
    starts: &[usize],
    completions: &mut [usize],
    iter_end: &mut [usize],
    war: &mut [Vec<(OpId, usize)>],
    at_target: &mut [u32],
    lanes_incomplete: &mut u64,
) {
    for t in BitIter(m) {
        let k = completions[op * 64 + t];
        if k >= 1 && k < iterations {
            for c in bound.cross_unit_succs(OpId(op)) {
                if starts[c.0 * 64 + t] < k {
                    war[t].push((OpId(op), k));
                    break;
                }
            }
        }
        completions[op * 64 + t] += 1;
        let iter_done = completions[op * 64 + t];
        if iter_done <= iterations && (0..n).all(|o| completions[o * 64 + t] >= iter_done) {
            iter_end[t * iterations + (iter_done - 1)] = at;
        }
        if iter_done == iterations {
            at_target[t] += 1;
            if at_target[t] as usize == n {
                *lanes_incomplete &= !(1u64 << t);
            }
        }
    }
}

/// The word-parallel FSM cycle engine shared by the single-iteration
/// (distributed/centralized), elastic, and pipelined modes. Mirrors
/// `kernel::run` + `FsmStyle::advance` stage for stage; any lane that
/// would take a scalar error path is moved to the returned fallback
/// mask. Returns `(fallback, finished)` lane masks.
///
/// `elastic` carries the GALS clocking parameters and one skew seed per
/// lane; `None` is the synchronous (one-domain) case. With it set, each
/// controller's tick word gates sampling and transitions (held lanes keep
/// their state), and — when `sync_latency > 0` — `C_CO` reads switch from
/// the combinational `done | pulses` plane to the handshake-delayed
/// `visible` plane, exactly like the scalar `ElasticHooks`.
#[allow(clippy::too_many_arguments)]
fn fsm_engine(
    bound: &BoundDfg,
    ctrls: &[CCtrl<'_>],
    opvals: Option<&[(i64, i64)]>,
    iterations: Option<usize>,
    elastic: Option<(ElasticSpec, &[u64])>,
    models: &LaneModels<'_>,
    configs: &LaneConfigs<'_>,
    rngs: &mut [StdRng],
    scr: &mut Scratch,
) -> (u64, u64) {
    let dfg = bound.dfg();
    let n = dfg.num_ops();
    let nu = bound.allocation().units().len();
    let nc = ctrls.len();
    let lanes = rngs.len();
    let all = lane_mask(lanes);
    let piped = iterations.is_some();
    let iters = iterations.unwrap_or(1);
    // Elastic clocking parameters (identity values when synchronous).
    let period = elastic.map_or(1, |(s, _)| s.period() as usize);
    let lat = elastic.map_or(0, |(s, _)| s.sync_latency as usize);
    let skewed = period > 1;
    let vis_latched = lat > 0;

    let mut fallback = models.invalid_mask(n, lanes);
    let mut finished = 0u64;
    let faulty = configs.faulty_mask(lanes);
    configs.budgets(n, iters, lanes, &mut scr.budgets);
    if elastic.is_some() {
        // The scalar `elastic_budget` stretch, applied per lane.
        for b in scr.budgets.iter_mut() {
            *b = *b * period + lat * (n + 1);
        }
    }
    let min_budget = scr.budgets.iter().copied().min().unwrap_or(0);

    reset_words(&mut scr.done, n);
    reset_words(&mut scr.pulses, n);
    reset_words(&mut scr.injected, n);
    reset_words(&mut scr.next, n);
    reset_words(&mut scr.started, n);
    reset_words(&mut scr.unit_completion, nu);
    reset_words(&mut scr.unit_diverged, nu);
    reset_usize(&mut scr.completion_cycle, n * 64);
    reset_usize(&mut scr.start_cycle, n * 64);
    reset_usize(&mut scr.unit_busy, nu * 64);
    scr.done_count.clear();
    scr.done_count.resize(lanes, 0);
    scr.deferred.clear();
    reset_usize(&mut scr.fin_cycle, lanes);
    if elastic.is_some() {
        reset_words(&mut scr.visible, if vis_latched { n } else { 0 });
        reset_words(&mut scr.vis_ring, lat * n);
        reset_words(&mut scr.tick_masks, if skewed { nc * period } else { 0 });
        reset_words(&mut scr.tick_now, nc);
        scr.held.resize_with(nc, Vec::new);
        for h in scr.held.iter_mut() {
            h.clear();
        }
    }
    if piped {
        reset_usize(&mut scr.starts, n * 64);
        reset_usize(&mut scr.completions, n * 64);
        reset_usize(&mut scr.iter_end, lanes * iters);
        scr.war.resize_with(lanes, Vec::new);
        for w in scr.war.iter_mut() {
            w.clear();
        }
        scr.at_target.clear();
        scr.at_target.resize(lanes, 0);
    }
    scr.occupancy.resize_with(nc, Vec::new);
    scr.agenda.resize_with(nc, Vec::new);
    scr.taken.resize_with(nc, Vec::new);
    for (i, c) in ctrls.iter().enumerate() {
        scr.occupancy[i].clear();
        scr.occupancy[i].push((c.initial, all));
    }

    let mut lanes_incomplete = if n > 0 { all } else { 0 };
    let mut cycle = 0usize;
    loop {
        // Loop-top running check (the kernel's `while style.running`).
        // Single-iteration hooks stay running while deferred latches are
        // pending; the pipelined hooks only watch completion counts and
        // abandon still-deferred latches at loop exit.
        let defm = if piped {
            0
        } else {
            scr.deferred.iter().fold(0u64, |a, e| a | e.2)
        };
        let alive = all & !fallback & !finished;
        let still = (lanes_incomplete | defm) & alive;
        let newly = alive & !still;
        for t in BitIter(newly) {
            scr.fin_cycle[t] = cycle;
        }
        finished |= newly;
        if still == 0 {
            break;
        }
        cycle += 1;

        // Elastic: handshakes whose latency elapses this cycle become
        // visible (the `visible_at[op] <= cycle` check of the scalar
        // fabric, as a ring of word-planes).
        if vis_latched {
            let slot = (cycle % lat) * n;
            for op in 0..n {
                scr.visible[op] |= scr.vis_ring[slot + op];
                scr.vis_ring[slot + op] = 0;
            }
        }

        // Watchdog: a lane over budget is a scalar Deadlock -> fallback.
        let mut adv = still;
        if cycle > min_budget {
            let mut over = 0u64;
            for t in BitIter(still) {
                if cycle > scr.budgets[t] {
                    over |= 1u64 << t;
                }
            }
            fallback |= over;
            adv &= !over;
            if adv == 0 {
                continue;
            }
        }

        // Elastic: the per-controller tick words of this fabric cycle.
        // Stall schedules are redrawn once per skew window (the exact
        // `ClockFabric::window_stall` draw, per lane), then prefix-ORed
        // into one word per in-window position; `ClockSkew` fault stalls
        // are masked out on top, like the scalar `ElasticHooks::ticks`.
        if let Some((spec, skews)) = elastic {
            if skewed && (cycle - 1).is_multiple_of(period) {
                let window = (cycle - 1) / period;
                for i in 0..nc {
                    scr.stall_buckets.clear();
                    scr.stall_buckets.resize(period, 0);
                    for (t, &seed) in skews.iter().enumerate().take(lanes) {
                        let s = ClockFabric::window_stall(seed, i, window, spec.period()) as usize;
                        scr.stall_buckets[s] |= 1u64 << t;
                    }
                    let mut acc = 0u64;
                    for p in 0..period {
                        acc |= scr.stall_buckets[p];
                        scr.tick_masks[i * period + p] = acc;
                    }
                }
            }
            let pos = (cycle - 1) % period;
            for i in 0..nc {
                let base = if skewed {
                    scr.tick_masks[i * period + pos]
                } else {
                    all
                };
                scr.tick_now[i] = base & !configs.clock_stall_at(faulty, i, cycle, all);
            }
        }

        // Deferred result latches coming due, in insertion order.
        if !scr.deferred.is_empty() {
            scr.due.clear();
            scr.deferred.retain(|&(at, op, m)| {
                if at <= cycle {
                    scr.due.push((at, op, m));
                    false
                } else {
                    true
                }
            });
            for di in 0..scr.due.len() {
                let (at, op, m) = scr.due[di];
                let m = m & adv;
                if m == 0 {
                    continue;
                }
                if piped {
                    latch_piped(
                        op,
                        m,
                        at,
                        n,
                        iters,
                        bound,
                        &scr.starts,
                        &mut scr.completions,
                        &mut scr.iter_end,
                        &mut scr.war,
                        &mut scr.at_target,
                        &mut lanes_incomplete,
                    );
                } else {
                    let upd = latch_single(
                        op,
                        m,
                        at,
                        n,
                        &mut scr.done,
                        &mut scr.completion_cycle,
                        &mut scr.done_count,
                        &mut lanes_incomplete,
                    );
                    if vis_latched && upd != 0 {
                        // Handshake from the latch cycle: a deferred latch
                        // already past its visibility point is visible now
                        // (the scalar `min(visible_at, at + latency)`).
                        let v = at + lat;
                        if v <= cycle {
                            scr.visible[op] |= upd;
                        } else {
                            scr.vis_ring[(v % lat) * n + op] |= upd;
                        }
                    }
                }
            }
        }

        // --- advance: completion sampling ---------------------------
        for w in scr.unit_completion.iter_mut() {
            *w = 0;
        }
        for w in scr.unit_diverged.iter_mut() {
            *w = 0;
        }
        let mut any_diverged = false;
        for (i, c) in ctrls.iter().enumerate() {
            scr.agenda[i].clear();
            if elastic.is_some() {
                scr.held[i].clear();
            }
            for gi in 0..scr.occupancy[i].len() {
                let (st, om) = scr.occupancy[i][gi];
                let mut w = om & adv;
                if elastic.is_some() {
                    // Lanes whose local clock does not tick are frozen for
                    // the cycle: no phase decode, no draw, no transition —
                    // they re-enter the occupancy unchanged at commit.
                    let hold = w & !scr.tick_now[i];
                    if hold != 0 {
                        scr.held[i].push((st, hold));
                        w &= scr.tick_now[i];
                    }
                }
                if w == 0 {
                    continue;
                }
                let phase = match c.phases.get(st).copied().flatten() {
                    Some(p) => p,
                    None => {
                        // Invalid state id (flip fallout) or a state name
                        // outside the S/R convention: scalar Desync /
                        // UnknownState.
                        fallback |= w;
                        adv &= !w;
                        continue;
                    }
                };
                let op = match phase {
                    Phase::Exec(op, _) | Phase::Ready(op) => op,
                };
                if let Phase::Exec(op, stage) = phase {
                    // exec hook: start bookkeeping, producer-order check.
                    if piped {
                        if stage == 0 {
                            let mut viol = 0u64;
                            for t in BitIter(w) {
                                let idx = op.0 * 64 + t;
                                if scr.starts[idx] == scr.completions[idx] {
                                    scr.starts[idx] += 1;
                                    if faulty & (1u64 << t) != 0 {
                                        let k = scr.starts[idx];
                                        if dfg
                                            .preds(op)
                                            .iter()
                                            .any(|p| scr.completions[p.0 * 64 + t] < k)
                                        {
                                            viol |= 1u64 << t;
                                        }
                                    }
                                }
                            }
                            fallback |= viol;
                            adv &= !viol;
                            w &= !viol;
                        }
                    } else {
                        if stage == 0 {
                            let upd = w & !scr.started[op.0];
                            scr.started[op.0] |= upd;
                            for t in BitIter(upd) {
                                scr.start_cycle[op.0 * 64 + t] = cycle;
                            }
                        }
                        for p in dfg.preds(op) {
                            let viol = w & !scr.done[p.0];
                            if viol != 0 {
                                fallback |= viol;
                                adv &= !viol;
                                w &= !viol;
                            }
                        }
                    }
                    if w == 0 {
                        continue;
                    }
                    let node = dfg.op(op);
                    let (lhs, rhs) = match opvals {
                        Some(v) => v[op.0],
                        None => (0, 0),
                    };
                    let truth = models.truth_word(op, node.kind, lhs, rhs, w, rngs) & w;
                    let (s, l) = configs.stuck_masks_at(faulty, op, cycle, w);
                    let eff = (truth & !(s | l)) | s;
                    scr.unit_completion[c.unit] |= eff;
                    let div = (eff ^ truth) & w;
                    if div != 0 {
                        scr.unit_diverged[c.unit] |= div;
                        any_diverged = true;
                    }
                    if !piped {
                        let inc = w & !scr.done[op.0];
                        for t in BitIter(inc) {
                            scr.unit_busy[c.unit * 64 + t] += 1;
                        }
                    }
                }
                scr.agenda[i].push(Agenda { st, mask: w, op });
            }
        }

        // --- advance: pulse fixpoint --------------------------------
        for w in scr.injected.iter_mut() {
            *w = 0;
        }
        configs.spurious_into(faulty, cycle, adv, &mut scr.spur, &mut scr.injected);
        scr.pulses.copy_from_slice(&scr.injected);
        for _round in 0..nc + 2 {
            for tk in scr.taken.iter_mut() {
                tk.clear();
            }
            scr.next.copy_from_slice(&scr.injected);
            for (i, c) in ctrls.iter().enumerate() {
                for gi in 0..scr.agenda[i].len() {
                    let g = &scr.agenda[i][gi];
                    let (st, cur) = (g.st, g.op);
                    let w = g.mask & adv;
                    if w == 0 {
                        continue;
                    }
                    // Input words for this group (stuck overlays layered
                    // on top of the style's completion semantics).
                    scr.input_words.clear();
                    let mut compile_bad = false;
                    for ik in &c.inputs {
                        let word = match ik {
                            InKind::Cco(p) => {
                                let base = if piped {
                                    if *p >= n {
                                        // Scalar would index out of
                                        // bounds; send to scalar.
                                        compile_bad = true;
                                        0
                                    } else {
                                        let mut b = 0u64;
                                        for t in BitIter(w) {
                                            let needed = scr.completions[cur.0 * 64 + t] + 1;
                                            let have = scr.completions[p * 64 + t]
                                                + usize::from(scr.pulses[*p] & (1u64 << t) != 0);
                                            if have >= needed {
                                                b |= 1u64 << t;
                                            }
                                        }
                                        b
                                    }
                                } else if *p < n {
                                    if vis_latched {
                                        // Cross-domain transfer is latched:
                                        // only handshake-crossed completions
                                        // are visible, never pulses.
                                        scr.visible[*p]
                                    } else {
                                        scr.done[*p] | scr.pulses[*p]
                                    }
                                } else {
                                    0
                                };
                                let (s, l) = configs.stuck_masks_at(faulty, OpId(*p), cycle, w);
                                (base & !(s | l)) | s
                            }
                            InKind::Own => scr.unit_completion[c.unit],
                        };
                        scr.input_words.push(word);
                    }
                    if compile_bad {
                        fallback |= w;
                        adv &= !w;
                        continue;
                    }
                    let trs = &c.trans[st];
                    scr.ev.clear();
                    let (mut any, mut ov) = (0u64, 0u64);
                    for tr in trs {
                        let e = eval_word(tr.guard, &scr.input_words) & w;
                        ov |= any & e;
                        any |= e;
                        scr.ev.push(e);
                    }
                    // >1 enabled: scalar Nondeterministic; 0 enabled:
                    // scalar Incomplete — both Desync "lost lockstep".
                    let bad = ov | (w & !any);
                    if bad != 0 {
                        fallback |= bad;
                        adv &= !bad;
                    }
                    for (k, tr) in trs.iter().enumerate() {
                        let fw = scr.ev[k] & !bad;
                        if fw == 0 {
                            continue;
                        }
                        scr.taken[i].push((st, k, fw));
                        for &re in &tr.res {
                            if re < n {
                                let dm = configs.drop_mask_at(faulty, OpId(re), cycle, fw);
                                scr.next[re] |= fw & !dm;
                            }
                        }
                    }
                }
            }
            let converged = (0..n).all(|op| (scr.next[op] ^ scr.pulses[op]) & adv == 0);
            if converged {
                break;
            }
            std::mem::swap(&mut scr.pulses, &mut scr.next);
        }

        // --- advance: premature-latch oracle ------------------------
        if any_diverged {
            for (i, c) in ctrls.iter().enumerate() {
                let uw = scr.unit_diverged[c.unit];
                if uw == 0 {
                    continue;
                }
                for gi in 0..scr.agenda[i].len() {
                    let g = &scr.agenda[i][gi];
                    let (st, cur) = (g.st, g.op);
                    let dm = g.mask & adv & uw;
                    if dm == 0 {
                        continue;
                    }
                    // Truth inputs: no stuck overlay, own completion is
                    // the model's draw.
                    scr.input_words.clear();
                    for ik in &c.inputs {
                        let word = match ik {
                            InKind::Cco(p) => {
                                if piped {
                                    if *p >= n {
                                        0
                                    } else {
                                        let mut b = 0u64;
                                        for t in BitIter(dm) {
                                            let needed = scr.completions[cur.0 * 64 + t] + 1;
                                            let have = scr.completions[p * 64 + t]
                                                + usize::from(scr.pulses[*p] & (1u64 << t) != 0);
                                            if have >= needed {
                                                b |= 1u64 << t;
                                            }
                                        }
                                        b
                                    }
                                } else if *p < n {
                                    if vis_latched {
                                        scr.visible[*p]
                                    } else {
                                        scr.done[*p] | scr.pulses[*p]
                                    }
                                } else {
                                    0
                                }
                            }
                            InKind::Own => scr.unit_completion[c.unit] ^ scr.unit_diverged[c.unit],
                        };
                        scr.input_words.push(word);
                    }
                    let trs = &c.trans[st];
                    scr.tev.clear();
                    let (mut any, mut ov) = (0u64, 0u64);
                    for tr in trs {
                        let e = eval_word(tr.guard, &scr.input_words) & dm;
                        ov |= any & e;
                        any |= e;
                        scr.tev.push(e);
                    }
                    // Lanes whose truth step errors are skipped silently
                    // (scalar: `Err(_) => continue`).
                    let valid = dm & any & !ov;
                    if valid == 0 {
                        continue;
                    }
                    for ti in 0..scr.taken[i].len() {
                        let (tst, ka, ma) = scr.taken[i][ti];
                        if tst != st {
                            continue;
                        }
                        let wa = ma & valid & adv;
                        if wa == 0 {
                            continue;
                        }
                        for (kb, &evb) in scr.tev.iter().enumerate() {
                            let wab = wa & evb;
                            if wab == 0 || ka == kb {
                                continue;
                            }
                            let a = &trs[ka];
                            let b = &trs[kb];
                            let premature = a
                                .outs
                                .iter()
                                .any(|&o| c.out_is_re[o] && !b.outs.contains(&o));
                            if premature {
                                // Scalar: Desync "latched before its true
                                // completion (stuck-at-short)".
                                fallback |= wab;
                                adv &= !wab;
                            }
                        }
                    }
                }
            }
        }

        // --- advance: commit ----------------------------------------
        for (i, c) in ctrls.iter().enumerate() {
            let occ = &mut scr.occupancy[i];
            occ.clear();
            for &(st, k, m) in &scr.taken[i] {
                let w = m & adv;
                if w == 0 {
                    continue;
                }
                let to = c.trans[st][k].to;
                if let Some(e) = occ.iter_mut().find(|e| e.0 == to) {
                    e.1 |= w;
                } else {
                    occ.push((to, w));
                }
            }
            if elastic.is_some() {
                // Lanes frozen this cycle keep their state (the scalar
                // `steps.push((state, []))` of a non-ticking controller).
                // Merged before the flip transform below: a state-register
                // upset hits a frozen controller too.
                for hi in 0..scr.held[i].len() {
                    let (st, hm) = scr.held[i][hi];
                    let w = hm & adv;
                    if w == 0 {
                        continue;
                    }
                    if let Some(e) = occ.iter_mut().find(|e| e.0 == st) {
                        e.1 |= w;
                    } else {
                        occ.push((st, w));
                    }
                }
            }
        }
        for op in 0..n {
            let mut w = scr.pulses[op] & adv;
            if w == 0 {
                continue;
            }
            if !piped {
                w &= !scr.done[op]; // skip_latch: already done
            }
            for e in &scr.deferred {
                if e.1 == op {
                    w &= !e.2;
                }
            }
            if w == 0 {
                continue;
            }
            configs.latch_groups_at(faulty, OpId(op), cycle, w, &mut scr.lg);
            for li in 0..scr.lg.len() {
                let (delay, m) = scr.lg[li];
                if delay == 0 {
                    if piped {
                        latch_piped(
                            op,
                            m,
                            cycle,
                            n,
                            iters,
                            bound,
                            &scr.starts,
                            &mut scr.completions,
                            &mut scr.iter_end,
                            &mut scr.war,
                            &mut scr.at_target,
                            &mut lanes_incomplete,
                        );
                    } else {
                        let upd = latch_single(
                            op,
                            m,
                            cycle,
                            n,
                            &mut scr.done,
                            &mut scr.completion_cycle,
                            &mut scr.done_count,
                            &mut lanes_incomplete,
                        );
                        if vis_latched && upd != 0 {
                            // Becomes visible at `cycle + lat`: the slot
                            // just promoted this cycle, due again exactly
                            // `lat` cycles from now.
                            scr.vis_ring[(cycle % lat) * n + op] |= upd;
                        }
                    }
                } else {
                    scr.deferred.push((cycle + delay, op, m));
                }
            }
        }
        // State-register upsets transform the occupancy the same way the
        // scalar kernel XORs the latched state id.
        if faulty & adv != 0 {
            for (i, _c) in ctrls.iter().enumerate() {
                configs.flip_groups_at(faulty, i, cycle, adv, &mut scr.flips);
                if scr.flips.is_empty() {
                    continue;
                }
                for fi in 0..scr.flips.len() {
                    let (bit, fm) = scr.flips[fi];
                    let occ = &mut scr.occupancy[i];
                    let len = occ.len();
                    // Each lane flips exactly once: lanes merged into a
                    // later entry must not flip again when that entry is
                    // scanned (bit-0 flips land on adjacent state ids).
                    let mut flipped = 0u64;
                    for ei in 0..len {
                        let moved = occ[ei].1 & fm & !flipped;
                        if moved == 0 {
                            continue;
                        }
                        flipped |= moved;
                        occ[ei].1 &= !moved;
                        let to = occ[ei].0 ^ (1usize << bit);
                        if let Some(e) = occ.iter_mut().find(|e| e.0 == to) {
                            e.1 |= moved;
                        } else {
                            occ.push((to, moved));
                        }
                    }
                    occ.retain(|e| e.1 != 0);
                }
            }
        }
    }
    (fallback, finished)
}

/// The word-parallel synchronized step-walk (CENT-SYNC). Unlike the FSM
/// modes the step sequence is trial-independent, but the cycle counter is
/// per-lane: a lane only spends the extension half when one of its own
/// TAU draws comes back long. Returns the fallback lane mask.
#[allow(clippy::too_many_arguments)]
fn cent_sync_engine(
    bound: &BoundDfg,
    taubm: &TaubmDfg,
    opvals: &[(i64, i64)],
    models: &LaneModels<'_>,
    configs: &LaneConfigs<'_>,
    rngs: &mut [StdRng],
    scr: &mut Scratch,
) -> u64 {
    let dfg = bound.dfg();
    let n = dfg.num_ops();
    let nu = bound.allocation().units().len();
    let lanes = rngs.len();
    let all = lane_mask(lanes);
    let mut fallback = models.invalid_mask(n, lanes);
    let faulty = configs.faulty_mask(lanes);
    configs.budgets(n, 1, lanes, &mut scr.budgets);
    reset_usize(&mut scr.completion_cycle, n * 64);
    reset_usize(&mut scr.start_cycle, n * 64);
    reset_usize(&mut scr.unit_busy, nu * 64);
    reset_usize(&mut scr.cyc, lanes);

    for step in taubm.steps() {
        let mut m = all & !fallback;
        if m == 0 {
            break;
        }
        // Kernel loop top: pre-increment the (per-lane) cycle counter and
        // trip the watchdog before the step body.
        for t in BitIter(m) {
            scr.cyc[t] += 1;
            if scr.cyc[t] > scr.budgets[t] {
                fallback |= 1u64 << t;
            }
        }
        m &= !fallback;
        if m == 0 {
            continue;
        }
        for &o in &step.fixed_ops {
            let u = bound.unit_of(o).0;
            for t in BitIter(m) {
                scr.start_cycle[o.0 * 64 + t] = scr.cyc[t];
                scr.completion_cycle[o.0 * 64 + t] = scr.cyc[t];
                scr.unit_busy[u * 64 + t] += 1;
            }
        }
        if step.tau_ops.is_empty() {
            continue;
        }
        scr.short_w.clear();
        scr.truth_w.clear();
        let mut all_short = !0u64;
        for &o in &step.tau_ops {
            for t in BitIter(m) {
                scr.start_cycle[o.0 * 64 + t] = scr.cyc[t];
            }
            let node = dfg.op(o);
            let (lhs, rhs) = opvals[o.0];
            let truth = models.truth_word(o, node.kind, lhs, rhs, m, rngs) & m;
            let mut short = truth;
            if faulty & m != 0 {
                for t in BitIter(faulty & m) {
                    let bit = 1u64 << t;
                    match configs.cfg(t).faults.stuck_completion(o, scr.cyc[t]) {
                        Some(true) => short |= bit,
                        Some(false) => short &= !bit,
                        None => {}
                    }
                }
            }
            scr.truth_w.push(truth);
            scr.short_w.push(short);
            all_short &= short | !m;
        }
        // Lanes with any long (effective) completion spend the extension
        // half.
        let ext = m & !all_short;
        for t in BitIter(ext) {
            scr.cyc[t] += 1;
        }
        // A stuck-at-short that masks a long completion while no sibling
        // extends the step: scalar Desync, detected before latching.
        if faulty & m & all_short != 0 {
            let mut bad = 0u64;
            for &tw in &scr.truth_w {
                bad |= faulty & m & all_short & !tw;
            }
            fallback |= bad;
            m &= !bad;
            if m == 0 {
                continue;
            }
        }
        for (idx, &o) in step.tau_ops.iter().enumerate() {
            let u = bound.unit_of(o).0;
            let short = scr.short_w[idx];
            for t in BitIter(m) {
                let bit = 1u64 << t;
                let d = if faulty & bit != 0 {
                    configs.cfg(t).faults.latch_delay(o, scr.cyc[t])
                } else {
                    0
                };
                scr.completion_cycle[o.0 * 64 + t] = scr.cyc[t] + d;
                scr.unit_busy[u * 64 + t] += if short & bit != 0 { 1 } else { 2 };
            }
        }
    }
    fallback
}

/// Which scalar entry point this sliced simulator mirrors.
enum EngineMode {
    /// `simulate_distributed_with` / the CENT product wrapper (both step
    /// the same component FSM bank).
    SingleIter {
        values: Vec<i64>,
        opvals: Vec<(i64, i64)>,
    },
    /// `simulate_cent_sync_with`.
    CentSync {
        taubm: TaubmDfg,
        values: Vec<i64>,
        opvals: Vec<(i64, i64)>,
    },
    /// `simulate_pipelined_with`.
    Pipelined { iterations: usize },
}

/// A reusable bit-sliced simulator for one bound DFG + controller pair.
///
/// Construct once per (binding, engine) and call [`SlicedSim::run`] /
/// [`SlicedSim::run_pipelined`] repeatedly — the scratch buffers are
/// reused across calls, which is what makes per-worker reuse in the batch
/// runner allocation-free on the steady state.
pub struct SlicedSim<'a> {
    bound: &'a BoundDfg,
    /// `None` when the controllers fell outside the compilable naming
    /// convention (every lane then falls back to scalar) or when the mode
    /// needs no FSMs (cent-sync).
    ctrls: Option<Vec<CCtrl<'a>>>,
    mode: EngineMode,
    scr: Scratch,
}

fn eval_inputs(bound: &BoundDfg, inputs: Option<&[i64]>) -> (Vec<i64>, Vec<(i64, i64)>) {
    let dfg = bound.dfg();
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);
    let opvals = operand_values(bound, input_vals, &values);
    (values, opvals)
}

/// Transposes the engine scratch back into per-lane [`SimResult`]s:
/// fallback lanes stay fallback, and a terminating faulty lane that
/// latched out of order falls back too (the scalar engines turn that into
/// a Desync via the post-run invariant check).
fn collect_lanes(
    bound: &BoundDfg,
    scr: &Scratch,
    fb: u64,
    faulty: u64,
    lanes: usize,
    cent_sync: bool,
    values: &[i64],
) -> Vec<LaneOutcome> {
    let n = bound.dfg().num_ops();
    let nu = bound.allocation().units().len();
    let mut out = Vec::with_capacity(lanes);
    for t in 0..lanes {
        if fb & (1u64 << t) != 0 {
            out.push(LaneOutcome::Fallback);
            continue;
        }
        let completion_cycle: Vec<usize> =
            (0..n).map(|o| scr.completion_cycle[o * 64 + t]).collect();
        let cycles = if cent_sync {
            scr.cyc[t].max(completion_cycle.iter().copied().max().unwrap_or(0))
        } else {
            scr.fin_cycle[t]
        };
        let r = SimResult {
            cycles,
            completion_cycle,
            start_cycle: (0..n).map(|o| scr.start_cycle[o * 64 + t]).collect(),
            unit_busy_cycles: (0..nu).map(|u| scr.unit_busy[u * 64 + t]).collect(),
            values: values.to_vec(),
        };
        if faulty & (1u64 << t) != 0 && r.verify(bound).is_err() {
            out.push(LaneOutcome::Fallback);
        } else {
            out.push(LaneOutcome::Done(r));
        }
    }
    out
}

impl<'a> SlicedSim<'a> {
    /// Sliced twin of `simulate_distributed_with`. For the CENT engine
    /// pass `cent.components()` — the product automaton is bisimilar to
    /// its component bank, and the scalar CENT simulator steps the same
    /// components, so the results coincide.
    pub fn distributed(
        bound: &'a BoundDfg,
        cu: &'a DistributedControlUnit,
        inputs: Option<&[i64]>,
    ) -> Self {
        let (values, opvals) = eval_inputs(bound, inputs);
        SlicedSim {
            bound,
            ctrls: compile(cu),
            mode: EngineMode::SingleIter { values, opvals },
            scr: Scratch::default(),
        }
    }

    /// Sliced twin of `simulate_cent_sync_with` (list schedule).
    pub fn cent_sync(bound: &'a BoundDfg, inputs: Option<&[i64]>) -> Self {
        let (values, opvals) = eval_inputs(bound, inputs);
        let taubm = TaubmDfg::derive(
            bound.dfg(),
            bound.schedule().step_of(),
            bound.allocation().tau_classes(),
        );
        SlicedSim {
            bound,
            ctrls: None,
            mode: EngineMode::CentSync {
                taubm,
                values,
                opvals,
            },
            scr: Scratch::default(),
        }
    }

    /// Sliced twin of `simulate_pipelined_with`.
    pub fn pipelined(
        bound: &'a BoundDfg,
        cu: &'a DistributedControlUnit,
        iterations: usize,
    ) -> Self {
        SlicedSim {
            bound,
            ctrls: compile(cu),
            mode: EngineMode::Pipelined { iterations },
            scr: Scratch::default(),
        }
    }

    fn lanes_ok(models: &LaneModels<'_>, configs: &LaneConfigs<'_>, lanes: usize) -> bool {
        let m_ok = match models {
            LaneModels::PerLane(ms) => ms.len() >= lanes,
            LaneModels::Shared(_) => true,
        };
        let c_ok = match configs {
            LaneConfigs::PerLane(cs) => cs.len() >= lanes,
            LaneConfigs::Shared(_) => true,
        };
        m_ok && c_ok
    }

    /// Runs `rngs.len()` trials (one per bit lane, at most [`LANES`]).
    /// Lane `t` consumes `rngs[t]` exactly as the scalar engine would, so
    /// a [`LaneOutcome::Done`] result is bit-identical to the scalar run
    /// seeded the same way; [`LaneOutcome::Fallback`] lanes must be re-run
    /// scalar (with a fresh RNG) to recover their result or diagnostics.
    pub fn run(
        &mut self,
        models: &LaneModels<'_>,
        configs: &LaneConfigs<'_>,
        rngs: &mut [StdRng],
    ) -> Vec<LaneOutcome> {
        let lanes = rngs.len();
        if lanes == 0 {
            return Vec::new();
        }
        if lanes > LANES || !Self::lanes_ok(models, configs, lanes) {
            return vec![LaneOutcome::Fallback; lanes];
        }
        let faulty = configs.faulty_mask(lanes);
        let (fb, values) = match &self.mode {
            EngineMode::Pipelined { .. } => return vec![LaneOutcome::Fallback; lanes],
            EngineMode::SingleIter { values, opvals } => {
                let ctrls = match &self.ctrls {
                    Some(c) => c,
                    None => return vec![LaneOutcome::Fallback; lanes],
                };
                let (fb, _finished) = fsm_engine(
                    self.bound,
                    ctrls,
                    Some(opvals),
                    None,
                    None,
                    models,
                    configs,
                    rngs,
                    &mut self.scr,
                );
                (fb, values)
            }
            EngineMode::CentSync {
                taubm,
                values,
                opvals,
            } => {
                let fb = cent_sync_engine(
                    self.bound,
                    taubm,
                    opvals,
                    models,
                    configs,
                    rngs,
                    &mut self.scr,
                );
                (fb, values)
            }
        };
        let cent_sync = matches!(self.mode, EngineMode::CentSync { .. });
        collect_lanes(self.bound, &self.scr, fb, faulty, lanes, cent_sync, values)
    }

    /// Elastic (GALS) twin of `simulate_elastic_with`, on a simulator
    /// constructed with [`SlicedSim::distributed`]: the same controller
    /// bank, clocked per [`ElasticSpec`] with one skew seed per lane.
    /// Done lanes are bit-identical to the scalar elastic engine seeded
    /// the same way; everything else falls back, soundly.
    pub fn run_elastic(
        &mut self,
        spec: ElasticSpec,
        skew_seeds: &[u64],
        models: &LaneModels<'_>,
        configs: &LaneConfigs<'_>,
        rngs: &mut [StdRng],
    ) -> Vec<LaneOutcome> {
        let lanes = rngs.len();
        if lanes == 0 {
            return Vec::new();
        }
        if lanes > LANES || skew_seeds.len() < lanes || !Self::lanes_ok(models, configs, lanes) {
            return vec![LaneOutcome::Fallback; lanes];
        }
        let (values, opvals) = match &self.mode {
            EngineMode::SingleIter { values, opvals } => (values, opvals),
            _ => return vec![LaneOutcome::Fallback; lanes],
        };
        let ctrls = match &self.ctrls {
            Some(c) => c,
            None => return vec![LaneOutcome::Fallback; lanes],
        };
        let faulty = configs.faulty_mask(lanes);
        let (fb, _finished) = fsm_engine(
            self.bound,
            ctrls,
            Some(opvals),
            None,
            Some((spec, &skew_seeds[..lanes])),
            models,
            configs,
            rngs,
            &mut self.scr,
        );
        collect_lanes(self.bound, &self.scr, fb, faulty, lanes, false, values)
    }

    /// Pipelined twin of [`SlicedSim::run`].
    pub fn run_pipelined(
        &mut self,
        models: &LaneModels<'_>,
        configs: &LaneConfigs<'_>,
        rngs: &mut [StdRng],
    ) -> Vec<PipelinedLaneOutcome> {
        let lanes = rngs.len();
        if lanes == 0 {
            return Vec::new();
        }
        let iters = match self.mode {
            EngineMode::Pipelined { iterations } => iterations,
            _ => return vec![PipelinedLaneOutcome::Fallback; lanes],
        };
        // iterations == 0 is a scalar InvalidConfig; let scalar report it.
        if lanes > LANES || iters == 0 || !Self::lanes_ok(models, configs, lanes) {
            return vec![PipelinedLaneOutcome::Fallback; lanes];
        }
        let ctrls = match &self.ctrls {
            Some(c) => c,
            None => return vec![PipelinedLaneOutcome::Fallback; lanes],
        };
        let (fb, _finished) = fsm_engine(
            self.bound,
            ctrls,
            None,
            Some(iters),
            None,
            models,
            configs,
            rngs,
            &mut self.scr,
        );
        let mut out = Vec::with_capacity(lanes);
        for t in 0..lanes {
            if fb & (1u64 << t) != 0 {
                out.push(PipelinedLaneOutcome::Fallback);
                continue;
            }
            let mut iteration_end_cycle: Vec<usize> = (0..iters)
                .map(|i| self.scr.iter_end[t * iters + i])
                .collect();
            for i in 1..iters {
                if iteration_end_cycle[i] == 0 {
                    iteration_end_cycle[i] = iteration_end_cycle[i - 1];
                }
            }
            out.push(PipelinedLaneOutcome::Done(PipelinedResult {
                iterations: iters,
                iteration_end_cycle,
                total_cycles: self.scr.fin_cycle[t],
                war_hazards: self.scr.war[t].clone(),
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centsync::simulate_cent_sync_with;
    use crate::distributed::simulate_distributed_with;
    use crate::fault::{FaultKind, FaultPlan, SimConfig};
    use crate::pipeline::simulate_pipelined_with;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fir3, fir5};
    use tauhls_sched::Allocation;

    fn rng_bank(seed: u64, lanes: usize) -> Vec<StdRng> {
        (0..lanes)
            .map(|t| StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37)))
            .collect()
    }

    /// Done lanes must be bit-identical to the scalar run on the same
    /// seed; scalar errors must come back as Fallback (never as a Done
    /// with different content).
    fn assert_dist_equiv(
        bound: &BoundDfg,
        cu: &DistributedControlUnit,
        model: &CompletionModel,
        config: &SimConfig,
        seed: u64,
        lanes: usize,
    ) {
        let mut rngs = rng_bank(seed, lanes);
        let mut sim = SlicedSim::distributed(bound, cu, None);
        let out = sim.run(
            &LaneModels::Shared(model),
            &LaneConfigs::Shared(config),
            &mut rngs,
        );
        assert_eq!(out.len(), lanes);
        for (t, lane) in out.iter().enumerate() {
            let mut srng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
            let scalar = simulate_distributed_with(bound, cu, model, None, &mut srng, config);
            match lane {
                LaneOutcome::Done(r) => {
                    assert_eq!(Ok(r), scalar.as_ref(), "lane {t} diverged");
                }
                LaneOutcome::Fallback => {
                    // Sound by contract; nothing to check here.
                }
            }
        }
    }

    #[test]
    fn dist_matches_scalar_fault_free() {
        for g in [fir3(), fir5(), diffeq()] {
            let alloc = Allocation::paper(2, 1, 1);
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            for lanes in [1, 5, 64] {
                assert_dist_equiv(
                    &bound,
                    &cu,
                    &CompletionModel::Bernoulli { p: 0.6 },
                    &SimConfig::default(),
                    7 + lanes as u64,
                    lanes,
                );
            }
        }
    }

    #[test]
    fn dist_fault_free_lanes_never_fall_back() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rngs = rng_bank(11, 64);
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let out = sim.run(
            &LaneModels::Shared(&CompletionModel::Bernoulli { p: 0.5 }),
            &LaneConfigs::Shared(&SimConfig::default()),
            &mut rngs,
        );
        assert!(out.iter().all(|l| matches!(l, LaneOutcome::Done(_))));
    }

    #[test]
    fn dist_matches_scalar_under_faults() {
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let cu = DistributedControlUnit::generate(&bound);
        let plans = [
            FaultPlan::single(1, FaultKind::StuckAtShort { op: OpId(1) }),
            FaultPlan::single(2, FaultKind::StuckAtLong { op: OpId(2) }),
            FaultPlan::single(1, FaultKind::DropPulse { op: OpId(0) }),
            FaultPlan::single(2, FaultKind::SpuriousPulse { op: OpId(3) }),
            FaultPlan::single(
                1,
                FaultKind::DelayLatch {
                    op: OpId(1),
                    delay: 2,
                },
            ),
            FaultPlan::single(
                2,
                FaultKind::FlipState {
                    controller: 0,
                    bit: 0,
                },
            ),
        ];
        for (i, plan) in plans.iter().enumerate() {
            let config = SimConfig {
                faults: plan.clone(),
                ..SimConfig::default()
            };
            assert_dist_equiv(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.6 },
                &config,
                100 + i as u64,
                17,
            );
        }
    }

    #[test]
    fn per_lane_configs_isolate_faults() {
        // Lane 3 carries a stuck-at fault, every other lane is clean: the
        // clean lanes must match their fault-free scalar twins exactly.
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let lanes = 9;
        let mut configs = vec![SimConfig::default(); lanes];
        configs[3].faults = FaultPlan::single(1, FaultKind::StuckAtShort { op: OpId(0) });
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let mut rngs = rng_bank(42, lanes);
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let out = sim.run(
            &LaneModels::Shared(&model),
            &LaneConfigs::PerLane(&configs),
            &mut rngs,
        );
        for (t, lane) in out.iter().enumerate() {
            let mut srng = StdRng::seed_from_u64(42 ^ (t as u64).wrapping_mul(0x9E37));
            let scalar =
                simulate_distributed_with(&bound, &cu, &model, None, &mut srng, &configs[t]);
            if let LaneOutcome::Done(r) = lane {
                assert_eq!(Ok(r), scalar.as_ref(), "lane {t}");
            }
        }
    }

    #[test]
    fn cent_sync_matches_scalar() {
        for g in [fir3(), fir5(), diffeq()] {
            let bound = BoundDfg::bind(&g, &Allocation::paper(2, 1, 1));
            let model = CompletionModel::Bernoulli { p: 0.7 };
            let lanes = 33;
            let mut rngs = rng_bank(5, lanes);
            let mut sim = SlicedSim::cent_sync(&bound, None);
            let out = sim.run(
                &LaneModels::Shared(&model),
                &LaneConfigs::Shared(&SimConfig::default()),
                &mut rngs,
            );
            for (t, lane) in out.iter().enumerate() {
                let mut srng = StdRng::seed_from_u64(5 ^ (t as u64).wrapping_mul(0x9E37));
                let scalar =
                    simulate_cent_sync_with(&bound, &model, None, &mut srng, &SimConfig::default());
                match lane {
                    LaneOutcome::Done(r) => assert_eq!(Ok(r), scalar.as_ref(), "lane {t}"),
                    LaneOutcome::Fallback => panic!("fault-free cent-sync lane {t} fell back"),
                }
            }
        }
    }

    #[test]
    fn pipelined_matches_scalar() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let model = CompletionModel::Bernoulli { p: 0.6 };
        for iterations in [1, 3] {
            let lanes = 21;
            let mut rngs = rng_bank(9, lanes);
            let mut sim = SlicedSim::pipelined(&bound, &cu, iterations);
            let out = sim.run_pipelined(
                &LaneModels::Shared(&model),
                &LaneConfigs::Shared(&SimConfig::default()),
                &mut rngs,
            );
            for (t, lane) in out.iter().enumerate() {
                let mut srng = StdRng::seed_from_u64(9 ^ (t as u64).wrapping_mul(0x9E37));
                let scalar = simulate_pipelined_with(
                    &bound,
                    &cu,
                    &model,
                    iterations,
                    &mut srng,
                    &SimConfig::default(),
                );
                match lane {
                    PipelinedLaneOutcome::Done(r) => {
                        assert_eq!(Ok(r), scalar.as_ref(), "lane {t} iters {iterations}")
                    }
                    PipelinedLaneOutcome::Fallback => {
                        panic!("fault-free pipelined lane {t} fell back")
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_matches_scalar_under_faults() {
        // Deferred latches are the tricky case: pipelined hooks abandon
        // them at loop exit instead of staying alive for them.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let model = CompletionModel::Bernoulli { p: 0.6 };
        let plans = [
            FaultPlan::single(
                3,
                FaultKind::DelayLatch {
                    op: OpId(1),
                    delay: 2,
                },
            ),
            FaultPlan::single(2, FaultKind::DropPulse { op: OpId(1) }),
            FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(0) }),
            FaultPlan::single(3, FaultKind::StuckAtShort { op: OpId(1) }),
        ];
        for (i, plan) in plans.iter().enumerate() {
            let config = SimConfig::with_faults(plan.clone());
            let lanes = 13;
            let mut rngs = rng_bank(5, lanes);
            let mut sim = SlicedSim::pipelined(&bound, &cu, 3);
            let out = sim.run_pipelined(
                &LaneModels::Shared(&model),
                &LaneConfigs::Shared(&config),
                &mut rngs,
            );
            for (t, lane) in out.iter().enumerate() {
                if let PipelinedLaneOutcome::Done(r) = lane {
                    let mut srng = StdRng::seed_from_u64(5 ^ (t as u64).wrapping_mul(0x9E37));
                    let scalar =
                        simulate_pipelined_with(&bound, &cu, &model, 3, &mut srng, &config);
                    assert_eq!(Ok(r), scalar.as_ref(), "plan {i}, lane {t}");
                }
            }
        }
    }

    #[test]
    fn oversized_lane_count_falls_back() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rngs = rng_bank(0, 65);
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let out = sim.run(
            &LaneModels::Shared(&CompletionModel::AlwaysShort),
            &LaneConfigs::Shared(&SimConfig::default()),
            &mut rngs,
        );
        assert_eq!(out.len(), 65);
        assert!(out.iter().all(|l| matches!(l, LaneOutcome::Fallback)));
    }

    #[test]
    fn invalid_model_lane_falls_back() {
        // A table shorter than the DFG is a scalar InvalidConfig; the
        // sliced engine must route it to fallback, not panic.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let models = vec![
            CompletionModel::AlwaysShort,
            CompletionModel::Table(vec![true]),
        ];
        let mut rngs = rng_bank(0, 2);
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let out = sim.run(
            &LaneModels::PerLane(&models),
            &LaneConfigs::Shared(&SimConfig::default()),
            &mut rngs,
        );
        assert!(matches!(out[0], LaneOutcome::Done(_)));
        assert!(matches!(out[1], LaneOutcome::Fallback));
    }

    fn skew_bank(seed: u64, lanes: usize) -> Vec<u64> {
        (0..lanes)
            .map(|t| seed ^ (t as u64).wrapping_mul(0xD1B5_4A32))
            .collect()
    }

    /// Done lanes of the sliced elastic engine must be bit-identical to
    /// the scalar elastic engine on the same trial RNG and skew seed.
    #[allow(clippy::too_many_arguments)]
    fn assert_elastic_equiv(
        bound: &BoundDfg,
        cu: &DistributedControlUnit,
        model: &CompletionModel,
        config: &SimConfig,
        spec: ElasticSpec,
        seed: u64,
        lanes: usize,
        require_done: bool,
    ) {
        let mut rngs = rng_bank(seed, lanes);
        let skews = skew_bank(seed.wrapping_mul(31), lanes);
        let mut sim = SlicedSim::distributed(bound, cu, None);
        let out = sim.run_elastic(
            spec,
            &skews,
            &LaneModels::Shared(model),
            &LaneConfigs::Shared(config),
            &mut rngs,
        );
        assert_eq!(out.len(), lanes);
        for (t, lane) in out.iter().enumerate() {
            let mut srng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
            let scalar = crate::elastic::simulate_elastic_with(
                bound, cu, model, None, &mut srng, config, spec, skews[t],
            );
            match lane {
                LaneOutcome::Done(r) => {
                    assert_eq!(Ok(r), scalar.as_ref(), "lane {t} under {spec:?}");
                }
                LaneOutcome::Fallback => {
                    assert!(
                        !require_done,
                        "lane {t} fell back under {spec:?} (scalar: {scalar:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn elastic_matches_scalar_fault_free() {
        // Fault-free elastic lanes must never fall back (the differential
        // claim would be vacuous otherwise) and must equal the scalar
        // elastic engine bit for bit, across skew/latency combinations.
        let specs = [
            ElasticSpec::zero(),
            ElasticSpec::default(),
            ElasticSpec {
                skew_bound: 2,
                sync_latency: 0,
            },
            ElasticSpec {
                skew_bound: 0,
                sync_latency: 2,
            },
            ElasticSpec {
                skew_bound: 3,
                sync_latency: 2,
            },
        ];
        for g in [fir3(), fir5(), diffeq()] {
            let bound = BoundDfg::bind(&g, &Allocation::paper(2, 1, 1));
            let cu = DistributedControlUnit::generate(&bound);
            for (i, spec) in specs.iter().enumerate() {
                assert_elastic_equiv(
                    &bound,
                    &cu,
                    &CompletionModel::Bernoulli { p: 0.6 },
                    &SimConfig::default(),
                    *spec,
                    200 + i as u64,
                    64,
                    true,
                );
            }
        }
    }

    #[test]
    fn elastic_zero_spec_matches_dist_engine_bitwise() {
        // ELASTIC at the zero spec is the distributed engine: same lanes,
        // same words, regardless of skew seeds.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let mut r1 = rng_bank(13, 64);
        let dist = sim.run(
            &LaneModels::Shared(&model),
            &LaneConfigs::Shared(&SimConfig::default()),
            &mut r1,
        );
        let mut r2 = rng_bank(13, 64);
        let elas = sim.run_elastic(
            ElasticSpec::zero(),
            &skew_bank(999, 64),
            &LaneModels::Shared(&model),
            &LaneConfigs::Shared(&SimConfig::default()),
            &mut r2,
        );
        assert_eq!(dist, elas);
    }

    #[test]
    fn elastic_matches_scalar_under_faults() {
        // All six synchronous kinds plus the elastic-only ClockSkew must
        // compose: Done lanes equal scalar, error lanes fall back.
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let cu = DistributedControlUnit::generate(&bound);
        let spec = ElasticSpec {
            skew_bound: 1,
            sync_latency: 1,
        };
        let plans = [
            FaultPlan::single(1, FaultKind::StuckAtShort { op: OpId(1) }),
            FaultPlan::single(2, FaultKind::StuckAtLong { op: OpId(2) }),
            FaultPlan::single(1, FaultKind::DropPulse { op: OpId(0) }),
            FaultPlan::single(2, FaultKind::SpuriousPulse { op: OpId(3) }),
            FaultPlan::single(
                1,
                FaultKind::DelayLatch {
                    op: OpId(1),
                    delay: 2,
                },
            ),
            FaultPlan::single(
                2,
                FaultKind::FlipState {
                    controller: 0,
                    bit: 0,
                },
            ),
            FaultPlan::single(
                2,
                FaultKind::ClockSkew {
                    controller: 0,
                    stall: 4,
                },
            ),
        ];
        for (i, plan) in plans.iter().enumerate() {
            let config = SimConfig {
                faults: plan.clone(),
                ..SimConfig::default()
            };
            assert_elastic_equiv(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.6 },
                &config,
                spec,
                300 + i as u64,
                17,
                false,
            );
        }
    }

    #[test]
    fn elastic_per_lane_clock_skew_isolates() {
        // Lane 2 carries a ClockSkew fault; every other lane is clean and
        // must match its fault-free scalar elastic twin exactly.
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let spec = ElasticSpec::default();
        let lanes = 7;
        let mut configs = vec![SimConfig::default(); lanes];
        configs[2].faults = FaultPlan::single(
            2,
            FaultKind::ClockSkew {
                controller: 0,
                stall: 3,
            },
        );
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let mut rngs = rng_bank(21, lanes);
        let skews = skew_bank(5, lanes);
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let out = sim.run_elastic(
            spec,
            &skews,
            &LaneModels::Shared(&model),
            &LaneConfigs::PerLane(&configs),
            &mut rngs,
        );
        for (t, lane) in out.iter().enumerate() {
            let mut srng = StdRng::seed_from_u64(21 ^ (t as u64).wrapping_mul(0x9E37));
            let scalar = crate::elastic::simulate_elastic_with(
                &bound,
                &cu,
                &model,
                None,
                &mut srng,
                &configs[t],
                spec,
                skews[t],
            );
            if let LaneOutcome::Done(r) = lane {
                assert_eq!(Ok(r), scalar.as_ref(), "lane {t}");
            }
        }
    }

    #[test]
    fn elastic_on_non_distributed_modes_falls_back() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let mut rngs = rng_bank(0, 4);
        let mut sim = SlicedSim::cent_sync(&bound, None);
        let out = sim.run_elastic(
            ElasticSpec::default(),
            &skew_bank(0, 4),
            &LaneModels::Shared(&CompletionModel::AlwaysShort),
            &LaneConfigs::Shared(&SimConfig::default()),
            &mut rngs,
        );
        assert!(out.iter().all(|l| matches!(l, LaneOutcome::Fallback)));
    }

    #[test]
    fn scratch_reuse_across_runs_is_stateless() {
        // Same simulator, three consecutive banks: later runs must not
        // observe state left by earlier ones.
        let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
        let cu = DistributedControlUnit::generate(&bound);
        let model = CompletionModel::Bernoulli { p: 0.6 };
        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let mut baseline = Vec::new();
        for round in 0..3 {
            let mut rngs = rng_bank(77, 13);
            let out = sim.run(
                &LaneModels::Shared(&model),
                &LaneConfigs::Shared(&SimConfig::default()),
                &mut rngs,
            );
            if round == 0 {
                baseline = out;
            } else {
                assert_eq!(out, baseline, "round {round} leaked scratch state");
            }
        }
    }
}
