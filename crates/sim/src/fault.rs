//! Deterministic completion-signal fault injection.
//!
//! A [`FaultPlan`] is a list of scheduled [`Fault`]s that perturb the
//! completion-signal fabric (`C_PO`/`C_CO`) the distributed controllers
//! coordinate through — the only wires the paper's protocol depends on.
//! Faults are pure overlays: they never consume random numbers, so a run
//! with an empty plan is bit-identical to a run without fault support at
//! all, and the Monte-Carlo trial streams stay aligned between faulty and
//! fault-free executions of the same seed.

use tauhls_dfg::OpId;

/// One kind of completion-signal or controller fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The completion signal path for `op` is stuck asserted from the fault
    /// cycle onward: the unit's telescopic predictor reports "short" no
    /// matter what the datapath says, and consumers of `C_CO(op)` see the
    /// operation as complete. Typically surfaces as a premature result
    /// latch or a premature consumer fire ([`crate::SimError::Desync`]).
    StuckAtShort {
        /// The affected operation.
        op: OpId,
    },
    /// The completion signal path for `op` is stuck deasserted from the
    /// fault cycle onward: consumers never observe the completion, starving
    /// the downstream controllers ([`crate::SimError::Deadlock`]).
    StuckAtLong {
        /// The affected operation.
        op: OpId,
    },
    /// Any `C_PO`/`C_CO` pulse for `op` emitted exactly at the fault cycle
    /// is lost before it can latch. The system may recover when the
    /// producer wraps around and re-pulses, or deadlock on a circular wait.
    DropPulse {
        /// The affected operation.
        op: OpId,
    },
    /// A spurious completion pulse for `op` appears at the fault cycle even
    /// though no unit emitted it.
    SpuriousPulse {
        /// The affected operation.
        op: OpId,
    },
    /// From the fault cycle onward, completion pulses for `op` reach the
    /// result-register latch `delay` cycles late; consumers that saw the
    /// raw pulse fire before the result is actually held stable.
    DelayLatch {
        /// The affected operation.
        op: OpId,
        /// Latch delay in cycles (0 is a no-op).
        delay: usize,
    },
    /// A single-event upset in the state register of the given controller
    /// (index into [`tauhls_fsm::DistributedControlUnit::controllers`]):
    /// bit `bit` of the latched state id flips at the end of the fault
    /// cycle.
    FlipState {
        /// Controller index.
        controller: usize,
        /// Which state-register bit flips.
        bit: u32,
    },
    /// The local clock of the given controller stops ticking for `stall`
    /// consecutive fabric cycles starting at the fault cycle — a skew
    /// excursion beyond the elastic style's bounded window. Synchronous
    /// engines have no local clocks, so this fault is inert there; the
    /// elastic engine freezes the controller for the stall span.
    ClockSkew {
        /// Controller index.
        controller: usize,
        /// Consecutive stalled fabric cycles (0 is a no-op).
        stall: usize,
    },
}

impl FaultKind {
    /// A short stable tag for reports (`stuck_short`, `drop_pulse`, ...).
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::StuckAtShort { .. } => "stuck_short",
            FaultKind::StuckAtLong { .. } => "stuck_long",
            FaultKind::DropPulse { .. } => "drop_pulse",
            FaultKind::SpuriousPulse { .. } => "spurious_pulse",
            FaultKind::DelayLatch { .. } => "delay_latch",
            FaultKind::FlipState { .. } => "flip_state",
            FaultKind::ClockSkew { .. } => "clock_skew",
        }
    }
}

/// A fault scheduled at a specific simulation cycle (cycles are 1-based,
/// matching [`crate::SimResult`] accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// First cycle at which the fault is active. Stuck-at, delay and
    /// (latent) drop faults persist from this cycle onward; spurious-pulse
    /// and state-flip faults are one-shot events at exactly this cycle.
    pub at_cycle: usize,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic set of scheduled faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: simulation behaves exactly as the fault-free engine.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A plan containing a single fault.
    pub fn single(at_cycle: usize, kind: FaultKind) -> Self {
        Self {
            faults: vec![Fault { at_cycle, kind }],
        }
    }

    /// Adds a fault to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Active stuck-at override for `op`'s completion signal at `cycle`:
    /// `Some(true)` forces "complete" (stuck-at-short), `Some(false)`
    /// forces "incomplete" (stuck-at-long). The latest matching fault wins.
    pub fn stuck_completion(&self, op: OpId, cycle: usize) -> Option<bool> {
        let mut forced = None;
        for f in &self.faults {
            if cycle >= f.at_cycle {
                match f.kind {
                    FaultKind::StuckAtShort { op: o } if o == op => forced = Some(true),
                    FaultKind::StuckAtLong { op: o } if o == op => forced = Some(false),
                    _ => {}
                }
            }
        }
        forced
    }

    /// True when a completion pulse for `op` emitted at `cycle` is lost.
    pub fn drops_pulse(&self, op: OpId, cycle: usize) -> bool {
        self.faults.iter().any(|f| {
            f.at_cycle == cycle && matches!(f.kind, FaultKind::DropPulse { op: o } if o == op)
        })
    }

    /// Appends the ops receiving a spurious completion pulse at `cycle`.
    pub fn spurious_at(&self, cycle: usize, out: &mut Vec<OpId>) {
        for f in &self.faults {
            if f.at_cycle == cycle {
                if let FaultKind::SpuriousPulse { op } = f.kind {
                    out.push(op);
                }
            }
        }
    }

    /// Extra cycles before a completion pulse for `op` emitted at `cycle`
    /// reaches the result latch (0 when no delay fault is active).
    pub fn latch_delay(&self, op: OpId, cycle: usize) -> usize {
        let mut d = 0;
        for f in &self.faults {
            if cycle >= f.at_cycle {
                if let FaultKind::DelayLatch { op: o, delay } = f.kind {
                    if o == op {
                        d = delay;
                    }
                }
            }
        }
        d
    }

    /// True when a `ClockSkew` fault holds `controller`'s local clock
    /// stalled at `cycle` (clock-domain engines only; synchronous engines
    /// never ask).
    pub fn clock_stalled(&self, controller: usize, cycle: usize) -> bool {
        self.faults.iter().any(|f| match f.kind {
            FaultKind::ClockSkew {
                controller: c,
                stall,
            } => c == controller && cycle >= f.at_cycle && cycle < f.at_cycle + stall,
            _ => false,
        })
    }

    /// The state-register bit flipping in `controller` at the end of
    /// `cycle`, if any.
    pub fn flip_at(&self, controller: usize, cycle: usize) -> Option<u32> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::FlipState { controller: c, bit }
                if c == controller && f.at_cycle == cycle =>
            {
                Some(bit)
            }
            _ => None,
        })
    }

    /// Extra watchdog budget needed so that surviving runs (e.g. a dropped
    /// pulse recovered by producer wrap-around) are not misclassified as
    /// deadlocks: the latest injection point plus all latch delays.
    pub fn watchdog_slack(&self) -> usize {
        let latest = self.faults.iter().map(|f| f.at_cycle).max().unwrap_or(0);
        let delays: usize = self
            .faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::DelayLatch { delay, .. } => delay,
                FaultKind::ClockSkew { stall, .. } => stall,
                _ => 0,
            })
            .sum();
        latest + delays
    }
}

/// Watchdog budget policy for deadlock detection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Watchdog {
    /// `6*n + 32` cycles for an `n`-op DFG — the engine's historical bound,
    /// ample for any legal single-iteration schedule. When faults are
    /// injected the budget is doubled and extended by
    /// [`FaultPlan::watchdog_slack`] so recoverable runs can finish.
    #[default]
    Auto,
    /// A fixed cycle budget.
    Cycles(usize),
}

/// Simulation configuration: the fault overlay plus the watchdog policy.
///
/// `SimConfig::default()` reproduces the fault-free engine exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimConfig {
    /// Scheduled faults (empty by default).
    pub faults: FaultPlan,
    /// Deadlock watchdog policy.
    pub watchdog: Watchdog,
}

impl SimConfig {
    /// A config injecting the given plan under the [`Watchdog::Auto`]
    /// policy.
    pub fn with_faults(faults: FaultPlan) -> Self {
        SimConfig {
            faults,
            watchdog: Watchdog::Auto,
        }
    }

    /// The concrete cycle budget for an `n`-op DFG (scaled by `iterations`
    /// for pipelined runs).
    pub fn budget(&self, n: usize, iterations: usize) -> usize {
        let base = (6 * n + 32) * iterations.max(1);
        match self.watchdog {
            Watchdog::Cycles(c) => c,
            Watchdog::Auto => {
                if self.faults.is_empty() {
                    base
                } else {
                    2 * base + self.faults.watchdog_slack()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert_and_auto_budget_matches_legacy() {
        let cfg = SimConfig::default();
        assert!(cfg.faults.is_empty());
        assert_eq!(cfg.budget(10, 1), 6 * 10 + 32);
        assert_eq!(cfg.budget(10, 4), (6 * 10 + 32) * 4);
        assert_eq!(cfg.faults.stuck_completion(OpId(0), 100), None);
        assert!(!cfg.faults.drops_pulse(OpId(0), 1));
        assert_eq!(cfg.faults.latch_delay(OpId(0), 1), 0);
        assert_eq!(cfg.faults.flip_at(0, 1), None);
    }

    #[test]
    fn stuck_faults_persist_from_their_cycle() {
        let plan = FaultPlan::single(5, FaultKind::StuckAtShort { op: OpId(2) });
        assert_eq!(plan.stuck_completion(OpId(2), 4), None);
        assert_eq!(plan.stuck_completion(OpId(2), 5), Some(true));
        assert_eq!(plan.stuck_completion(OpId(2), 50), Some(true));
        assert_eq!(plan.stuck_completion(OpId(1), 50), None);
        let long = FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(2) });
        assert_eq!(long.stuck_completion(OpId(2), 3), Some(false));
    }

    #[test]
    fn one_shot_faults_match_only_their_cycle() {
        let plan = FaultPlan::single(7, FaultKind::DropPulse { op: OpId(1) });
        assert!(plan.drops_pulse(OpId(1), 7));
        assert!(!plan.drops_pulse(OpId(1), 8));
        let mut spur = Vec::new();
        FaultPlan::single(3, FaultKind::SpuriousPulse { op: OpId(4) }).spurious_at(3, &mut spur);
        assert_eq!(spur, vec![OpId(4)]);
        let flip = FaultPlan::single(
            2,
            FaultKind::FlipState {
                controller: 1,
                bit: 0,
            },
        );
        assert_eq!(flip.flip_at(1, 2), Some(0));
        assert_eq!(flip.flip_at(1, 3), None);
        assert_eq!(flip.flip_at(0, 2), None);
    }

    #[test]
    fn clock_skew_stalls_a_span_and_adds_slack() {
        let plan = FaultPlan::single(
            4,
            FaultKind::ClockSkew {
                controller: 1,
                stall: 3,
            },
        );
        assert!(!plan.clock_stalled(1, 3));
        assert!(plan.clock_stalled(1, 4));
        assert!(plan.clock_stalled(1, 6));
        assert!(!plan.clock_stalled(1, 7));
        assert!(!plan.clock_stalled(0, 5));
        assert_eq!(plan.watchdog_slack(), 4 + 3);
        assert_eq!(plan.faults()[0].kind.tag(), "clock_skew");
    }

    #[test]
    fn faulty_auto_budget_gains_slack() {
        let mut plan = FaultPlan::single(
            9,
            FaultKind::DelayLatch {
                op: OpId(0),
                delay: 4,
            },
        );
        plan.push(Fault {
            at_cycle: 2,
            kind: FaultKind::DropPulse { op: OpId(1) },
        });
        assert_eq!(plan.watchdog_slack(), 9 + 4);
        let cfg = SimConfig::with_faults(plan);
        assert_eq!(cfg.budget(10, 1), 2 * (6 * 10 + 32) + 13);
        let fixed = SimConfig {
            faults: FaultPlan::empty(),
            watchdog: Watchdog::Cycles(17),
        };
        assert_eq!(fixed.budget(10, 1), 17);
    }
}
