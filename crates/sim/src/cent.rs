//! Simulation of the centralized CENT controller (Fig 4a): one FSM — the
//! synchronous product of the per-unit controllers — that still tracks
//! every TAU's completion independently.
//!
//! Semantically the product is *bisimilar* to the distributed realization
//! (that is what a synchronous product is), so CENT reaches every result in
//! exactly the same cycle as DIST — the paper's `LT_DIST = LT_CENT`
//! observation. What changes is the implementation cost: the reachable
//! composite state count grows exponentially with the number of
//! concurrently active TAUs (see [`tauhls_fsm::synchronous_product`]),
//! which is the argument for distribution.
//!
//! The engine exploits the bisimulation: it steps the *component*
//! controllers through the shared [`crate::kernel`] cycle loop — identical
//! to the distributed engine, draw for draw — and reports diagnostics as a
//! single centralized FSM whose state is the composite tuple name
//! (`S1.R4.S7'` …), exactly what the explicit product machine would show.
//! Building the exponential product is therefore optional and only needed
//! when the caller wants the machine itself (state counts, codegen):
//! [`CentControlUnit::generate`] builds it when its external-input count is
//! enumerable, [`CentControlUnit::without_product`] skips it for hot
//! simulation paths.

use crate::distributed::operand_values;
use crate::error::SimError;
use crate::fault::SimConfig;
use crate::kernel::{
    self, single_iter_diagnostics, CompletionFabric, DiagMode, FsmBank, FsmStyle, SingleIterHooks,
};
use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_fsm::{synchronous_product, DistributedControlUnit, Fsm};
use tauhls_sched::BoundDfg;

/// Name given to the centralized product machine and to the composite
/// controller snapshot in CENT diagnostics.
pub const CENT_FSM_NAME: &str = "CENT";

/// The product construction enumerates `2^k` input minterms per composite
/// state; mirrors `tauhls_fsm::product::MAX_EXTERNAL_INPUTS`.
const MAX_PRODUCT_INPUTS: usize = 16;

/// A centralized control unit: the per-unit component controllers plus,
/// optionally, their explicit synchronous product.
#[derive(Clone, Debug)]
pub struct CentControlUnit {
    cu: DistributedControlUnit,
    product: Option<Fsm>,
}

impl CentControlUnit {
    /// Generates the centralized controller for a bound DFG, building the
    /// explicit product machine when it is enumerable (at most 16 external
    /// inputs, i.e. telescopic-unit completion signals); otherwise the
    /// product is omitted and only simulation is available.
    pub fn generate(bound: &BoundDfg) -> Self {
        let cu = DistributedControlUnit::generate(bound);
        let product = build_product(&cu);
        CentControlUnit { cu, product }
    }

    /// Generates the centralized controller without building the explicit
    /// product machine — the cheap constructor for simulation-only use
    /// (e.g. Monte-Carlo batches), since the engine never needs it.
    pub fn without_product(bound: &BoundDfg) -> Self {
        CentControlUnit {
            cu: DistributedControlUnit::generate(bound),
            product: None,
        }
    }

    /// The component (per-unit) controllers the product is composed of.
    pub fn components(&self) -> &DistributedControlUnit {
        &self.cu
    }

    /// The explicit centralized product machine, if it was built.
    pub fn product(&self) -> Option<&Fsm> {
        self.product.as_ref()
    }

    /// Reachable state count of the centralized machine, if the product
    /// was built — the quantity the paper's state-explosion argument is
    /// about (compare [`DistributedControlUnit::total_states`]).
    pub fn product_states(&self) -> Option<usize> {
        self.product.as_ref().map(|f| f.num_states())
    }
}

/// Builds the synchronous product of the component controllers, or `None`
/// when the external-input count exceeds the enumeration limit (the
/// underlying constructor would panic; this engine stays panic-free).
fn build_product(cu: &DistributedControlUnit) -> Option<Fsm> {
    let refs: Vec<&Fsm> = cu.controllers().iter().map(|(_, f)| f).collect();
    if refs.is_empty() {
        return None;
    }
    let mut produced: Vec<&str> = Vec::new();
    for f in &refs {
        for out in f.outputs() {
            produced.push(out.as_str());
        }
    }
    let mut external: Vec<&str> = Vec::new();
    for f in &refs {
        for inp in f.inputs() {
            if !produced.contains(&inp.as_str()) && !external.contains(&inp.as_str()) {
                external.push(inp.as_str());
            }
        }
    }
    if external.len() > MAX_PRODUCT_INPUTS {
        return None;
    }
    Some(synchronous_product(CENT_FSM_NAME, &refs))
}

/// Simulates one iteration of the bound DFG under centralized CENT control
/// (fault-free, default watchdog).
///
/// `inputs` are the DFG's primary input values (defaults to zeros), used
/// both for the reference results and for operand-driven completion.
///
/// With the same RNG stream, the result is bit-identical to
/// [`crate::simulate_distributed`] — the two realizations are bisimilar;
/// only error diagnostics differ (a single composite controller snapshot
/// instead of per-unit ones).
pub fn simulate_cent(
    bound: &BoundDfg,
    cu: &CentControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    simulate_cent_with(bound, cu, model, inputs, rng, &SimConfig::default())
}

/// [`simulate_cent`] with a fault/watchdog configuration.
///
/// Faults are applied *after* every completion-model draw, so the RNG
/// stream is independent of the plan (see
/// [`crate::simulate_distributed_with`]).
pub fn simulate_cent_with(
    bound: &BoundDfg,
    cu: &CentControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let dfg = bound.dfg();
    model
        .validate(dfg.num_ops())
        .map_err(SimError::InvalidConfig)?;
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);

    let n = dfg.num_ops();
    let mut fabric = CompletionFabric::new(n);
    let bank = FsmBank::new(&cu.cu, bound.allocation().units().len());
    let hooks = SingleIterHooks::new(
        bound,
        operand_values(bound, input_vals, &values),
        DiagMode::Composite(CENT_FSM_NAME.to_string()),
    );
    let mut style = FsmStyle {
        bank,
        hooks,
        dfg,
        model,
    };
    let cycle = kernel::run(&mut style, &mut fabric, rng, config, config.budget(n, 1))?;

    let FsmStyle { bank, hooks, .. } = style;
    let SingleIterHooks {
        completion_cycle,
        start_cycle,
        unit_busy,
        diag,
        ..
    } = hooks;
    let result = SimResult {
        cycles: cycle,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    };
    if !config.faults.is_empty() {
        if let Err(msg) = result.verify(bound) {
            return Err(SimError::Desync(single_iter_diagnostics(
                &diag,
                &bank,
                &fabric,
                cycle,
                format!("post-run invariant violated: {msg}"),
            )));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::simulate_distributed;
    use crate::fault::{FaultKind, FaultPlan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fir3, fir5};
    use tauhls_dfg::OpId;
    use tauhls_sched::Allocation;

    #[test]
    fn cent_is_bit_identical_to_distributed() {
        for (g, alloc) in [
            (fir3(), Allocation::paper(2, 1, 0)),
            (fir5(), Allocation::paper(2, 1, 0)),
            (diffeq(), Allocation::paper(2, 1, 1)),
        ] {
            let bound = BoundDfg::bind(&g, &alloc);
            let dist_cu = DistributedControlUnit::generate(&bound);
            let cent_cu = CentControlUnit::without_product(&bound);
            for seed in 0..20 {
                let model = CompletionModel::Bernoulli { p: 0.6 };
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                let d = simulate_distributed(&bound, &dist_cu, &model, None, &mut r1)
                    .expect("fault-free dist");
                let c = simulate_cent(&bound, &cent_cu, &model, None, &mut r2)
                    .expect("fault-free cent");
                assert_eq!(d.cycles, c.cycles);
                assert_eq!(d.completion_cycle, c.completion_cycle);
                assert_eq!(d.start_cycle, c.start_cycle);
                assert_eq!(d.unit_busy_cycles, c.unit_busy_cycles);
                assert_eq!(d.values, c.values);
            }
        }
    }

    #[test]
    fn product_machine_matches_component_semantics() {
        // fir3 on 2 multipliers + 1 adder keeps the product small enough
        // to build; its reachable state count must be at least the number
        // of cycles the longest run walks through, and at least as large
        // as any single component.
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(2, 1, 0));
        let cu = CentControlUnit::generate(&bound);
        let product = cu.product().expect("fir3 product is enumerable");
        assert_eq!(product.name(), CENT_FSM_NAME);
        let max_component = cu
            .components()
            .controllers()
            .iter()
            .map(|(_, f)| f.num_states())
            .max()
            .expect("controllers");
        assert!(product.num_states() >= max_component);
        // The composite initial state is the tuple of component initials.
        let init = product.state_name(product.initial());
        assert_eq!(init.split('.').count(), cu.components().controllers().len());
    }

    #[test]
    fn cent_diagnostics_show_one_composite_controller() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = CentControlUnit::without_product(&bound);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg =
            SimConfig::with_faults(FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(0) }));
        let err = simulate_cent_with(
            &bound,
            &cu,
            &CompletionModel::AlwaysShort,
            None,
            &mut rng,
            &cfg,
        )
        .expect_err("stuck-at-long deadlocks");
        let SimError::Deadlock(diag) = err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(diag.controllers.len(), 1);
        assert_eq!(diag.controllers[0].fsm, CENT_FSM_NAME);
        // Composite state: one component state per controller, dot-joined.
        assert_eq!(
            diag.controllers[0].state.split('.').count(),
            cu.components().controllers().len()
        );
    }

    #[test]
    fn short_table_is_invalid_config() {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = CentControlUnit::without_product(&bound);
        let mut rng = StdRng::seed_from_u64(0);
        let err = simulate_cent(
            &bound,
            &cu,
            &CompletionModel::Table(vec![true]),
            None,
            &mut rng,
        )
        .expect_err("short table rejected");
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }
}
