//! Completion models: how a simulated TAU decides short vs long.

use rand::Rng;
use tauhls_datapath::{ArrayMultiplier, RippleCarryAdder, RippleCarrySubtractor, Tau};
use tauhls_dfg::OpKind;

/// Telescopic datapath instances per operation kind, used by the
/// operand-driven completion model.
#[derive(Clone, Debug)]
pub struct TauLibrary {
    /// Telescoped multiplier (used for [`OpKind::Mul`]).
    pub mul: Option<Tau<ArrayMultiplier>>,
    /// Telescoped adder (used for [`OpKind::Add`]).
    pub add: Option<Tau<RippleCarryAdder>>,
    /// Telescoped subtractor (used for [`OpKind::Sub`] / [`OpKind::Lt`]).
    pub sub: Option<Tau<RippleCarrySubtractor>>,
    /// Operand width used to mask values before delay evaluation.
    pub width: u32,
}

impl TauLibrary {
    /// The paper-style configuration: only the multiplier is telescopic.
    /// `short_levels` is the multiplier's SD threshold in gate levels.
    pub fn multiplier_only(width: u32, short_levels: u32) -> Self {
        TauLibrary {
            mul: Some(Tau::new(ArrayMultiplier::new(width), short_levels)),
            add: None,
            sub: None,
            width,
        }
    }

    /// The completion signal for an operation executing on a telescopic
    /// unit, or `None` if the kind is not telescoped in this library.
    pub fn completion(&self, kind: OpKind, a: i64, b: i64) -> Option<bool> {
        let mask = if self.width >= 64 {
            !0u64
        } else {
            (1u64 << self.width) - 1
        };
        let (au, bu) = (a as u64 & mask, b as u64 & mask);
        match kind {
            OpKind::Mul => self.mul.as_ref().map(|t| t.completion(au, bu)),
            OpKind::Add => self.add.as_ref().map(|t| t.completion(au, bu)),
            OpKind::Sub | OpKind::Lt => self.sub.as_ref().map(|t| t.completion(au, bu)),
        }
    }
}

/// How completion signals are produced during simulation.
#[derive(Clone, Debug)]
pub enum CompletionModel {
    /// Every telescopic operation completes short with probability `p`,
    /// independently (the paper's analytic sweep parameter).
    Bernoulli {
        /// Short-completion probability in `[0, 1]`.
        p: f64,
    },
    /// Every operation completes short — the best case.
    AlwaysShort,
    /// Every operation needs the long delay — the worst case.
    AlwaysLong,
    /// A fixed outcome per operation (indexed by [`tauhls_dfg::OpId`]) —
    /// used to drive two controller styles with *identical* completion
    /// draws for a fair (coupled) latency comparison.
    Table(Vec<bool>),
    /// Completion computed from actual operand values through bit-level
    /// telescopic units.
    OperandDriven(TauLibrary),
}

impl CompletionModel {
    /// Draws a per-operation completion table for [`CompletionModel::Table`].
    pub fn draw_table(num_ops: usize, p: f64, rng: &mut impl Rng) -> Self {
        CompletionModel::Table((0..num_ops).map(|_| rng.random_bool(p)).collect())
    }

    /// Validates the model against a DFG of `num_ops` operations.
    ///
    /// A [`CompletionModel::Table`] shorter than the op-id universe would
    /// panic on the first out-of-range draw (sparse ids, or a user-built
    /// table), breaking the crate's panic-free contract; the simulators
    /// surface this as [`crate::SimError::InvalidConfig`] at entry
    /// instead.
    pub fn validate(&self, num_ops: usize) -> Result<(), String> {
        if let CompletionModel::Table(t) = self {
            if t.len() < num_ops {
                return Err(format!(
                    "completion table has {} entries but the DFG has {num_ops} operations",
                    t.len()
                ));
            }
        }
        Ok(())
    }

    /// Draws/computes the completion signal for one telescopic operation.
    ///
    /// `op` identifies the operation (used by the table model); `a`/`b` are
    /// the operand values (used only by the operand-driven model).
    pub fn completion(
        &self,
        op: tauhls_dfg::OpId,
        kind: OpKind,
        a: i64,
        b: i64,
        rng: &mut impl Rng,
    ) -> bool {
        match self {
            CompletionModel::Bernoulli { p } => rng.random_bool(*p),
            CompletionModel::AlwaysShort => true,
            CompletionModel::AlwaysLong => false,
            CompletionModel::Table(t) => t[op.0],
            CompletionModel::OperandDriven(lib) => {
                // A kind without a telescopic instance behaves fixed-delay
                // (always completes in its single cycle).
                lib.completion(kind, a, b).unwrap_or(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = CompletionModel::Bernoulli { p: 0.7 };
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.completion(tauhls_dfg::OpId(0), OpKind::Mul, 0, 0, &mut rng))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(CompletionModel::AlwaysShort.completion(
            tauhls_dfg::OpId(0),
            OpKind::Mul,
            9,
            9,
            &mut rng
        ));
        assert!(!CompletionModel::AlwaysLong.completion(
            tauhls_dfg::OpId(0),
            OpKind::Mul,
            9,
            9,
            &mut rng
        ));
    }

    #[test]
    fn operand_driven_tracks_magnitude() {
        let mut rng = StdRng::seed_from_u64(3);
        let lib = TauLibrary::multiplier_only(16, 20);
        let m = CompletionModel::OperandDriven(lib);
        assert!(m.completion(tauhls_dfg::OpId(0), OpKind::Mul, 3, 5, &mut rng));
        assert!(!m.completion(tauhls_dfg::OpId(0), OpKind::Mul, 0x7FFF, 0x7FFF, &mut rng));
        // Adds are fixed-delay in the multiplier-only library.
        assert!(m.completion(tauhls_dfg::OpId(0), OpKind::Add, 0x7FFF, 0x7FFF, &mut rng));
    }

    #[test]
    fn negative_operands_masked() {
        let mut rng = StdRng::seed_from_u64(4);
        let lib = TauLibrary::multiplier_only(16, 20);
        let m = CompletionModel::OperandDriven(lib);
        // -1 masks to 0xFFFF: a full-width operand, long delay.
        assert!(!m.completion(tauhls_dfg::OpId(0), OpKind::Mul, -1, -1, &mut rng));
    }
}
