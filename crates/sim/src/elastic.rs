//! The ELASTIC (GALS) controller style: the distributed control unit with
//! every per-unit controller on its own local clock.
//!
//! Local clocks are modeled against a common fabric cycle: within every
//! skew window of `skew_bound + 1` fabric cycles, each controller's clock
//! stalls for a seed-driven prefix of `0..=skew_bound` cycles and ticks on
//! the rest, so every clock ticks at least once per window (bounded skew,
//! as in gradient/PALS clocking). A controller whose clock does not tick
//! is completely frozen for the fabric cycle: no phase decode, no
//! completion draw, no busy accounting, no transition.
//!
//! Completions cross clock domains through a handshake: a result latched
//! at fabric cycle `t` becomes visible to *other* controllers' `C_CO`
//! inputs at `t + sync_latency` (two-flop-style synchronizer latency,
//! measured in fabric cycles). With `sync_latency > 0` the same-cycle
//! combinational pulse chaining of the synchronous styles is cut — every
//! cross-controller completion transfer is latched.
//!
//! Setting both knobs to zero ([`ElasticSpec::zero`]) collapses the style
//! back to a single clock domain: the run is then bisimilar to the
//! distributed style cycle for cycle (asserted by tests here and by the
//! dedicated bisimulation suite).
//!
//! Skew schedules are drawn from a dedicated seed — never from the trial
//! RNG — so an elastic leg riding alongside synchronous legs leaves their
//! RNG streams untouched, exactly like the fault overlays.

use crate::batch::derive_seed;
use crate::error::SimError;
use crate::fault::{FaultPlan, SimConfig};
use crate::kernel::{
    self, single_iter_diagnostics, ClockFabric, CompletionFabric, DiagMode, ElasticSpec, FsmBank,
    FsmStyle, OpSet, PulseHooks, SingleIterHooks,
};
use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{Dfg, OpId};
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;

/// Salt xored into the base seed before deriving per-trial skew seeds, so
/// the skew stream is unrelated to the completion-draw stream of the same
/// `(base_seed, job_id, trial)` coordinates.
pub const ELASTIC_SKEW_SALT: u64 = 0x656C_6173_7469_6373;

/// Derives the skew-schedule seed for one trial of one job — the elastic
/// counterpart of [`derive_seed`], on its own salted stream.
pub fn elastic_trial_skew_seed(base_seed: u64, job_id: u64, trial: u64) -> u64 {
    derive_seed(base_seed ^ ELASTIC_SKEW_SALT, job_id, trial)
}

/// The watchdog budget of an elastic run: the synchronous budget stretched
/// by the worst-case clock-stall factor (`period`) plus one handshake
/// latency per completion transfer. Collapses to the synchronous budget at
/// [`ElasticSpec::zero`], so the zero-spec bisimulation covers the
/// watchdog too.
pub(crate) fn elastic_budget(config: &SimConfig, n: usize, spec: &ElasticSpec) -> usize {
    config.budget(n, 1) * spec.period() as usize + spec.sync_latency as usize * (n + 1)
}

/// [`PulseHooks`] of the elastic style: the single-iteration hooks wrapped
/// with a [`ClockFabric`] that gates controller ticks and delays
/// cross-domain completion visibility.
pub(crate) struct ElasticHooks<'a> {
    pub(crate) inner: SingleIterHooks<'a>,
    pub(crate) clock: ClockFabric,
}

impl PulseHooks for ElasticHooks<'_> {
    fn exec(
        &mut self,
        fabric: &CompletionFabric,
        dfg: &Dfg,
        op: OpId,
        stage: u32,
        cycle: usize,
        faulty: bool,
    ) -> Result<(), String> {
        self.inner.exec(fabric, dfg, op, stage, cycle, faulty)
    }

    fn operands(&self, op: OpId) -> (i64, i64) {
        self.inner.operands(op)
    }

    fn busy(&mut self, fabric: &CompletionFabric, op: OpId, unit: usize) {
        self.inner.busy(fabric, op, unit);
    }

    fn cco(
        &self,
        fabric: &CompletionFabric,
        pulses: &OpSet,
        p: usize,
        cur: OpId,
        cycle: usize,
    ) -> bool {
        if self.clock.combinational() {
            // Zero handshake latency: synchronous semantics (latched done
            // or a same-cycle pulse), the degenerate one-domain case.
            self.inner.cco(fabric, pulses, p, cur, cycle)
        } else {
            // Cross-domain transfer is latched: a completion is seen only
            // once its handshake has crossed, never combinationally.
            self.clock.done_visible(p, cycle)
        }
    }

    fn ticks(&self, ctrl: usize, cycle: usize, faults: &FaultPlan) -> bool {
        self.clock.ticks(ctrl, cycle) && !faults.clock_stalled(ctrl, cycle)
    }

    fn skip_latch(&self, fabric: &CompletionFabric, op: OpId) -> bool {
        self.inner.skip_latch(fabric, op)
    }

    fn latch(&mut self, fabric: &mut CompletionFabric, op: OpId, at: usize) {
        // Capture freshness before the inner latch flips the done bit:
        // only a *first* latch starts the handshake (re-latches of an
        // already-done op must not move the visibility point).
        let fresh = !fabric.done().contains(op);
        self.inner.latch(fabric, op, at);
        if fresh {
            self.clock.on_latch(op, at);
        }
    }

    fn running(&self, fabric: &CompletionFabric) -> bool {
        self.inner.running(fabric)
    }

    fn diagnostics(
        &self,
        bank: &FsmBank,
        fabric: &CompletionFabric,
        cycle: usize,
        reason: String,
    ) -> Box<crate::error::Diagnostics> {
        self.inner.diagnostics(bank, fabric, cycle, reason)
    }
}

/// Simulates one iteration of the bound DFG under its distributed control
/// unit with **elastic** (GALS) clocking: per-controller local clocks with
/// seed-driven bounded skew and handshake-latched cross-domain completion
/// transfer. Fault-free, default watchdog.
///
/// `skew_seed` fully determines every controller's stall schedule (see
/// [`elastic_trial_skew_seed`] for the batch derivation); the trial `rng`
/// is consumed exactly as the distributed style consumes it, so elastic
/// and distributed legs can ride the same trial stream.
pub fn simulate_elastic(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    spec: ElasticSpec,
    skew_seed: u64,
) -> Result<SimResult, SimError> {
    simulate_elastic_with(
        bound,
        cu,
        model,
        inputs,
        rng,
        &SimConfig::default(),
        spec,
        skew_seed,
    )
}

/// [`simulate_elastic`] with a fault/watchdog configuration.
///
/// All six synchronous fault kinds compose with the clocking model, and
/// the `ClockSkew` kind — inert in the synchronous engines — freezes the
/// targeted controller for its stall span here. Faults are applied after
/// every completion-model draw, so an empty plan reproduces the fault-free
/// run bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn simulate_elastic_with(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
    spec: ElasticSpec,
    skew_seed: u64,
) -> Result<SimResult, SimError> {
    simulate_elastic_clocked(bound, cu, model, inputs, rng, config, spec, |n| {
        ClockFabric::elastic(n, spec, skew_seed)
    })
}

/// [`simulate_elastic_with`] under the **saturated** schedule — the worst
/// schedule in `spec`'s space (every controller stalls the full
/// `skew_bound` in every window). Schedule-independent by construction,
/// it bounds every seeded run from above; latency summaries use it for
/// the elastic `worst` cell so the envelope brackets the seeded averages
/// regardless of which skew seeds the trials drew.
pub fn simulate_elastic_saturated(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
    spec: ElasticSpec,
) -> Result<SimResult, SimError> {
    simulate_elastic_clocked(bound, cu, model, inputs, rng, config, spec, |n| {
        ClockFabric::elastic_saturated(n, spec)
    })
}

#[allow(clippy::too_many_arguments)]
fn simulate_elastic_clocked(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
    spec: ElasticSpec,
    make_clock: impl FnOnce(usize) -> ClockFabric,
) -> Result<SimResult, SimError> {
    let dfg = bound.dfg();
    model
        .validate(dfg.num_ops())
        .map_err(SimError::InvalidConfig)?;
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);

    let n = dfg.num_ops();
    let mut fabric = CompletionFabric::new(n);
    let bank = FsmBank::new(cu, bound.allocation().units().len());
    let hooks = ElasticHooks {
        inner: SingleIterHooks::new(
            bound,
            crate::distributed::operand_values(bound, input_vals, &values),
            DiagMode::PerUnit,
        ),
        clock: make_clock(n),
    };
    let mut style = FsmStyle {
        bank,
        hooks,
        dfg,
        model,
    };
    let budget = elastic_budget(config, n, &spec);
    let cycle = kernel::run(&mut style, &mut fabric, rng, config, budget)?;

    let FsmStyle { bank, hooks, .. } = style;
    let ElasticHooks { inner, .. } = hooks;
    let SingleIterHooks {
        completion_cycle,
        start_cycle,
        unit_busy,
        diag,
        ..
    } = inner;
    let result = SimResult {
        cycles: cycle,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    };
    // Same post-run legality check as the synchronous engines: a faulty
    // run that terminates with out-of-order latches is a detection, not a
    // result.
    if !config.faults.is_empty() {
        if let Err(msg) = result.verify(bound) {
            return Err(SimError::Desync(single_iter_diagnostics(
                &diag,
                &bank,
                &fabric,
                cycle,
                format!("post-run invariant violated: {msg}"),
            )));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::simulate_distributed_with;
    use crate::fault::FaultKind;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use tauhls_dfg::benchmarks::{diffeq, fir3, fir5};
    use tauhls_sched::Allocation;

    fn fir5_setup() -> (BoundDfg, DistributedControlUnit) {
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        (bound, cu)
    }

    #[test]
    fn zero_spec_is_bisimilar_to_distributed() {
        // ELASTIC with skew bound 0 and sync latency 0 must reproduce the
        // distributed run in full: cycles, per-op start/completion cycles,
        // busy counters and values — for any model and any skew seed.
        for (g, alloc) in [
            (fir3(), Allocation::paper(2, 1, 0)),
            (fir5(), Allocation::paper(2, 1, 0)),
            (diffeq(), Allocation::paper(2, 1, 1)),
        ] {
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            for seed in 0..20u64 {
                let model = CompletionModel::Bernoulli { p: 0.6 };
                let cfg = SimConfig::default();
                let mut r1 = StdRng::seed_from_u64(seed);
                let dist =
                    simulate_distributed_with(&bound, &cu, &model, None, &mut r1, &cfg).unwrap();
                let mut r2 = StdRng::seed_from_u64(seed);
                let elas = simulate_elastic_with(
                    &bound,
                    &cu,
                    &model,
                    None,
                    &mut r2,
                    &cfg,
                    ElasticSpec::zero(),
                    seed.wrapping_mul(77), // the skew seed must be irrelevant
                )
                .unwrap();
                assert_eq!(dist, elas, "seed {seed}");
                // RNG streams stay aligned after the run too.
                assert_eq!(r1.next_u64(), r2.next_u64());
            }
        }
    }

    #[test]
    fn skewed_runs_are_legal_deterministic_and_never_faster() {
        let (bound, cu) = fir5_setup();
        let n = bound.dfg().num_ops();
        let cfg = SimConfig::default();
        for spec in [
            ElasticSpec::default(),
            ElasticSpec {
                skew_bound: 2,
                sync_latency: 1,
            },
            ElasticSpec {
                skew_bound: 0,
                sync_latency: 2,
            },
            ElasticSpec {
                skew_bound: 3,
                sync_latency: 0,
            },
        ] {
            for seed in 0..10u64 {
                // Coupled draw: the same completion table feeds both
                // styles, so the comparison is per-trial.
                let mut trng = StdRng::seed_from_u64(seed);
                let table = CompletionModel::draw_table(n, 0.5, &mut trng);
                let mut r1 = StdRng::seed_from_u64(1);
                let dist =
                    simulate_distributed_with(&bound, &cu, &table, None, &mut r1, &cfg).unwrap();
                let mut r2 = StdRng::seed_from_u64(1);
                let skew_seed = derive_seed(3, 0, seed);
                let run = |rng: &mut StdRng| {
                    simulate_elastic_with(&bound, &cu, &table, None, rng, &cfg, spec, skew_seed)
                        .unwrap()
                };
                let elas = run(&mut r2);
                elas.verify(&bound).unwrap();
                assert!(
                    dist.cycles <= elas.cycles,
                    "elastic beat dist under {spec:?}: {} < {}",
                    elas.cycles,
                    dist.cycles
                );
                // Same seeds -> bit-identical rerun.
                let mut r3 = StdRng::seed_from_u64(1);
                assert_eq!(elas, run(&mut r3));
                let _ = trng.next_u64();
            }
        }
    }

    #[test]
    fn schedule_space_extremes_bracket_every_seeded_run() {
        // The latency-summary envelope runs the stall-free floor and the
        // saturated ceiling; stalls only ever delay events, so every
        // seeded schedule must land between the two for the same table.
        let (bound, cu) = fir5_setup();
        let n = bound.dfg().num_ops();
        let cfg = SimConfig::default();
        let spec = ElasticSpec {
            skew_bound: 3,
            sync_latency: 1,
        };
        let floor_spec = ElasticSpec {
            skew_bound: 0,
            ..spec
        };
        for seed in 0..10u64 {
            let mut trng = StdRng::seed_from_u64(seed);
            let table = CompletionModel::draw_table(n, 0.5, &mut trng);
            let mut r = StdRng::seed_from_u64(1);
            let floor =
                simulate_elastic_with(&bound, &cu, &table, None, &mut r, &cfg, floor_spec, 0)
                    .unwrap();
            let mut r = StdRng::seed_from_u64(1);
            let ceil =
                simulate_elastic_saturated(&bound, &cu, &table, None, &mut r, &cfg, spec).unwrap();
            assert!(floor.cycles <= ceil.cycles);
            for skew_seed in 0..20u64 {
                let mut r = StdRng::seed_from_u64(1);
                let e =
                    simulate_elastic_with(&bound, &cu, &table, None, &mut r, &cfg, spec, skew_seed)
                        .unwrap();
                assert!(
                    floor.cycles <= e.cycles && e.cycles <= ceil.cycles,
                    "seed {seed} skew {skew_seed}: {} outside [{}, {}]",
                    e.cycles,
                    floor.cycles,
                    ceil.cycles
                );
            }
        }
    }

    #[test]
    fn skew_seed_changes_schedules_but_not_legality() {
        let (bound, cu) = fir5_setup();
        let cfg = SimConfig::default();
        let spec = ElasticSpec {
            skew_bound: 3,
            sync_latency: 1,
        };
        let mut distinct = std::collections::HashSet::new();
        for skew_seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(5);
            let r = simulate_elastic_with(
                &bound,
                &cu,
                &CompletionModel::AlwaysShort,
                None,
                &mut rng,
                &cfg,
                spec,
                skew_seed,
            )
            .unwrap();
            r.verify(&bound).unwrap();
            distinct.insert(r.cycles);
        }
        // Different skew seeds must actually exercise different stall
        // schedules (not all collapse to one latency).
        assert!(distinct.len() > 1, "all skew seeds gave {distinct:?}");
    }

    #[test]
    fn clock_skew_fault_stretches_the_run_and_composes() {
        let (bound, cu) = fir5_setup();
        let spec = ElasticSpec {
            skew_bound: 1,
            sync_latency: 1,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let clean = simulate_elastic_with(
            &bound,
            &cu,
            &CompletionModel::AlwaysShort,
            None,
            &mut rng,
            &SimConfig::default(),
            spec,
            7,
        )
        .unwrap();
        // Freeze controller 0 for 5 cycles mid-run: the run must still
        // terminate legally (a frozen clock loses no completions) and can
        // only get slower.
        let cfg = SimConfig::with_faults(FaultPlan::single(
            2,
            FaultKind::ClockSkew {
                controller: 0,
                stall: 5,
            },
        ));
        let mut rng = StdRng::seed_from_u64(2);
        let stalled = simulate_elastic_with(
            &bound,
            &cu,
            &CompletionModel::AlwaysShort,
            None,
            &mut rng,
            &cfg,
            spec,
            7,
        )
        .unwrap();
        stalled.verify(&bound).unwrap();
        assert!(
            stalled.cycles >= clean.cycles,
            "{} < {}",
            stalled.cycles,
            clean.cycles
        );
    }

    #[test]
    fn synchronous_fault_kinds_compose_with_elastic_clocking() {
        use tauhls_dfg::OpId;
        let (bound, cu) = fir5_setup();
        let spec = ElasticSpec::default();
        let plans = [
            FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(0) }),
            FaultPlan::single(1, FaultKind::StuckAtShort { op: OpId(1) }),
            FaultPlan::single(2, FaultKind::DropPulse { op: OpId(2) }),
            FaultPlan::single(2, FaultKind::SpuriousPulse { op: OpId(3) }),
            FaultPlan::single(
                1,
                FaultKind::DelayLatch {
                    op: OpId(1),
                    delay: 2,
                },
            ),
            FaultPlan::single(
                2,
                FaultKind::FlipState {
                    controller: 0,
                    bit: 0,
                },
            ),
        ];
        for plan in plans {
            let cfg = SimConfig::with_faults(plan);
            let mut rng = StdRng::seed_from_u64(3);
            // Every kind must resolve to a structured verdict — a legal
            // (survived) run or a detection — never a panic.
            match simulate_elastic_with(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng,
                &cfg,
                spec,
                11,
            ) {
                Ok(r) => r.verify(&bound).unwrap(),
                Err(SimError::Deadlock(_) | SimError::Desync(_)) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
    }

    #[test]
    fn skew_seed_derivation_is_salted_and_collision_free() {
        // The skew stream must differ from the completion stream at the
        // same coordinates.
        assert_ne!(elastic_trial_skew_seed(7, 0, 3), derive_seed(7, 0, 3));
        let mut seeds: Vec<u64> = (0..10_000)
            .map(|t| elastic_trial_skew_seed(7, 0, t))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn elastic_budget_collapses_at_zero_spec() {
        let cfg = SimConfig::default();
        assert_eq!(
            elastic_budget(&cfg, 9, &ElasticSpec::zero()),
            cfg.budget(9, 1)
        );
        let spec = ElasticSpec {
            skew_bound: 2,
            sync_latency: 3,
        };
        assert_eq!(
            elastic_budget(&cfg, 9, &spec),
            cfg.budget(9, 1) * 3 + 3 * 10
        );
    }

    #[test]
    fn window_stall_ticks_at_least_once_per_window() {
        for seed in 0..50u64 {
            let spec = ElasticSpec {
                skew_bound: 3,
                sync_latency: 1,
            };
            let clock = ClockFabric::elastic(8, spec, seed);
            for ctrl in 0..6usize {
                for window in 0..20usize {
                    let period = spec.period() as usize;
                    let ticks: usize = (0..period)
                        .filter(|pos| clock.ticks(ctrl, 1 + window * period + pos))
                        .count();
                    assert!(ticks >= 1, "seed {seed} ctrl {ctrl} window {window}");
                }
            }
        }
    }
}
