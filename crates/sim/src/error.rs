//! Structured simulation failures: instead of panicking, every simulator
//! classifies an abnormal run as a [`SimError`] carrying a
//! [`Diagnostics`] snapshot of the control state at the cycle the problem
//! was detected — the raw material for deadlock triage and for the
//! resilience metrics (detection rate, detection latency).

use std::fmt;

/// The control state of one unit controller at a diagnostic snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerSnapshot {
    /// Unit index (into [`tauhls_sched::Allocation::units`]).
    pub unit: usize,
    /// The controller FSM's name (e.g. `D-FSM-M1`).
    pub fsm: String,
    /// The symbolic name of the state the FSM was latched in, or a
    /// `<invalid:N>` marker when the state register held no valid encoding.
    pub state: String,
}

/// A snapshot of the distributed control state at the moment a deadlock or
/// desynchronization was detected.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostics {
    /// The 1-based cycle at which the condition was detected.
    pub cycle: usize,
    /// A human-readable description of the violated condition.
    pub reason: String,
    /// Per-controller latched FSM state.
    pub controllers: Vec<ControllerSnapshot>,
    /// Latched completion (`done`) flag per operation.
    pub done: Vec<bool>,
    /// Operations whose completion was still outstanding (token view: each
    /// op carries one completion token per iteration; these never fired).
    pub outstanding: Vec<usize>,
    /// Completion pulses asserted in the detection cycle.
    pub pulses: Vec<usize>,
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: {}; outstanding ops {:?}; controller states [",
            self.cycle, self.reason, self.outstanding
        )?;
        for (i, c) in self.controllers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", c.fsm, c.state)?;
        }
        write!(f, "]")
    }
}

/// A structured simulation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The watchdog budget expired with completions still outstanding: the
    /// controllers stopped making progress.
    ///
    /// The snapshot is boxed so the `Err` variant stays pointer-sized on
    /// the hot `Result` path.
    Deadlock(Box<Diagnostics>),
    /// The controllers lost coordination: an operation fired before its
    /// producers completed, a result latched before its true completion,
    /// the run finished with an illegal execution record, or a controller
    /// FSM lost determinism/completeness at runtime.
    Desync(Box<Diagnostics>),
    /// A controller state name did not follow the `S{op}('...)` / `R{op}`
    /// convention the simulator decodes.
    UnknownState {
        /// The controller FSM's name.
        fsm: String,
        /// The offending state name.
        state: String,
    },
    /// The simulation request itself was malformed (e.g. zero trials or
    /// zero iterations).
    InvalidConfig(String),
    /// The batch run was cancelled through its
    /// [`CancelToken`](crate::CancelToken) before every trial completed;
    /// partial statistics were discarded.
    Cancelled,
}

impl SimError {
    /// The diagnostic snapshot, for the deadlock/desync variants.
    pub fn diagnostics(&self) -> Option<&Diagnostics> {
        match self {
            SimError::Deadlock(d) | SimError::Desync(d) => Some(&**d),
            _ => None,
        }
    }

    /// The 1-based cycle at which the failure was detected, when known.
    pub fn detected_cycle(&self) -> Option<usize> {
        self.diagnostics().map(|d| d.cycle)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => write!(f, "distributed control deadlocked: {d}"),
            SimError::Desync(d) => write!(f, "controllers desynchronized: {d}"),
            SimError::UnknownState { fsm, state } => {
                write!(f, "unrecognized controller state name {state} in {fsm}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::Cancelled => write!(f, "simulation cancelled before completion"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostics {
        Diagnostics {
            cycle: 7,
            reason: "no progress".to_string(),
            controllers: vec![ControllerSnapshot {
                unit: 0,
                fsm: "D-FSM-M1".to_string(),
                state: "R1".to_string(),
            }],
            done: vec![true, false],
            outstanding: vec![1],
            pulses: vec![],
        }
    }

    #[test]
    fn display_names_cycle_states_and_outstanding() {
        let e = SimError::Deadlock(Box::new(diag()));
        let s = e.to_string();
        assert!(s.contains("cycle 7"));
        assert!(s.contains("D-FSM-M1=R1"));
        assert!(s.contains("[1]"));
        assert_eq!(e.detected_cycle(), Some(7));
    }

    #[test]
    fn accessors_cover_variants() {
        assert!(SimError::Desync(Box::new(diag())).diagnostics().is_some());
        let e = SimError::UnknownState {
            fsm: "f".to_string(),
            state: "X9".to_string(),
        };
        assert!(e.diagnostics().is_none());
        assert!(e.to_string().contains("X9"));
        assert!(SimError::InvalidConfig("trials == 0".to_string())
            .to_string()
            .contains("trials"));
    }
}
