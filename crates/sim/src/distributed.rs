//! Cycle-accurate simulation of the distributed control unit: every
//! arithmetic unit controller is stepped as a synchronous FSM, completion
//! signals propagate combinationally within the cycle, and consumers latch
//! (`done` flags) so a completion pulse is never lost.
//!
//! The engine is panic-free: abnormal conditions (deadlock, controller
//! desynchronization, malformed controllers) come back as [`SimError`]
//! values with a [`Diagnostics`] snapshot. [`simulate_distributed_with`]
//! additionally threads a [`SimConfig`] through the cycle loop, letting a
//! [`FaultPlan`](crate::FaultPlan) perturb the completion-signal fabric;
//! with the default (empty) config the sampling order, RNG stream and
//! results are identical to the fault-free engine.

use crate::error::{ControllerSnapshot, Diagnostics, SimError};
use crate::fault::SimConfig;
use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{OpId, Operand};
use tauhls_fsm::{DistributedControlUnit, Fsm, StateId};
use tauhls_sched::BoundDfg;

/// What a controller state means for its unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Executing op at the given telescopic stage (0 = the first, shortest
    /// attempt; stage `k` is the state with `k` primes). The unit's
    /// stage-completion signal is sampled in every non-final stage.
    Exec(OpId, u32),
    /// Waiting for predecessors of the op.
    Ready(OpId),
}

/// Decodes the `S{op}('...)` / `R{op}` state-name convention; `None` when
/// the name does not follow it (a controller-generation bug, reported as
/// [`SimError::UnknownState`] by the simulators).
pub(crate) fn parse_phase(name: &str) -> Option<Phase> {
    if let Some(rest) = name.strip_prefix('S') {
        let stage = rest.chars().rev().take_while(|&c| c == '\'').count() as u32;
        let core = &rest[..rest.len() - stage as usize];
        Some(Phase::Exec(OpId(core.parse().ok()?), stage))
    } else if let Some(rest) = name.strip_prefix('R') {
        Some(Phase::Ready(OpId(rest.parse().ok()?)))
    } else {
        None
    }
}

/// Builds the per-controller state snapshot for a [`Diagnostics`] record.
pub(crate) fn controller_snapshots(
    fsms: &[(usize, &Fsm)],
    states: &[StateId],
) -> Vec<ControllerSnapshot> {
    fsms.iter()
        .zip(states)
        .map(|((u, f), &st)| ControllerSnapshot {
            unit: *u,
            fsm: f.name().to_string(),
            state: f
                .state_name_opt(st)
                .map(str::to_string)
                .unwrap_or_else(|| format!("<invalid:{}>", st.0)),
        })
        .collect()
}

fn diagnostics(
    cycle: usize,
    reason: String,
    fsms: &[(usize, &Fsm)],
    states: &[StateId],
    done: &[bool],
    pulses: &[OpId],
) -> Box<Diagnostics> {
    Box::new(Diagnostics {
        cycle,
        reason,
        controllers: controller_snapshots(fsms, states),
        done: done.to_vec(),
        outstanding: done
            .iter()
            .enumerate()
            .filter(|(_, &d)| !d)
            .map(|(i, _)| i)
            .collect(),
        pulses: pulses.iter().map(|o| o.0).collect(),
    })
}

/// Simulates one iteration of the bound DFG under its distributed control
/// unit (fault-free, default watchdog).
///
/// `inputs` are the DFG's primary input values (defaults to zeros), used
/// both for the reference results and for operand-driven completion.
///
/// A [`SimError::Deadlock`] from a fault-free run indicates a
/// controller-generation bug.
pub fn simulate_distributed(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    simulate_distributed_with(bound, cu, model, inputs, rng, &SimConfig::default())
}

/// [`simulate_distributed`] with a fault/watchdog configuration.
///
/// Faults are applied *after* every completion-model draw, so the RNG
/// stream is independent of the plan: an empty plan reproduces the
/// fault-free run bit for bit, and a faulty run stays trial-aligned with
/// its fault-free twin.
pub fn simulate_distributed_with(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let dfg = bound.dfg();
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);
    let operand = |o: Operand| -> i64 {
        match o {
            Operand::Input(i) => input_vals[i.0],
            Operand::Const(c) => c,
            Operand::Op(p) => values[p.0],
        }
    };

    let faults = &config.faults;
    let faulty = !faults.is_empty();

    let n = dfg.num_ops();
    let mut done = vec![false; n];
    let mut completion_cycle = vec![0usize; n];
    let mut start_cycle = vec![0usize; n];
    let num_units = bound.allocation().units().len();
    let mut unit_busy = vec![0usize; num_units];

    let fsms: Vec<(usize, &Fsm)> = cu.controllers().iter().map(|(u, f)| (u.0, f)).collect();
    let mut states: Vec<StateId> = fsms.iter().map(|(_, f)| f.initial()).collect();

    // Completion pulses whose result latch is deferred by a DelayLatch
    // fault: (latch cycle, op).
    let mut deferred: Vec<(usize, OpId)> = Vec::new();

    let max_cycles = config.budget(n, 1);
    let mut cycle = 0usize;
    let mut pulses: Vec<OpId> = Vec::new();
    while !done.iter().all(|&d| d) || !deferred.is_empty() {
        cycle += 1;
        if cycle > max_cycles {
            return Err(SimError::Deadlock(diagnostics(
                cycle,
                format!("no progress within the {max_cycles}-cycle watchdog budget"),
                &fsms,
                &states,
                &done,
                &pulses,
            )));
        }

        // Deferred result latches that come due this cycle.
        deferred.retain(|&(at, op)| {
            if at <= cycle {
                if !done[op.0] {
                    done[op.0] = true;
                    completion_cycle[op.0] = at;
                }
                false
            } else {
                true
            }
        });

        // Sample unit completion signals for units in an Exec phase.
        // `diverged[u]` remembers a stuck-at override that contradicted the
        // model draw, for the post-fixpoint premature-latch check.
        let mut unit_completion = vec![false; num_units];
        let mut diverged: Vec<Option<bool>> = vec![None; num_units];
        for ((u, f), &st) in fsms.iter().zip(&states) {
            let name = match f.state_name_opt(st) {
                Some(name) => name,
                None => {
                    return Err(SimError::Desync(diagnostics(
                        cycle,
                        format!("controller {} latched invalid state id {}", f.name(), st.0),
                        &fsms,
                        &states,
                        &done,
                        &pulses,
                    )))
                }
            };
            let phase = match parse_phase(name) {
                Some(p) => p,
                None => {
                    return Err(SimError::UnknownState {
                        fsm: f.name().to_string(),
                        state: name.to_string(),
                    })
                }
            };
            match phase {
                Phase::Exec(op, stage) => {
                    if stage == 0 && start_cycle[op.0] == 0 {
                        start_cycle[op.0] = cycle;
                    }
                    let node = dfg.op(op);
                    // Protocol invariant: all predecessors latched their
                    // results before a consumer occupies its unit. Faults
                    // (stuck-at-short consumer reads, delayed latches,
                    // state flips) break exactly this, so it is checked on
                    // every execution cycle, not just in debug builds.
                    if let Some(p) = dfg.preds(op).iter().find(|p| !done[p.0]) {
                        return Err(SimError::Desync(diagnostics(
                            cycle,
                            format!("{op} fired before its producer {p} completed"),
                            &fsms,
                            &states,
                            &done,
                            &pulses,
                        )));
                    }
                    // Sample the stage-completion signal. The final stage
                    // of a controller completes unconditionally and never
                    // reads it, so sampling in every stage is harmless; a
                    // Bernoulli model makes multi-level stage delays
                    // geometric, which is the intended semantics. Stuck-at
                    // faults override the signal after the draw, keeping
                    // the RNG stream plan-independent.
                    let truth =
                        model.completion(op, node.kind, operand(node.lhs), operand(node.rhs), rng);
                    let eff = faults.stuck_completion(op, cycle).unwrap_or(truth);
                    unit_completion[*u] = eff;
                    if eff != truth {
                        diverged[*u] = Some(truth);
                    }
                    // Wrap-around re-executions of already-done operations
                    // (the controller loops for repetitive DFG execution,
                    // but we measure a single iteration) are not busy work.
                    if !done[op.0] {
                        unit_busy[*u] += 1;
                    }
                }
                Phase::Ready(_) => {}
            }
        }

        // Fixpoint over same-cycle completion pulses (C_CO chains).
        // Spurious-pulse faults seed the wavefront; drop faults censor it.
        let mut injected: Vec<OpId> = Vec::new();
        faults.spurious_at(cycle, &mut injected);
        injected.sort_unstable();
        injected.dedup();
        pulses = injected.clone();
        let mut steps: Vec<(StateId, Vec<usize>)> = Vec::new();
        for _round in 0..fsms.len() + 2 {
            steps.clear();
            let mut new_pulses: Vec<OpId> = injected.clone();
            for ((u, f), &st) in fsms.iter().zip(&states) {
                let step = f.try_step(st, |v| {
                    let name = &f.inputs()[v];
                    if let Some(rest) = name.strip_prefix("C_CO(") {
                        let op: usize = rest
                            .strip_suffix(')')
                            .and_then(|s| s.parse().ok())
                            .expect("completion signal name");
                        match faults.stuck_completion(OpId(op), cycle) {
                            Some(forced) => forced,
                            None => done[op] || pulses.contains(&OpId(op)),
                        }
                    } else {
                        // Own unit completion C_{name}.
                        unit_completion[*u]
                    }
                });
                let (next, outs) = match step {
                    Ok(r) => r,
                    Err(e) => {
                        return Err(SimError::Desync(diagnostics(
                            cycle,
                            format!("controller {} lost lockstep: {e}", f.name()),
                            &fsms,
                            &states,
                            &done,
                            &pulses,
                        )))
                    }
                };
                for &o in &outs {
                    let oname = &f.outputs()[o];
                    if let Some(rest) = oname.strip_prefix("RE") {
                        let op: usize = rest.parse().expect("RE signal name");
                        if !faults.drops_pulse(OpId(op), cycle) {
                            new_pulses.push(OpId(op));
                        }
                    }
                }
                steps.push((next, outs));
            }
            new_pulses.sort_unstable();
            new_pulses.dedup();
            if new_pulses == pulses {
                break;
            }
            pulses = new_pulses;
        }

        // Premature-latch check: where a stuck-at override contradicted the
        // telescopic predictor, re-step the affected controller with the
        // *true* completion value. A result-enable pulse the override
        // emitted but the truth would not means the unit latched a result
        // that was not ready.
        if faulty {
            for (i, ((u, f), &st)) in fsms.iter().zip(&states).enumerate() {
                let Some(truth) = diverged[*u] else { continue };
                let truth_step = f.try_step(st, |v| {
                    let name = &f.inputs()[v];
                    if let Some(rest) = name.strip_prefix("C_CO(") {
                        let op: usize = rest
                            .strip_suffix(')')
                            .and_then(|s| s.parse().ok())
                            .expect("completion signal name");
                        done[op] || pulses.contains(&OpId(op))
                    } else {
                        truth
                    }
                });
                let truth_outs = match truth_step {
                    Ok((_, outs)) => outs,
                    Err(_) => continue,
                };
                for &o in &steps[i].1 {
                    if !truth_outs.contains(&o) && f.outputs()[o].starts_with("RE") {
                        return Err(SimError::Desync(diagnostics(
                            cycle,
                            format!(
                                "unit {} latched {} before its true completion (stuck-at-short)",
                                u,
                                f.outputs()[o]
                            ),
                            &fsms,
                            &states,
                            &done,
                            &pulses,
                        )));
                    }
                }
            }
        }

        // Commit: advance states, latch completions (possibly deferred by a
        // DelayLatch fault), apply scheduled state-register upsets.
        for (i, (next, _)) in steps.iter().enumerate() {
            states[i] = *next;
        }
        for op in &pulses {
            if !done[op.0] && !deferred.iter().any(|&(_, d)| d == *op) {
                let delay = faults.latch_delay(*op, cycle);
                if delay == 0 {
                    done[op.0] = true;
                    completion_cycle[op.0] = cycle;
                } else {
                    deferred.push((cycle + delay, *op));
                }
            }
        }
        if faulty {
            for (i, s) in states.iter_mut().enumerate() {
                if let Some(bit) = faults.flip_at(i, cycle) {
                    *s = StateId(s.0 ^ (1usize << bit));
                }
            }
        }
    }

    let result = SimResult {
        cycles: cycle,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    };
    // A faulty run that terminates may still have latched results out of
    // order (e.g. a spurious pulse "completing" an op before it started);
    // the post-run legality check turns that into a detection. Fault-free
    // runs skip it so the plain API keeps its historical cost and callers
    // remain free to `verify` themselves.
    if faulty {
        if let Err(msg) = result.verify(bound) {
            return Err(SimError::Desync(diagnostics(
                cycle,
                format!("post-run invariant violated: {msg}"),
                &fsms,
                &states,
                &done,
                &pulses,
            )));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fig3_dfg, fir3, fir5};
    use tauhls_sched::Allocation;

    fn sim(
        g: &tauhls_dfg::Dfg,
        alloc: &Allocation,
        model: &CompletionModel,
        seed: u64,
    ) -> (BoundDfg, SimResult) {
        let bound = BoundDfg::bind(g, alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = simulate_distributed(&bound, &cu, model, None, &mut rng).expect("fault-free run");
        (bound, r)
    }

    #[test]
    fn fir3_best_and_worst_cycles_match_paper() {
        // Paper Table 2, 3rd FIR row: best 45 ns = 3 cycles,
        // worst 75 ns = 5 cycles at a 15 ns clock.
        let (b, best) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 3);
        best.verify(&b).unwrap();
        let (b, worst) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysLong,
            0,
        );
        assert_eq!(worst.cycles, 5);
        worst.verify(&b).unwrap();
        assert!((best.latency_ns(15.0) - 45.0).abs() < 1e-9);
        assert!((worst.latency_ns(15.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn fir5_best_case() {
        let (b, best) = sim(
            &fir5(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 5); // paper: 75 ns
        best.verify(&b).unwrap();
    }

    #[test]
    fn diffeq_best_case_is_four_cycles() {
        // Paper: Diff best = 60 ns = 4 cycles.
        let (b, best) = sim(
            &diffeq(),
            &Allocation::paper(2, 1, 1),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 4);
        best.verify(&b).unwrap();
    }

    #[test]
    fn bernoulli_latency_between_extremes_and_legal() {
        let alloc = Allocation::paper(2, 1, 1);
        let g = diffeq();
        let (b, best) = sim(&g, &alloc, &CompletionModel::AlwaysShort, 1);
        let (_, worst) = sim(&g, &alloc, &CompletionModel::AlwaysLong, 1);
        for seed in 0..30 {
            let (_, r) = sim(&g, &alloc, &CompletionModel::Bernoulli { p: 0.7 }, seed);
            assert!(r.cycles >= best.cycles && r.cycles <= worst.cycles);
            r.verify(&b).unwrap();
        }
    }

    #[test]
    fn fig3_paper_binding_simulates_legally() {
        use tauhls_dfg::OpId;
        let g = fig3_dfg();
        let alloc = Allocation::paper(2, 2, 0);
        let bound = BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap();
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(9);
        for model in [
            CompletionModel::AlwaysShort,
            CompletionModel::AlwaysLong,
            CompletionModel::Bernoulli { p: 0.5 },
        ] {
            let r = simulate_distributed(&bound, &cu, &model, None, &mut rng).unwrap();
            r.verify(&bound).unwrap();
        }
    }

    #[test]
    fn operand_driven_small_inputs_run_fast() {
        use crate::model::TauLibrary;
        let g = fir5();
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(5);
        let lib = CompletionModel::OperandDriven(TauLibrary::multiplier_only(16, 20));
        // Small-magnitude inputs: all mults short -> best case.
        let small: Vec<i64> = (1..=10).collect();
        let r = simulate_distributed(&bound, &cu, &lib, Some(&small), &mut rng).unwrap();
        assert_eq!(r.cycles, 5);
        // Large-magnitude inputs: all mults long -> worst case.
        let big: Vec<i64> = (0..10).map(|i| 0x7000 + i * 0x111).collect();
        let r2 = simulate_distributed(&bound, &cu, &lib, Some(&big), &mut rng).unwrap();
        assert!(r2.cycles > r.cycles);
        r2.verify(&bound).unwrap();
    }

    #[test]
    fn utilization_and_busy_accounting() {
        let (b, r) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        // M1 runs 2 mults, M2 runs 1, A1 runs 2 adds over 3 cycles.
        let total_busy: usize = r.unit_busy_cycles.iter().sum();
        assert_eq!(total_busy, b.dfg().num_ops()); // all short: 1 cycle/op
        assert!(r.utilization(0) > 0.0);
    }

    #[test]
    fn multilevel_controllers_simulate_and_bound_latency() {
        // Three-level TAU multipliers on FIR5: best case unchanged, worst
        // case gains one extra cycle per multiplication wave.
        let g = fir5();
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu2 = DistributedControlUnit::generate(&bound);
        let cu3 = DistributedControlUnit::generate_multilevel(&bound, 3);
        for (_, f) in cu3.controllers() {
            f.check().unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let best2 =
            simulate_distributed(&bound, &cu2, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        let best3 =
            simulate_distributed(&bound, &cu3, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        assert_eq!(best2.cycles, best3.cycles);
        let worst2 =
            simulate_distributed(&bound, &cu2, &CompletionModel::AlwaysLong, None, &mut rng)
                .unwrap();
        let worst3 =
            simulate_distributed(&bound, &cu3, &CompletionModel::AlwaysLong, None, &mut rng)
                .unwrap();
        assert!(
            worst3.cycles > worst2.cycles,
            "{} vs {}",
            worst3.cycles,
            worst2.cycles
        );
        // Mid-probability runs are legal and bracketed.
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = simulate_distributed(
                &bound,
                &cu3,
                &CompletionModel::Bernoulli { p: 0.6 },
                None,
                &mut rng,
            )
            .unwrap();
            r.verify(&bound).unwrap();
            assert!(r.cycles >= best3.cycles && r.cycles <= worst3.cycles);
        }
    }

    #[test]
    fn multilevel_two_equals_classic_latency() {
        let g = diffeq();
        let alloc = Allocation::paper(2, 1, 1);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu2 = DistributedControlUnit::generate(&bound);
        let cu2b = DistributedControlUnit::generate_multilevel(&bound, 2);
        for p in [1.0, 0.0, 0.5] {
            let mut rng = StdRng::seed_from_u64(11);
            let table = CompletionModel::draw_table(g.num_ops(), p, &mut rng);
            let mut r1 = StdRng::seed_from_u64(0);
            let mut r2 = StdRng::seed_from_u64(0);
            let a = simulate_distributed(&bound, &cu2, &table, None, &mut r1).unwrap();
            let b = simulate_distributed(&bound, &cu2b, &table, None, &mut r2).unwrap();
            assert_eq!(a.cycles, b.cycles, "p={p}");
        }
    }

    #[test]
    fn random_dfgs_simulate_legally_across_models() {
        use tauhls_dfg::{random_dfg, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..15 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 18,
                    kind_weights: [2, 1, 3, 0],
                    ..Default::default()
                },
            );
            let alloc = Allocation::paper(2, 1, 1);
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            let r = simulate_distributed(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.6 },
                None,
                &mut rng,
            )
            .unwrap();
            r.verify(&bound).unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }
}
