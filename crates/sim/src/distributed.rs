//! Cycle-accurate simulation of the distributed control unit: every
//! arithmetic unit controller is stepped as a synchronous FSM, completion
//! signals propagate combinationally within the cycle, and consumers latch
//! (`done` flags) so a completion pulse is never lost.
//!
//! The engine is panic-free: abnormal conditions (deadlock, controller
//! desynchronization, malformed controllers) come back as [`SimError`]
//! values with a [`Diagnostics`] snapshot. [`simulate_distributed_with`]
//! additionally threads a [`SimConfig`] through the cycle loop, letting a
//! [`FaultPlan`](crate::FaultPlan) perturb the completion-signal fabric;
//! with the default (empty) config the sampling order, RNG stream and
//! results are identical to the fault-free engine.

use crate::error::{ControllerSnapshot, SimError};
use crate::fault::SimConfig;
use crate::kernel::{
    self, single_iter_diagnostics, CompletionFabric, DiagMode, FsmBank, FsmStyle, SingleIterHooks,
};
use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{OpId, Operand};
use tauhls_fsm::{DistributedControlUnit, Fsm, StateId};
use tauhls_sched::BoundDfg;

/// What a controller state means for its unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Executing op at the given telescopic stage (0 = the first, shortest
    /// attempt; stage `k` is the state with `k` primes). The unit's
    /// stage-completion signal is sampled in every non-final stage.
    Exec(OpId, u32),
    /// Waiting for predecessors of the op.
    Ready(OpId),
}

/// Decodes the `S{op}('...)` / `R{op}` state-name convention; `None` when
/// the name does not follow it (a controller-generation bug, reported as
/// [`SimError::UnknownState`] by the simulators).
pub(crate) fn parse_phase(name: &str) -> Option<Phase> {
    if let Some(rest) = name.strip_prefix('S') {
        let stage = rest.chars().rev().take_while(|&c| c == '\'').count() as u32;
        let core = &rest[..rest.len() - stage as usize];
        Some(Phase::Exec(OpId(core.parse().ok()?), stage))
    } else if let Some(rest) = name.strip_prefix('R') {
        Some(Phase::Ready(OpId(rest.parse().ok()?)))
    } else {
        None
    }
}

/// Builds the per-controller state snapshot for a [`Diagnostics`] record.
pub(crate) fn controller_snapshots(
    fsms: &[(usize, &Fsm)],
    states: &[StateId],
) -> Vec<ControllerSnapshot> {
    fsms.iter()
        .zip(states)
        .map(|((u, f), &st)| ControllerSnapshot {
            unit: *u,
            fsm: f.name().to_string(),
            state: f
                .state_name_opt(st)
                .map(str::to_string)
                .unwrap_or_else(|| format!("<invalid:{}>", st.0)),
        })
        .collect()
}

/// Precomputes the `(lhs, rhs)` operand values of every operation from
/// the primary-input assignment — exactly the values the legacy engine's
/// operand closure produced, consumed only by operand-driven models.
pub(crate) fn operand_values(
    bound: &BoundDfg,
    input_vals: &[i64],
    values: &[i64],
) -> Vec<(i64, i64)> {
    let dfg = bound.dfg();
    let operand = |o: Operand| -> i64 {
        match o {
            Operand::Input(i) => input_vals[i.0],
            Operand::Const(c) => c,
            Operand::Op(p) => values[p.0],
        }
    };
    dfg.op_ids()
        .map(|op| {
            let node = dfg.op(op);
            (operand(node.lhs), operand(node.rhs))
        })
        .collect()
}

/// Simulates one iteration of the bound DFG under its distributed control
/// unit (fault-free, default watchdog).
///
/// `inputs` are the DFG's primary input values (defaults to zeros), used
/// both for the reference results and for operand-driven completion.
///
/// A [`SimError::Deadlock`] from a fault-free run indicates a
/// controller-generation bug.
pub fn simulate_distributed(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> Result<SimResult, SimError> {
    simulate_distributed_with(bound, cu, model, inputs, rng, &SimConfig::default())
}

/// [`simulate_distributed`] with a fault/watchdog configuration.
///
/// Faults are applied *after* every completion-model draw, so the RNG
/// stream is independent of the plan: an empty plan reproduces the
/// fault-free run bit for bit, and a faulty run stays trial-aligned with
/// its fault-free twin.
pub fn simulate_distributed_with(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let dfg = bound.dfg();
    model
        .validate(dfg.num_ops())
        .map_err(SimError::InvalidConfig)?;
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);

    let n = dfg.num_ops();
    let mut fabric = CompletionFabric::new(n);
    let bank = FsmBank::new(cu, bound.allocation().units().len());
    let hooks = SingleIterHooks::new(
        bound,
        operand_values(bound, input_vals, &values),
        DiagMode::PerUnit,
    );
    let mut style = FsmStyle {
        bank,
        hooks,
        dfg,
        model,
    };
    let cycle = kernel::run(&mut style, &mut fabric, rng, config, config.budget(n, 1))?;

    let FsmStyle { bank, hooks, .. } = style;
    let SingleIterHooks {
        completion_cycle,
        start_cycle,
        unit_busy,
        diag,
        ..
    } = hooks;
    let result = SimResult {
        cycles: cycle,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    };
    // A faulty run that terminates may still have latched results out of
    // order (e.g. a spurious pulse "completing" an op before it started);
    // the post-run legality check turns that into a detection. Fault-free
    // runs skip it so the plain API keeps its historical cost and callers
    // remain free to `verify` themselves.
    if !config.faults.is_empty() {
        if let Err(msg) = result.verify(bound) {
            return Err(SimError::Desync(single_iter_diagnostics(
                &diag,
                &bank,
                &fabric,
                cycle,
                format!("post-run invariant violated: {msg}"),
            )));
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fig3_dfg, fir3, fir5};
    use tauhls_sched::Allocation;

    fn sim(
        g: &tauhls_dfg::Dfg,
        alloc: &Allocation,
        model: &CompletionModel,
        seed: u64,
    ) -> (BoundDfg, SimResult) {
        let bound = BoundDfg::bind(g, alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = simulate_distributed(&bound, &cu, model, None, &mut rng).expect("fault-free run");
        (bound, r)
    }

    #[test]
    fn fir3_best_and_worst_cycles_match_paper() {
        // Paper Table 2, 3rd FIR row: best 45 ns = 3 cycles,
        // worst 75 ns = 5 cycles at a 15 ns clock.
        let (b, best) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 3);
        best.verify(&b).unwrap();
        let (b, worst) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysLong,
            0,
        );
        assert_eq!(worst.cycles, 5);
        worst.verify(&b).unwrap();
        assert!((best.latency_ns(15.0) - 45.0).abs() < 1e-9);
        assert!((worst.latency_ns(15.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn fir5_best_case() {
        let (b, best) = sim(
            &fir5(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 5); // paper: 75 ns
        best.verify(&b).unwrap();
    }

    #[test]
    fn diffeq_best_case_is_four_cycles() {
        // Paper: Diff best = 60 ns = 4 cycles.
        let (b, best) = sim(
            &diffeq(),
            &Allocation::paper(2, 1, 1),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 4);
        best.verify(&b).unwrap();
    }

    #[test]
    fn bernoulli_latency_between_extremes_and_legal() {
        let alloc = Allocation::paper(2, 1, 1);
        let g = diffeq();
        let (b, best) = sim(&g, &alloc, &CompletionModel::AlwaysShort, 1);
        let (_, worst) = sim(&g, &alloc, &CompletionModel::AlwaysLong, 1);
        for seed in 0..30 {
            let (_, r) = sim(&g, &alloc, &CompletionModel::Bernoulli { p: 0.7 }, seed);
            assert!(r.cycles >= best.cycles && r.cycles <= worst.cycles);
            r.verify(&b).unwrap();
        }
    }

    #[test]
    fn fig3_paper_binding_simulates_legally() {
        use tauhls_dfg::OpId;
        let g = fig3_dfg();
        let alloc = Allocation::paper(2, 2, 0);
        let bound = BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap();
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(9);
        for model in [
            CompletionModel::AlwaysShort,
            CompletionModel::AlwaysLong,
            CompletionModel::Bernoulli { p: 0.5 },
        ] {
            let r = simulate_distributed(&bound, &cu, &model, None, &mut rng).unwrap();
            r.verify(&bound).unwrap();
        }
    }

    #[test]
    fn operand_driven_small_inputs_run_fast() {
        use crate::model::TauLibrary;
        let g = fir5();
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(5);
        let lib = CompletionModel::OperandDriven(TauLibrary::multiplier_only(16, 20));
        // Small-magnitude inputs: all mults short -> best case.
        let small: Vec<i64> = (1..=10).collect();
        let r = simulate_distributed(&bound, &cu, &lib, Some(&small), &mut rng).unwrap();
        assert_eq!(r.cycles, 5);
        // Large-magnitude inputs: all mults long -> worst case.
        let big: Vec<i64> = (0..10).map(|i| 0x7000 + i * 0x111).collect();
        let r2 = simulate_distributed(&bound, &cu, &lib, Some(&big), &mut rng).unwrap();
        assert!(r2.cycles > r.cycles);
        r2.verify(&bound).unwrap();
    }

    #[test]
    fn utilization_and_busy_accounting() {
        let (b, r) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        // M1 runs 2 mults, M2 runs 1, A1 runs 2 adds over 3 cycles.
        let total_busy: usize = r.unit_busy_cycles.iter().sum();
        assert_eq!(total_busy, b.dfg().num_ops()); // all short: 1 cycle/op
        assert!(r.utilization(0) > 0.0);
    }

    #[test]
    fn multilevel_controllers_simulate_and_bound_latency() {
        // Three-level TAU multipliers on FIR5: best case unchanged, worst
        // case gains one extra cycle per multiplication wave.
        let g = fir5();
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu2 = DistributedControlUnit::generate(&bound);
        let cu3 = DistributedControlUnit::generate_multilevel(&bound, 3);
        for (_, f) in cu3.controllers() {
            f.check().unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let best2 =
            simulate_distributed(&bound, &cu2, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        let best3 =
            simulate_distributed(&bound, &cu3, &CompletionModel::AlwaysShort, None, &mut rng)
                .unwrap();
        assert_eq!(best2.cycles, best3.cycles);
        let worst2 =
            simulate_distributed(&bound, &cu2, &CompletionModel::AlwaysLong, None, &mut rng)
                .unwrap();
        let worst3 =
            simulate_distributed(&bound, &cu3, &CompletionModel::AlwaysLong, None, &mut rng)
                .unwrap();
        assert!(
            worst3.cycles > worst2.cycles,
            "{} vs {}",
            worst3.cycles,
            worst2.cycles
        );
        // Mid-probability runs are legal and bracketed.
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = simulate_distributed(
                &bound,
                &cu3,
                &CompletionModel::Bernoulli { p: 0.6 },
                None,
                &mut rng,
            )
            .unwrap();
            r.verify(&bound).unwrap();
            assert!(r.cycles >= best3.cycles && r.cycles <= worst3.cycles);
        }
    }

    #[test]
    fn multilevel_two_equals_classic_latency() {
        let g = diffeq();
        let alloc = Allocation::paper(2, 1, 1);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu2 = DistributedControlUnit::generate(&bound);
        let cu2b = DistributedControlUnit::generate_multilevel(&bound, 2);
        for p in [1.0, 0.0, 0.5] {
            let mut rng = StdRng::seed_from_u64(11);
            let table = CompletionModel::draw_table(g.num_ops(), p, &mut rng);
            let mut r1 = StdRng::seed_from_u64(0);
            let mut r2 = StdRng::seed_from_u64(0);
            let a = simulate_distributed(&bound, &cu2, &table, None, &mut r1).unwrap();
            let b = simulate_distributed(&bound, &cu2b, &table, None, &mut r2).unwrap();
            assert_eq!(a.cycles, b.cycles, "p={p}");
        }
    }

    #[test]
    fn random_dfgs_simulate_legally_across_models() {
        use tauhls_dfg::{random_dfg, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..15 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 18,
                    kind_weights: [2, 1, 3, 0],
                    ..Default::default()
                },
            );
            let alloc = Allocation::paper(2, 1, 1);
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            let r = simulate_distributed(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.6 },
                None,
                &mut rng,
            )
            .unwrap();
            r.verify(&bound).unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }
    #[test]
    fn short_table_is_invalid_config() {
        // Regression: a user-built table shorter than the DFG used to
        // panic on `t[op.0]` deep in the cycle loop; it must surface as
        // InvalidConfig at entry instead.
        let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(0);
        let err = simulate_distributed(
            &bound,
            &cu,
            &CompletionModel::Table(vec![true]),
            None,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }
}
