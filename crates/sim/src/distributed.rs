//! Cycle-accurate simulation of the distributed control unit: every
//! arithmetic unit controller is stepped as a synchronous FSM, completion
//! signals propagate combinationally within the cycle, and consumers latch
//! (`done` flags) so a completion pulse is never lost.

use crate::model::CompletionModel;
use crate::result::SimResult;
use rand::Rng;
use tauhls_dfg::{OpId, Operand};
use tauhls_fsm::{DistributedControlUnit, Fsm, StateId};
use tauhls_sched::BoundDfg;

/// What a controller state means for its unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Executing op at the given telescopic stage (0 = the first, shortest
    /// attempt; stage `k` is the state with `k` primes). The unit's
    /// stage-completion signal is sampled in every non-final stage.
    Exec(OpId, u32),
    /// Waiting for predecessors of the op.
    Ready(OpId),
}

fn parse_phase(name: &str) -> Phase {
    if let Some(rest) = name.strip_prefix('S') {
        let stage = rest.chars().rev().take_while(|&c| c == '\'').count() as u32;
        let core = &rest[..rest.len() - stage as usize];
        Phase::Exec(OpId(core.parse().expect("state name S{op}('...)")), stage)
    } else if let Some(rest) = name.strip_prefix('R') {
        Phase::Ready(OpId(rest.parse().expect("state name R{op}")))
    } else {
        panic!("unrecognized controller state name {name}")
    }
}

/// Simulates one iteration of the bound DFG under its distributed control
/// unit.
///
/// `inputs` are the DFG's primary input values (defaults to zeros), used
/// both for the reference results and for operand-driven completion.
///
/// # Panics
///
/// Panics if the controllers deadlock (no progress within a generous cycle
/// budget) — that would indicate a controller-generation bug.
pub fn simulate_distributed(
    bound: &BoundDfg,
    cu: &DistributedControlUnit,
    model: &CompletionModel,
    inputs: Option<&[i64]>,
    rng: &mut impl Rng,
) -> SimResult {
    let dfg = bound.dfg();
    let zeros = vec![0i64; dfg.num_inputs()];
    let input_vals = inputs.unwrap_or(&zeros);
    let values = dfg.evaluate_all(input_vals);
    let operand = |o: Operand| -> i64 {
        match o {
            Operand::Input(i) => input_vals[i.0],
            Operand::Const(c) => c,
            Operand::Op(p) => values[p.0],
        }
    };

    let n = dfg.num_ops();
    let mut done = vec![false; n];
    let mut completion_cycle = vec![0usize; n];
    let mut start_cycle = vec![0usize; n];
    let num_units = bound.allocation().units().len();
    let mut unit_busy = vec![0usize; num_units];

    let fsms: Vec<(usize, &Fsm)> = cu.controllers().iter().map(|(u, f)| (u.0, f)).collect();
    let mut states: Vec<StateId> = fsms.iter().map(|(_, f)| f.initial()).collect();

    let max_cycles = 6 * n + 32;
    let mut cycle = 0usize;
    while !done.iter().all(|&d| d) {
        cycle += 1;
        assert!(
            cycle <= max_cycles,
            "distributed control deadlocked after {cycle} cycles; done = {done:?}"
        );

        // Sample unit completion signals for units in an Exec phase.
        let mut unit_completion = vec![false; num_units];
        for ((u, f), &st) in fsms.iter().zip(&states) {
            let phase = parse_phase(f.state_name(st));
            match phase {
                Phase::Exec(op, stage) => {
                    if stage == 0 && start_cycle[op.0] == 0 {
                        start_cycle[op.0] = cycle;
                    }
                    let node = dfg.op(op);
                    // All predecessors must already be done (protocol
                    // guarantee); reference operand values are thus valid.
                    debug_assert!(dfg.preds(op).iter().all(|p| done[p.0]));
                    // Sample the stage-completion signal. The final stage
                    // of a controller completes unconditionally and never
                    // reads it, so sampling in every stage is harmless; a
                    // Bernoulli model makes multi-level stage delays
                    // geometric, which is the intended semantics.
                    unit_completion[*u] =
                        model.completion(op, node.kind, operand(node.lhs), operand(node.rhs), rng);
                    // Wrap-around re-executions of already-done operations
                    // (the controller loops for repetitive DFG execution,
                    // but we measure a single iteration) are not busy work.
                    if !done[op.0] {
                        unit_busy[*u] += 1;
                    }
                }
                Phase::Ready(_) => {}
            }
        }

        // Fixpoint over same-cycle completion pulses (C_CO chains).
        let mut pulses: Vec<OpId> = Vec::new();
        let mut steps: Vec<(StateId, Vec<usize>)> = Vec::new();
        for _round in 0..fsms.len() + 2 {
            steps.clear();
            let mut new_pulses: Vec<OpId> = Vec::new();
            for ((u, f), &st) in fsms.iter().zip(&states) {
                let (next, outs) = f.step(st, |v| {
                    let name = &f.inputs()[v];
                    if let Some(rest) = name.strip_prefix("C_CO(") {
                        let op: usize = rest
                            .strip_suffix(')')
                            .and_then(|s| s.parse().ok())
                            .expect("completion signal name");
                        done[op] || pulses.contains(&OpId(op))
                    } else {
                        // Own unit completion C_{name}.
                        unit_completion[*u]
                    }
                });
                for &o in &outs {
                    let oname = &f.outputs()[o];
                    if let Some(rest) = oname.strip_prefix("RE") {
                        let op: usize = rest.parse().expect("RE signal name");
                        new_pulses.push(OpId(op));
                    }
                }
                steps.push((next, outs));
            }
            new_pulses.sort_unstable();
            new_pulses.dedup();
            if new_pulses == pulses {
                break;
            }
            pulses = new_pulses;
        }

        // Commit: advance states, latch completions.
        for (i, (next, _)) in steps.iter().enumerate() {
            states[i] = *next;
        }
        for op in &pulses {
            if !done[op.0] {
                done[op.0] = true;
                completion_cycle[op.0] = cycle;
            }
        }
    }

    SimResult {
        cycles: cycle,
        completion_cycle,
        start_cycle,
        unit_busy_cycles: unit_busy,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tauhls_dfg::benchmarks::{diffeq, fig3_dfg, fir3, fir5};
    use tauhls_sched::Allocation;

    fn sim(
        g: &tauhls_dfg::Dfg,
        alloc: &Allocation,
        model: &CompletionModel,
        seed: u64,
    ) -> (BoundDfg, SimResult) {
        let bound = BoundDfg::bind(g, alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = simulate_distributed(&bound, &cu, model, None, &mut rng);
        (bound, r)
    }

    #[test]
    fn fir3_best_and_worst_cycles_match_paper() {
        // Paper Table 2, 3rd FIR row: best 45 ns = 3 cycles,
        // worst 75 ns = 5 cycles at a 15 ns clock.
        let (b, best) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 3);
        best.verify(&b).unwrap();
        let (b, worst) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysLong,
            0,
        );
        assert_eq!(worst.cycles, 5);
        worst.verify(&b).unwrap();
        assert!((best.latency_ns(15.0) - 45.0).abs() < 1e-9);
        assert!((worst.latency_ns(15.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn fir5_best_case() {
        let (b, best) = sim(
            &fir5(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 5); // paper: 75 ns
        best.verify(&b).unwrap();
    }

    #[test]
    fn diffeq_best_case_is_four_cycles() {
        // Paper: Diff best = 60 ns = 4 cycles.
        let (b, best) = sim(
            &diffeq(),
            &Allocation::paper(2, 1, 1),
            &CompletionModel::AlwaysShort,
            0,
        );
        assert_eq!(best.cycles, 4);
        best.verify(&b).unwrap();
    }

    #[test]
    fn bernoulli_latency_between_extremes_and_legal() {
        let alloc = Allocation::paper(2, 1, 1);
        let g = diffeq();
        let (b, best) = sim(&g, &alloc, &CompletionModel::AlwaysShort, 1);
        let (_, worst) = sim(&g, &alloc, &CompletionModel::AlwaysLong, 1);
        for seed in 0..30 {
            let (_, r) = sim(&g, &alloc, &CompletionModel::Bernoulli { p: 0.7 }, seed);
            assert!(r.cycles >= best.cycles && r.cycles <= worst.cycles);
            r.verify(&b).unwrap();
        }
    }

    #[test]
    fn fig3_paper_binding_simulates_legally() {
        use tauhls_dfg::OpId;
        let g = fig3_dfg();
        let alloc = Allocation::paper(2, 2, 0);
        let bound = BoundDfg::bind_explicit(
            &g,
            &alloc,
            vec![
                vec![OpId(0), OpId(1)],
                vec![OpId(6), OpId(4), OpId(8)],
                vec![OpId(3), OpId(2)],
                vec![OpId(7), OpId(5)],
            ],
        )
        .unwrap();
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(9);
        for model in [
            CompletionModel::AlwaysShort,
            CompletionModel::AlwaysLong,
            CompletionModel::Bernoulli { p: 0.5 },
        ] {
            let r = simulate_distributed(&bound, &cu, &model, None, &mut rng);
            r.verify(&bound).unwrap();
        }
    }

    #[test]
    fn operand_driven_small_inputs_run_fast() {
        use crate::model::TauLibrary;
        let g = fir5();
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let mut rng = StdRng::seed_from_u64(5);
        let lib = CompletionModel::OperandDriven(TauLibrary::multiplier_only(16, 20));
        // Small-magnitude inputs: all mults short -> best case.
        let small: Vec<i64> = (1..=10).collect();
        let r = simulate_distributed(&bound, &cu, &lib, Some(&small), &mut rng);
        assert_eq!(r.cycles, 5);
        // Large-magnitude inputs: all mults long -> worst case.
        let big: Vec<i64> = (0..10).map(|i| 0x7000 + i * 0x111).collect();
        let r2 = simulate_distributed(&bound, &cu, &lib, Some(&big), &mut rng);
        assert!(r2.cycles > r.cycles);
        r2.verify(&bound).unwrap();
    }

    #[test]
    fn utilization_and_busy_accounting() {
        let (b, r) = sim(
            &fir3(),
            &Allocation::paper(2, 1, 0),
            &CompletionModel::AlwaysShort,
            0,
        );
        // M1 runs 2 mults, M2 runs 1, A1 runs 2 adds over 3 cycles.
        let total_busy: usize = r.unit_busy_cycles.iter().sum();
        assert_eq!(total_busy, b.dfg().num_ops()); // all short: 1 cycle/op
        assert!(r.utilization(0) > 0.0);
    }

    #[test]
    fn multilevel_controllers_simulate_and_bound_latency() {
        // Three-level TAU multipliers on FIR5: best case unchanged, worst
        // case gains one extra cycle per multiplication wave.
        let g = fir5();
        let alloc = Allocation::paper(2, 1, 0);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu2 = DistributedControlUnit::generate(&bound);
        let cu3 = DistributedControlUnit::generate_multilevel(&bound, 3);
        for (_, f) in cu3.controllers() {
            f.check().unwrap();
        }
        let mut rng = StdRng::seed_from_u64(1);
        let best2 =
            simulate_distributed(&bound, &cu2, &CompletionModel::AlwaysShort, None, &mut rng);
        let best3 =
            simulate_distributed(&bound, &cu3, &CompletionModel::AlwaysShort, None, &mut rng);
        assert_eq!(best2.cycles, best3.cycles);
        let worst2 =
            simulate_distributed(&bound, &cu2, &CompletionModel::AlwaysLong, None, &mut rng);
        let worst3 =
            simulate_distributed(&bound, &cu3, &CompletionModel::AlwaysLong, None, &mut rng);
        assert!(
            worst3.cycles > worst2.cycles,
            "{} vs {}",
            worst3.cycles,
            worst2.cycles
        );
        // Mid-probability runs are legal and bracketed.
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = simulate_distributed(
                &bound,
                &cu3,
                &CompletionModel::Bernoulli { p: 0.6 },
                None,
                &mut rng,
            );
            r.verify(&bound).unwrap();
            assert!(r.cycles >= best3.cycles && r.cycles <= worst3.cycles);
        }
    }

    #[test]
    fn multilevel_two_equals_classic_latency() {
        let g = diffeq();
        let alloc = Allocation::paper(2, 1, 1);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu2 = DistributedControlUnit::generate(&bound);
        let cu2b = DistributedControlUnit::generate_multilevel(&bound, 2);
        for p in [1.0, 0.0, 0.5] {
            let mut rng = StdRng::seed_from_u64(11);
            let table = CompletionModel::draw_table(g.num_ops(), p, &mut rng);
            let mut r1 = StdRng::seed_from_u64(0);
            let mut r2 = StdRng::seed_from_u64(0);
            let a = simulate_distributed(&bound, &cu2, &table, None, &mut r1);
            let b = simulate_distributed(&bound, &cu2b, &table, None, &mut r2);
            assert_eq!(a.cycles, b.cycles, "p={p}");
        }
    }

    #[test]
    fn random_dfgs_simulate_legally_across_models() {
        use tauhls_dfg::{random_dfg, RandomDfgParams};
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..15 {
            let g = random_dfg(
                &mut rng,
                &RandomDfgParams {
                    num_ops: 18,
                    kind_weights: [2, 1, 3, 0],
                    ..Default::default()
                },
            );
            let alloc = Allocation::paper(2, 1, 1);
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            let r = simulate_distributed(
                &bound,
                &cu,
                &CompletionModel::Bernoulli { p: 0.6 },
                None,
                &mut rng,
            );
            r.verify(&bound).unwrap_or_else(|e| panic!("case {i}: {e}"));
        }
    }
}
