//! Simulation results: per-operation timing, unit utilization, and
//! correctness checks.

use tauhls_dfg::OpId;
use tauhls_sched::BoundDfg;

/// Outcome of simulating one DFG iteration under some control unit.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Total cycles until every operation completed (the latency).
    pub cycles: usize,
    /// 1-based cycle in which each operation's result was latched.
    pub completion_cycle: Vec<usize>,
    /// 1-based cycle in which each operation first occupied its unit.
    pub start_cycle: Vec<usize>,
    /// Busy cycles per unit (indexed like [`tauhls_sched::Allocation::units`]).
    pub unit_busy_cycles: Vec<usize>,
    /// Reference result value per operation.
    pub values: Vec<i64>,
}

impl SimResult {
    /// Latency in nanoseconds given the fast clock period.
    pub fn latency_ns(&self, clock_ns: f64) -> f64 {
        self.cycles as f64 * clock_ns
    }

    /// Utilization of a unit: busy cycles over total cycles.
    pub fn utilization(&self, unit: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.unit_busy_cycles[unit] as f64 / self.cycles as f64
        }
    }

    /// Verifies execution legality against the bound DFG:
    ///
    /// * every operation completed, no earlier than it started;
    /// * every data/schedule predecessor completed strictly before the
    ///   consumer started;
    /// * operations sharing a unit never overlap in time.
    ///
    /// Returns a description of the first violation, if any.
    pub fn verify(&self, bound: &BoundDfg) -> Result<(), String> {
        let dfg = bound.dfg();
        for v in dfg.op_ids() {
            if self.completion_cycle[v.0] == 0 {
                return Err(format!("{v} never completed"));
            }
            if self.start_cycle[v.0] == 0 || self.start_cycle[v.0] > self.completion_cycle[v.0] {
                return Err(format!("{v} has inconsistent start/completion"));
            }
            for p in dfg.preds(v) {
                if self.completion_cycle[p.0] >= self.start_cycle[v.0] {
                    return Err(format!(
                        "{v} started at {} before its producer {p} completed at {}",
                        self.start_cycle[v.0], self.completion_cycle[p.0]
                    ));
                }
            }
        }
        for (a, b) in bound.schedule_arcs() {
            if self.completion_cycle[a.0] >= self.start_cycle[b.0] {
                return Err(format!(
                    "schedule arc {a}->{b} violated ({} >= {})",
                    self.completion_cycle[a.0], self.start_cycle[b.0]
                ));
            }
        }
        for seq in bound.sequences() {
            for w in seq.windows(2) {
                let (a, b): (OpId, OpId) = (w[0], w[1]);
                if self.completion_cycle[a.0] >= self.start_cycle[b.0] {
                    return Err(format!(
                        "unit overlap: {a} completes at {} but {b} starts at {}",
                        self.completion_cycle[a.0], self.start_cycle[b.0]
                    ));
                }
            }
        }
        Ok(())
    }
}
