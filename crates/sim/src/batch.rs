//! Deterministic parallel Monte-Carlo batch engine.
//!
//! The serial harnesses in [`crate::latency`] thread one RNG through every
//! trial, so their output depends on trial *order* and cannot be
//! parallelised without changing results. This module decouples trials
//! instead: every trial owns an RNG seeded from
//! `derive_seed(base_seed, job_id, trial_index)`, so the stream a trial
//! sees is a pure function of its coordinates. Work is then fanned over
//! [`std::thread::scope`] workers pulling fixed-size chunks off an atomic
//! queue, and per-chunk accumulators are folded **in chunk-index order**
//! after the join. The combination makes results bit-identical for any
//! thread count — `threads = 1` runs the very same chunking and folding
//! and serves as the reference oracle.
//!
//! Latency statistics use [`CycleStats`], whose sums are exact integers
//! (`u128`), so merging is associative and exact; the ordered fold then
//! extends the guarantee to accumulators with `f64` state as well.
//!
//! # Examples
//!
//! ```
//! use tauhls_sim::{BatchRunner, ControlStyle, SimJob, CompletionModel};
//! use tauhls_sched::{Allocation, BoundDfg};
//! use tauhls_dfg::benchmarks::fir5;
//!
//! let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
//! let model = CompletionModel::Bernoulli { p: 0.5 };
//! let job = SimJob::new(&bound, ControlStyle::Distributed, &model).trials(500);
//! let serial = job.run(42, &BatchRunner::serial()).unwrap();
//! let parallel = job.run(42, &BatchRunner::new(4)).unwrap();
//! assert_eq!(serial, parallel); // bit-identical, not just statistically close
//! ```

use crate::cent::{simulate_cent_with, CentControlUnit};
use crate::centsync::simulate_cent_sync_with;
use crate::distributed::simulate_distributed_with;
use crate::elastic::{elastic_trial_skew_seed, simulate_elastic_saturated, simulate_elastic_with};
use crate::error::SimError;
use crate::fault::SimConfig;
use crate::kernel::ElasticSpec;
use crate::latency::{ControlStyle, LatencySummary};
use crate::model::CompletionModel;
use crate::sliced::{LaneConfigs, LaneModels, LaneOutcome, SlicedSim, LANES};
use rand::rngs::StdRng;
use rand::{splitmix64_mix, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::BoundDfg;

/// A cooperative cancellation flag shared between a shutdown path and the
/// workers of a [`BatchRunner`].
///
/// Attach a clone to a runner with [`BatchRunner::with_cancel`]; once some
/// other thread calls [`CancelToken::cancel`], workers stop claiming new
/// chunks at the next chunk boundary and the batch APIs
/// ([`SimJob::run`], [`latency_triple_batch`], …) return
/// [`SimError::Cancelled`] instead of partial statistics. This is the
/// drain hook a long-running service uses on shutdown: in-flight chunks
/// still finish (trials are never interrupted mid-simulation), but the
/// remaining work is abandoned promptly.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Flags of every ancestor token; cancelling any of them cancels this
    /// token too, while [`CancelToken::cancel`] on a child never touches
    /// its parents.
    parents: Vec<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parents.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A child token: cancelled when either it or any ancestor is
    /// cancelled, but cancelling the child leaves the parent untouched.
    ///
    /// This is the per-job hook a service layers on a global drain token:
    /// the watchdog cancels the parent to stop everything, while a
    /// `DELETE` on one job cancels only that job's child. The two causes
    /// stay distinguishable through [`CancelToken::is_self_cancelled`],
    /// which is how a job manager decides between "requeue on restart"
    /// (shutdown) and "user cancelled" (terminal).
    pub fn child(&self) -> CancelToken {
        let mut parents = self.parents.clone();
        parents.push(Arc::clone(&self.flag));
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parents,
        }
    }

    /// Requests cancellation of this token (and its children, but never
    /// its parents). Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested here or on any ancestor.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || self.parents.iter().any(|p| p.load(Ordering::SeqCst))
    }

    /// Whether this token itself was cancelled, as opposed to inheriting
    /// cancellation from an ancestor.
    pub fn is_self_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Derives the RNG seed for one trial of one job.
///
/// The derivation composes two SplitMix64 finalizer rounds, so nearby
/// `(base_seed, job_id, trial)` coordinates map to statistically unrelated
/// seeds. Every batch API routes its randomness through this function;
/// that is what makes results independent of scheduling.
pub fn derive_seed(base_seed: u64, job_id: u64, trial: u64) -> u64 {
    splitmix64_mix(splitmix64_mix(base_seed ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ trial)
}

/// The RNG a given trial observes: [`derive_seed`] fed to `StdRng`.
pub fn trial_rng(base_seed: u64, job_id: u64, trial: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base_seed, job_id, trial))
}

/// Mergeable statistics over an integer-valued observable (cycle counts).
///
/// Sums are kept in `u128`, so [`CycleStats::merge`] is exact and
/// associative — the merged result of any partition of the trials equals
/// the single-pass result, making cross-thread reduction deterministic by
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CycleStats {
    /// Number of recorded trials.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u128,
    /// Exact sum of squared observations.
    pub sum_sq: u128,
    /// Minimum observation (`usize::MAX` when empty).
    pub min: usize,
    /// Maximum observation (`0` when empty).
    pub max: usize,
}

impl CycleStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        CycleStats {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: usize::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, cycles: usize) {
        self.count += 1;
        self.sum += cycles as u128;
        self.sum_sq += (cycles as u128) * (cycles as u128);
        self.min = self.min.min(cycles);
        self.max = self.max.max(cycles);
    }

    /// Merges another accumulator into this one (exact).
    pub fn merge(&mut self, other: &CycleStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count as f64
    }

    /// Population variance (`NaN` when empty).
    pub fn variance(&self) -> f64 {
        let n = self.count as f64;
        let mean = self.mean();
        self.sum_sq as f64 / n - mean * mean
    }
}

impl Accumulator for CycleStats {
    fn empty() -> Self {
        CycleStats::new()
    }
    fn fold(&mut self, other: Self) {
        self.merge(&other);
    }
}

/// Per-chunk partial state the runner folds back together.
///
/// `fold` is applied to chunk results in ascending chunk-index order, so
/// implementations need not be commutative — only deterministic.
pub trait Accumulator: Send {
    /// The identity element a fresh chunk starts from.
    fn empty() -> Self;
    /// Absorbs the accumulator of the next chunk (in chunk order).
    fn fold(&mut self, other: Self);
}

impl<A: Accumulator, B: Accumulator> Accumulator for (A, B) {
    fn empty() -> Self {
        (A::empty(), B::empty())
    }
    fn fold(&mut self, other: Self) {
        self.0.fold(other.0);
        self.1.fold(other.1);
    }
}

impl<A: Accumulator, B: Accumulator, C: Accumulator> Accumulator for (A, B, C) {
    fn empty() -> Self {
        (A::empty(), B::empty(), C::empty())
    }
    fn fold(&mut self, other: Self) {
        self.0.fold(other.0);
        self.1.fold(other.1);
        self.2.fold(other.2);
    }
}

impl<A: Accumulator, B: Accumulator, C: Accumulator, D: Accumulator> Accumulator for (A, B, C, D) {
    fn empty() -> Self {
        (A::empty(), B::empty(), C::empty(), D::empty())
    }
    fn fold(&mut self, other: Self) {
        self.0.fold(other.0);
        self.1.fold(other.1);
        self.2.fold(other.2);
        self.3.fold(other.3);
    }
}

impl<A: Accumulator, B: Accumulator, C: Accumulator, D: Accumulator, E: Accumulator> Accumulator
    for (A, B, C, D, E)
{
    fn empty() -> Self {
        (A::empty(), B::empty(), C::empty(), D::empty(), E::empty())
    }
    fn fold(&mut self, other: Self) {
        self.0.fold(other.0);
        self.1.fold(other.1);
        self.2.fold(other.2);
        self.3.fold(other.3);
        self.4.fold(other.4);
    }
}

/// Accumulator that keeps the [`SimError`] of the lowest-numbered failing
/// trial. Because the comparison is by trial index — not by arrival order —
/// the captured error is the same for any thread count or chunk size,
/// extending the engine's bit-identical guarantee to the error path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FirstError {
    err: Option<(u64, SimError)>,
}

impl FirstError {
    /// Records a failing trial, keeping the lowest trial index seen.
    pub fn record(&mut self, trial: u64, error: SimError) {
        match &self.err {
            Some((t, _)) if *t <= trial => {}
            _ => self.err = Some((trial, error)),
        }
    }

    /// The captured `(trial, error)`, if any trial failed.
    pub fn first(&self) -> Option<&(u64, SimError)> {
        self.err.as_ref()
    }

    /// `Err` with the earliest failing trial's error, `Ok` otherwise.
    pub fn into_result(self) -> Result<(), SimError> {
        match self.err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }
}

impl Accumulator for FirstError {
    fn empty() -> Self {
        FirstError::default()
    }
    fn fold(&mut self, other: Self) {
        if let Some((trial, error)) = other.err {
            self.record(trial, error);
        }
    }
}

/// Fans trials over worker threads with deterministic reduction.
///
/// Trials are split into fixed-size chunks; workers claim chunks from an
/// atomic counter, run each trial with its own derived RNG, and keep one
/// accumulator per chunk. After the scope joins, chunk accumulators are
/// folded in chunk-index order. Because chunk boundaries depend only on
/// `(trials, chunk_size)` — never on thread count or scheduling — the
/// result is bit-identical for any `threads >= 1`.
#[derive(Clone, Debug)]
pub struct BatchRunner {
    threads: usize,
    chunk_size: u64,
    cancel: Option<CancelToken>,
}

/// Default number of trials a worker claims at a time.
pub const DEFAULT_CHUNK_SIZE: u64 = 64;

impl BatchRunner {
    /// A runner using `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
            cancel: None,
        }
    }

    /// The single-threaded reference oracle (same chunking, same fold).
    pub fn serial() -> Self {
        BatchRunner::new(1)
    }

    /// A runner sized to the machine's available parallelism.
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        BatchRunner::new(threads)
    }

    /// `Some(n)` → exactly `n` workers, `None` → all available cores: the
    /// one mapping every `--threads` front end (CLI and service) shares.
    pub fn sized(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => BatchRunner::new(n),
            None => BatchRunner::available(),
        }
    }

    /// Overrides the chunk size. Results depend on the chunk size only
    /// through accumulators with non-associative (`f64`) state; exact
    /// accumulators such as [`CycleStats`] are invariant to it.
    pub fn with_chunk_size(mut self, chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Attaches a cancellation token checked at every chunk boundary.
    ///
    /// Until the token fires, behaviour (and therefore every result) is
    /// identical to a runner without one.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this runner's token (if any) has requested cancellation.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// `Err(SimError::Cancelled)` once the runner's token has fired.
    ///
    /// The batch APIs call this after every reduction so a cancelled run
    /// surfaces as a structured error instead of partial statistics.
    pub fn check_cancelled(&self) -> Result<(), SimError> {
        if self.is_cancelled() {
            Err(SimError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `trials` trials of `trial_fn`, reducing into one accumulator.
    ///
    /// `trial_fn` receives the global trial index and the chunk's
    /// accumulator; it must derive any randomness from the trial index
    /// (see [`trial_rng`]) for the determinism guarantee to hold.
    pub fn run<A, F>(&self, trials: u64, trial_fn: F) -> A
    where
        A: Accumulator,
        F: Fn(u64, &mut A) + Sync,
    {
        self.run_chunked(
            trials,
            || (),
            |(), range, acc| {
                for trial in range {
                    trial_fn(trial, acc);
                }
            },
        )
    }

    /// Like [`BatchRunner::run`], but hands each worker a reusable scratch
    /// value (built once per worker by `make_worker`, reused across every
    /// chunk that worker claims) and whole chunk ranges instead of single
    /// trials. This is what lets the sliced engine keep its bit-plane
    /// buffers — and any other per-trial allocation — alive across chunks.
    ///
    /// Determinism contract: `chunk_fn` must derive all randomness from
    /// the trial indices in `range` and must not let the scratch value
    /// carry state between chunks that affects results; chunk boundaries
    /// depend only on `(trials, chunk_size)`, so results stay
    /// bit-identical for any thread count.
    pub fn run_chunked<A, W, M, F>(&self, trials: u64, make_worker: M, chunk_fn: F) -> A
    where
        A: Accumulator,
        M: Fn() -> W + Sync,
        F: Fn(&mut W, std::ops::Range<u64>, &mut A) + Sync,
    {
        if trials == 0 {
            return A::empty();
        }
        let chunk_size = self.chunk_size;
        let num_chunks = trials.div_ceil(chunk_size) as usize;
        let run_chunk = |worker: &mut W, chunk: usize| {
            let mut acc = A::empty();
            let start = chunk as u64 * chunk_size;
            let end = (start + chunk_size).min(trials);
            chunk_fn(worker, start..end, &mut acc);
            acc
        };

        let cancelled = || self.is_cancelled();
        let mut per_chunk: Vec<Option<A>> = (0..num_chunks).map(|_| None).collect();
        if self.threads == 1 || num_chunks == 1 {
            let mut worker = make_worker();
            for (chunk, slot) in per_chunk.iter_mut().enumerate() {
                if cancelled() {
                    break;
                }
                *slot = Some(run_chunk(&mut worker, chunk));
            }
        } else {
            let next = AtomicUsize::new(0);
            let workers = self.threads.min(num_chunks);
            let mut harvested: Vec<Vec<(usize, A)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut worker = make_worker();
                            let mut local = Vec::new();
                            loop {
                                if cancelled() {
                                    break;
                                }
                                let chunk = next.fetch_add(1, Ordering::Relaxed);
                                if chunk >= num_chunks {
                                    break;
                                }
                                local.push((chunk, run_chunk(&mut worker, chunk)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            });
            for (chunk, acc) in harvested.iter_mut().flat_map(std::mem::take) {
                per_chunk[chunk] = Some(acc);
            }
        }

        let mut merged = A::empty();
        for slot in per_chunk.into_iter().flatten() {
            // Every chunk is claimed exactly once; a `None` slot can only
            // remain after cancellation, in which case the caller discards
            // the partial fold through `check_cancelled`.
            merged.fold(slot);
        }
        merged
    }
}

/// One Monte-Carlo job: a bound DFG simulated under one control style and
/// one completion model for a number of trials.
///
/// The `job_id` partitions the seed space: two jobs sharing a `base_seed`
/// but differing in `job_id` draw unrelated streams, so a sweep can give
/// each swept point its own id and remain deterministic under any
/// evaluation order.
#[derive(Clone, Copy, Debug)]
pub struct SimJob<'a> {
    bound: &'a BoundDfg,
    style: ControlStyle,
    model: &'a CompletionModel,
    trials: u64,
    job_id: u64,
    config: Option<&'a SimConfig>,
}

impl<'a> SimJob<'a> {
    /// A job with 1 trial and `job_id` 0; tune with the builder methods.
    pub fn new(bound: &'a BoundDfg, style: ControlStyle, model: &'a CompletionModel) -> Self {
        SimJob {
            bound,
            style,
            model,
            trials: 1,
            job_id: 0,
            config: None,
        }
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the job's seed-space partition id.
    pub fn job_id(mut self, job_id: u64) -> Self {
        self.job_id = job_id;
        self
    }

    /// Applies a fault/watchdog configuration to every trial.
    pub fn config(mut self, config: &'a SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Runs the job on `runner`, collecting cycle statistics.
    ///
    /// Trials are executed through the bit-sliced engine ([`SlicedSim`]),
    /// up to [`LANES`] per word; lanes the sliced engine declines
    /// ([`LaneOutcome::Fallback`]) are re-run one at a time through the
    /// scalar kernel with a fresh per-trial RNG, so results — statistics
    /// and errors alike — are bit-identical to [`SimJob::run_scalar`].
    ///
    /// When any trial fails, the error of the lowest-numbered failing
    /// trial is returned — deterministically, for any thread count (see
    /// [`FirstError`]).
    pub fn run(&self, base_seed: u64, runner: &BatchRunner) -> Result<CycleStats, SimError> {
        self.run_impl(base_seed, runner, true)
    }

    /// The scalar reference path: one trial at a time through the shared
    /// cycle kernel. Kept as the oracle the sliced default is checked
    /// against (and as the diagnostics-bearing fallback), bit-identical
    /// to [`SimJob::run`].
    pub fn run_scalar(&self, base_seed: u64, runner: &BatchRunner) -> Result<CycleStats, SimError> {
        self.run_impl(base_seed, runner, false)
    }

    fn run_impl(
        &self,
        base_seed: u64,
        runner: &BatchRunner,
        sliced: bool,
    ) -> Result<CycleStats, SimError> {
        enum JobEngine {
            Dist(DistributedControlUnit),
            Cent(CentControlUnit),
            Sync,
            Elastic(DistributedControlUnit, ElasticSpec),
        }
        let engine = match self.style {
            ControlStyle::Distributed => {
                JobEngine::Dist(DistributedControlUnit::generate(self.bound))
            }
            ControlStyle::Cent => JobEngine::Cent(CentControlUnit::without_product(self.bound)),
            ControlStyle::CentSync => JobEngine::Sync,
            ControlStyle::Elastic(spec) => {
                JobEngine::Elastic(DistributedControlUnit::generate(self.bound), spec)
            }
        };
        let default_config = SimConfig::default();
        let config = self.config.unwrap_or(&default_config);
        let scalar_trial = |trial: u64| {
            let mut rng = trial_rng(base_seed, self.job_id, trial);
            match &engine {
                JobEngine::Dist(cu) => {
                    simulate_distributed_with(self.bound, cu, self.model, None, &mut rng, config)
                }
                JobEngine::Cent(cu) => {
                    simulate_cent_with(self.bound, cu, self.model, None, &mut rng, config)
                }
                JobEngine::Sync => {
                    simulate_cent_sync_with(self.bound, self.model, None, &mut rng, config)
                }
                JobEngine::Elastic(cu, spec) => simulate_elastic_with(
                    self.bound,
                    cu,
                    self.model,
                    None,
                    &mut rng,
                    config,
                    *spec,
                    elastic_trial_skew_seed(base_seed, self.job_id, trial),
                ),
            }
        };
        let (stats, errors): (CycleStats, FirstError) = if sliced {
            runner.run_chunked(
                self.trials,
                || {
                    let sim = match &engine {
                        JobEngine::Dist(cu) | JobEngine::Elastic(cu, _) => {
                            SlicedSim::distributed(self.bound, cu, None)
                        }
                        // CENT is the product-free wrapper around the same
                        // controller bank, so its sliced run is the DIST
                        // run over `components()`.
                        JobEngine::Cent(cu) => {
                            SlicedSim::distributed(self.bound, cu.components(), None)
                        }
                        JobEngine::Sync => SlicedSim::cent_sync(self.bound, None),
                    };
                    (sim, Vec::<StdRng>::new(), Vec::<u64>::new())
                },
                |(sim, rngs, skews), range, (acc, errors): &mut (CycleStats, FirstError)| {
                    let mut start = range.start;
                    while start < range.end {
                        let end = (start + LANES as u64).min(range.end);
                        rngs.clear();
                        for trial in start..end {
                            rngs.push(trial_rng(base_seed, self.job_id, trial));
                        }
                        let models = LaneModels::Shared(self.model);
                        let cfgs = LaneConfigs::Shared(config);
                        let out = match &engine {
                            JobEngine::Elastic(_, spec) => {
                                skews.clear();
                                for trial in start..end {
                                    skews.push(elastic_trial_skew_seed(
                                        base_seed,
                                        self.job_id,
                                        trial,
                                    ));
                                }
                                sim.run_elastic(*spec, skews, &models, &cfgs, rngs)
                            }
                            _ => sim.run(&models, &cfgs, rngs),
                        };
                        for (lane, outcome) in out.iter().enumerate() {
                            match outcome {
                                LaneOutcome::Done(r) => acc.record(r.cycles),
                                LaneOutcome::Fallback => match scalar_trial(start + lane as u64) {
                                    Ok(r) => acc.record(r.cycles),
                                    Err(e) => errors.record(start + lane as u64, e),
                                },
                            }
                        }
                        start = end;
                    }
                },
            )
        } else {
            runner.run(
                self.trials,
                |trial, (acc, errors): &mut (CycleStats, FirstError)| match scalar_trial(trial) {
                    Ok(r) => acc.record(r.cycles),
                    Err(e) => errors.record(trial, e),
                },
            )
        };
        runner.check_cancelled()?;
        errors.into_result()?;
        Ok(stats)
    }
}

/// Parallel counterpart of [`crate::latency_summary`]: best/worst from the
/// deterministic extremes, averages from batched Bernoulli jobs (one
/// `job_id` per swept `P`).
///
/// Returns [`SimError::InvalidConfig`] when `trials == 0`.
pub fn latency_summary_batch(
    bound: &BoundDfg,
    style: ControlStyle,
    p_values: &[f64],
    trials: u64,
    base_seed: u64,
    runner: &BatchRunner,
) -> Result<LatencySummary, SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency summary needs trials >= 1".to_string(),
        ));
    }
    // The elastic envelope pins the schedule-space extremes (stall-free
    // floor / saturated ceiling) so it brackets the seeded averages; the
    // synchronous styles take the completion-model extremes as before.
    let (best_cycles, worst_cycles) = if let ControlStyle::Elastic(spec) = style {
        let cu = DistributedControlUnit::generate(bound);
        let fault_free = SimConfig::default();
        let floor = ElasticSpec {
            skew_bound: 0,
            ..spec
        };
        let mut rng = trial_rng(base_seed, u64::MAX, 0);
        (
            simulate_elastic_with(
                bound,
                &cu,
                &CompletionModel::AlwaysShort,
                None,
                &mut rng,
                &fault_free,
                floor,
                0,
            )?
            .cycles,
            simulate_elastic_saturated(
                bound,
                &cu,
                &CompletionModel::AlwaysLong,
                None,
                &mut rng,
                &fault_free,
                spec,
            )?
            .cycles,
        )
    } else {
        let serial = BatchRunner::serial();
        let best =
            SimJob::new(bound, style, &CompletionModel::AlwaysShort).run(base_seed, &serial)?;
        let worst =
            SimJob::new(bound, style, &CompletionModel::AlwaysLong).run(base_seed, &serial)?;
        (best.min, worst.max)
    };
    let mut average_cycles = Vec::with_capacity(p_values.len());
    for (idx, &p) in p_values.iter().enumerate() {
        let model = CompletionModel::Bernoulli { p };
        let stats = SimJob::new(bound, style, &model)
            .trials(trials)
            .job_id(idx as u64)
            .run(base_seed, runner)?;
        average_cycles.push(stats.mean());
    }
    Ok(LatencySummary {
        best_cycles,
        average_cycles,
        worst_cycles,
        p_values: p_values.to_vec(),
    })
}

/// Parallel counterpart of [`crate::latency_pair`]: per trial, one
/// completion table is drawn and fed to **both** control styles, so the
/// comparison stays coupled (distributed dominates per-trial); the trials
/// themselves fan out over `runner`'s workers.
///
/// Returns `(sync, dist)`, or [`SimError::InvalidConfig`] when
/// `trials == 0`.
pub fn latency_pair_batch(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: u64,
    base_seed: u64,
    runner: &BatchRunner,
) -> Result<(LatencySummary, LatencySummary), SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency pair needs trials >= 1".to_string(),
        ));
    }
    let fault_free = SimConfig::default();
    let cu = DistributedControlUnit::generate(bound);
    let num_ops = bound.dfg().num_ops();
    let mut rng = trial_rng(base_seed, u64::MAX, 0);
    let measure = |model: &CompletionModel, rng: &mut StdRng| -> Result<(usize, usize), SimError> {
        Ok((
            simulate_cent_sync_with(bound, model, None, rng, &fault_free)?.cycles,
            simulate_distributed_with(bound, &cu, model, None, rng, &fault_free)?.cycles,
        ))
    };
    let (sync_best, dist_best) = measure(&CompletionModel::AlwaysShort, &mut rng)?;
    let (sync_worst, dist_worst) = measure(&CompletionModel::AlwaysLong, &mut rng)?;
    let mut sync_avg = Vec::with_capacity(p_values.len());
    let mut dist_avg = Vec::with_capacity(p_values.len());
    for (idx, &p) in p_values.iter().enumerate() {
        let (sync, dist, errors): (CycleStats, CycleStats, FirstError) = runner.run_chunked(
            trials,
            || {
                (
                    SlicedSim::cent_sync(bound, None),
                    SlicedSim::distributed(bound, &cu, None),
                    Vec::<StdRng>::new(),
                    Vec::<CompletionModel>::new(),
                )
            },
            |(sync_sim, dist_sim, rngs, tables),
             range,
             (sync, dist, errors): &mut (CycleStats, CycleStats, FirstError)| {
                let mut start = range.start;
                while start < range.end {
                    let end = (start + LANES as u64).min(range.end);
                    rngs.clear();
                    tables.clear();
                    // Draw each lane's table from its own trial RNG first,
                    // consuming exactly what the scalar path consumes; the
                    // table models are RNG-neutral afterwards.
                    for trial in start..end {
                        let mut rng = trial_rng(base_seed, idx as u64, trial);
                        tables.push(CompletionModel::draw_table(num_ops, p, &mut rng));
                        rngs.push(rng);
                    }
                    let models = LaneModels::PerLane(&tables[..]);
                    let cfgs = LaneConfigs::Shared(&fault_free);
                    let sync_out = sync_sim.run(&models, &cfgs, rngs);
                    let dist_out = dist_sim.run(&models, &cfgs, rngs);
                    for (lane, (so, do_)) in sync_out.iter().zip(dist_out.iter()).enumerate() {
                        let trial = start + lane as u64;
                        match (so, do_) {
                            (LaneOutcome::Done(s), LaneOutcome::Done(d)) => {
                                let (s, d) = (s.cycles, d.cycles);
                                debug_assert!(
                                    d <= s,
                                    "distributed lost a coupled trial: {d} > {s}"
                                );
                                sync.record(s);
                                dist.record(d);
                            }
                            _ => {
                                // Any declined lane gets a full scalar
                                // re-measure from a fresh trial RNG.
                                let mut rng = trial_rng(base_seed, idx as u64, trial);
                                let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                                match measure(&table, &mut rng) {
                                    Ok((s, d)) => {
                                        debug_assert!(
                                            d <= s,
                                            "distributed lost a coupled trial: {d} > {s}"
                                        );
                                        sync.record(s);
                                        dist.record(d);
                                    }
                                    Err(e) => errors.record(trial, e),
                                }
                            }
                        }
                    }
                    start = end;
                }
            },
        );
        runner.check_cancelled()?;
        errors.into_result()?;
        sync_avg.push(sync.mean());
        dist_avg.push(dist.mean());
    }
    Ok((
        LatencySummary {
            best_cycles: sync_best,
            average_cycles: sync_avg,
            worst_cycles: sync_worst,
            p_values: p_values.to_vec(),
        },
        LatencySummary {
            best_cycles: dist_best,
            average_cycles: dist_avg,
            worst_cycles: dist_worst,
            p_values: p_values.to_vec(),
        },
    ))
}

/// Parallel counterpart of [`crate::latency_triple`]: per trial, one
/// completion table is drawn and fed to **all three** control styles. The
/// table models are RNG-neutral, so the sync and dist legs reproduce
/// [`latency_pair_batch`] bit for bit under the same seeds; the CENT leg's
/// per-trial equality with DIST (bisimulation) is debug-asserted.
///
/// Returns `(sync, dist, cent)`, or [`SimError::InvalidConfig`] when
/// `trials == 0`.
pub fn latency_triple_batch(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: u64,
    base_seed: u64,
    runner: &BatchRunner,
) -> Result<(LatencySummary, LatencySummary, LatencySummary), SimError> {
    let indexed: Vec<(u64, f64)> = p_values
        .iter()
        .enumerate()
        .map(|(idx, &p)| (idx as u64, p))
        .collect();
    latency_triple_batch_indexed(bound, &indexed, trials, base_seed, runner)
}

/// [`latency_triple_batch`] over an explicit `(job_id, p)` list.
///
/// Each swept `P` seeds its trials from the *supplied* `job_id` rather
/// than its position in the slice, so a contiguous sub-range of a larger
/// sweep — run with the original global indices — reproduces exactly the
/// per-`P` averages the full sweep would produce. This is the primitive a
/// distributed coordinator partitions on: merging per-partition
/// `average_cycles`/`p_values` in partition order reassembles the
/// single-node summary bit for bit (best/worst legs are deterministic
/// extremes, identical in every partition).
///
/// Returns [`SimError::InvalidConfig`] when `trials == 0`.
pub fn latency_triple_batch_indexed(
    bound: &BoundDfg,
    indexed_p: &[(u64, f64)],
    trials: u64,
    base_seed: u64,
    runner: &BatchRunner,
) -> Result<(LatencySummary, LatencySummary, LatencySummary), SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency triple needs trials >= 1".to_string(),
        ));
    }
    let fault_free = SimConfig::default();
    let cu = DistributedControlUnit::generate(bound);
    let cent_cu = CentControlUnit::without_product(bound);
    let num_ops = bound.dfg().num_ops();
    let mut rng = trial_rng(base_seed, u64::MAX, 0);
    let measure =
        |model: &CompletionModel, rng: &mut StdRng| -> Result<(usize, usize, usize), SimError> {
            Ok((
                simulate_cent_sync_with(bound, model, None, rng, &fault_free)?.cycles,
                simulate_distributed_with(bound, &cu, model, None, rng, &fault_free)?.cycles,
                simulate_cent_with(bound, &cent_cu, model, None, rng, &fault_free)?.cycles,
            ))
        };
    let (sync_best, dist_best, cent_best) = measure(&CompletionModel::AlwaysShort, &mut rng)?;
    let (sync_worst, dist_worst, cent_worst) = measure(&CompletionModel::AlwaysLong, &mut rng)?;
    let mut sync_avg = Vec::with_capacity(indexed_p.len());
    let mut dist_avg = Vec::with_capacity(indexed_p.len());
    let mut cent_avg = Vec::with_capacity(indexed_p.len());
    for &(idx, p) in indexed_p {
        let (sync, dist, cent, errors): (CycleStats, CycleStats, CycleStats, FirstError) =
            runner.run_chunked(
                trials,
                || {
                    // CENT shares DIST's controller bank (`components()`),
                    // so one sliced DIST run serves both legs; the scalar
                    // re-measure path keeps the per-trial debug assert.
                    (
                        SlicedSim::cent_sync(bound, None),
                        SlicedSim::distributed(bound, &cu, None),
                        Vec::<StdRng>::new(),
                        Vec::<CompletionModel>::new(),
                    )
                },
                |(sync_sim, dist_sim, rngs, tables),
                 range,
                 (sync, dist, cent, errors): &mut (
                    CycleStats,
                    CycleStats,
                    CycleStats,
                    FirstError,
                )| {
                    let mut start = range.start;
                    while start < range.end {
                        let end = (start + LANES as u64).min(range.end);
                        rngs.clear();
                        tables.clear();
                        for trial in start..end {
                            let mut rng = trial_rng(base_seed, idx, trial);
                            tables.push(CompletionModel::draw_table(num_ops, p, &mut rng));
                            rngs.push(rng);
                        }
                        let models = LaneModels::PerLane(&tables[..]);
                        let cfgs = LaneConfigs::Shared(&fault_free);
                        let sync_out = sync_sim.run(&models, &cfgs, rngs);
                        let dist_out = dist_sim.run(&models, &cfgs, rngs);
                        for (lane, (so, do_)) in sync_out.iter().zip(dist_out.iter()).enumerate() {
                            let trial = start + lane as u64;
                            match (so, do_) {
                                (LaneOutcome::Done(s), LaneOutcome::Done(d)) => {
                                    let (s, d) = (s.cycles, d.cycles);
                                    debug_assert!(
                                        d <= s,
                                        "distributed lost a coupled trial: {d} > {s}"
                                    );
                                    sync.record(s);
                                    dist.record(d);
                                    cent.record(d);
                                }
                                _ => {
                                    let mut rng = trial_rng(base_seed, idx, trial);
                                    let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                                    match measure(&table, &mut rng) {
                                        Ok((s, d, c)) => {
                                            debug_assert!(
                                                d <= s,
                                                "distributed lost a coupled trial: {d} > {s}"
                                            );
                                            debug_assert_eq!(
                                                c, d,
                                                "CENT diverged from DIST on a coupled trial"
                                            );
                                            sync.record(s);
                                            dist.record(d);
                                            cent.record(c);
                                        }
                                        Err(e) => errors.record(trial, e),
                                    }
                                }
                            }
                        }
                        start = end;
                    }
                },
            );
        runner.check_cancelled()?;
        errors.into_result()?;
        sync_avg.push(sync.mean());
        dist_avg.push(dist.mean());
        cent_avg.push(cent.mean());
    }
    let summary = |best, avg: Vec<f64>, worst| LatencySummary {
        best_cycles: best,
        average_cycles: avg,
        worst_cycles: worst,
        p_values: indexed_p.iter().map(|&(_, p)| p).collect(),
    };
    Ok((
        summary(sync_best, sync_avg, sync_worst),
        summary(dist_best, dist_avg, dist_worst),
        summary(cent_best, cent_avg, cent_worst),
    ))
}

/// Parallel counterpart of [`crate::latency_quad`]: per trial, one
/// completion table is drawn and fed to **all four** control styles. The
/// elastic leg's skew schedule comes from the salted
/// [`elastic_trial_skew_seed`] stream — never from the trial RNG — so the
/// sync/dist/cent legs reproduce [`latency_triple_batch`] bit for bit
/// under the same seeds.
///
/// Returns `(sync, dist, cent, elastic)`, or
/// [`SimError::InvalidConfig`] when `trials == 0`.
pub fn latency_quad_batch(
    bound: &BoundDfg,
    p_values: &[f64],
    trials: u64,
    base_seed: u64,
    spec: ElasticSpec,
    runner: &BatchRunner,
) -> Result<
    (
        LatencySummary,
        LatencySummary,
        LatencySummary,
        LatencySummary,
    ),
    SimError,
> {
    let indexed: Vec<(u64, f64)> = p_values
        .iter()
        .enumerate()
        .map(|(idx, &p)| (idx as u64, p))
        .collect();
    latency_quad_batch_indexed(bound, &indexed, trials, base_seed, spec, runner)
}

/// [`latency_quad_batch`] over an explicit `(job_id, p)` list — the
/// partitionable primitive, like [`latency_triple_batch_indexed`]: a
/// contiguous sub-range run with its original global indices reproduces
/// the full sweep's per-`P` averages exactly, elastic leg included
/// (its skew seeds derive from the supplied `job_id`, not the slice
/// position).
///
/// Returns [`SimError::InvalidConfig`] when `trials == 0`.
pub fn latency_quad_batch_indexed(
    bound: &BoundDfg,
    indexed_p: &[(u64, f64)],
    trials: u64,
    base_seed: u64,
    spec: ElasticSpec,
    runner: &BatchRunner,
) -> Result<
    (
        LatencySummary,
        LatencySummary,
        LatencySummary,
        LatencySummary,
    ),
    SimError,
> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "latency quad needs trials >= 1".to_string(),
        ));
    }
    let fault_free = SimConfig::default();
    let cu = DistributedControlUnit::generate(bound);
    let cent_cu = CentControlUnit::without_product(bound);
    let num_ops = bound.dfg().num_ops();
    let mut rng = trial_rng(base_seed, u64::MAX, 0);
    let measure = |model: &CompletionModel,
                   rng: &mut StdRng,
                   trial_skew: u64|
     -> Result<(usize, usize, usize, usize), SimError> {
        Ok((
            simulate_cent_sync_with(bound, model, None, rng, &fault_free)?.cycles,
            simulate_distributed_with(bound, &cu, model, None, rng, &fault_free)?.cycles,
            simulate_cent_with(bound, &cent_cu, model, None, rng, &fault_free)?.cycles,
            simulate_elastic_with(bound, &cu, model, None, rng, &fault_free, spec, trial_skew)?
                .cycles,
        ))
    };
    // Deterministic-extreme legs. The elastic cells pin the
    // schedule-space extremes — stall-free floor for best, saturated
    // ceiling for worst — so the envelope brackets the seeded averages
    // and stays invariant under partitioning. Deterministic models draw
    // nothing from `rng`, so the discarded elastic legs of the two
    // `measure` calls leave the stream untouched.
    let floor = ElasticSpec {
        skew_bound: 0,
        ..spec
    };
    let (sync_best, dist_best, cent_best, _) = measure(&CompletionModel::AlwaysShort, &mut rng, 0)?;
    let elas_best = simulate_elastic_with(
        bound,
        &cu,
        &CompletionModel::AlwaysShort,
        None,
        &mut rng,
        &fault_free,
        floor,
        0,
    )?
    .cycles;
    let (sync_worst, dist_worst, cent_worst, _) =
        measure(&CompletionModel::AlwaysLong, &mut rng, 0)?;
    let elas_worst = simulate_elastic_saturated(
        bound,
        &cu,
        &CompletionModel::AlwaysLong,
        None,
        &mut rng,
        &fault_free,
        spec,
    )?
    .cycles;
    let mut sync_avg = Vec::with_capacity(indexed_p.len());
    let mut dist_avg = Vec::with_capacity(indexed_p.len());
    let mut cent_avg = Vec::with_capacity(indexed_p.len());
    let mut elas_avg = Vec::with_capacity(indexed_p.len());
    for &(idx, p) in indexed_p {
        type QuadAcc = (CycleStats, CycleStats, CycleStats, CycleStats, FirstError);
        let (sync, dist, cent, elas, errors): QuadAcc = runner.run_chunked(
            trials,
            || {
                (
                    SlicedSim::cent_sync(bound, None),
                    SlicedSim::distributed(bound, &cu, None),
                    Vec::<StdRng>::new(),
                    Vec::<CompletionModel>::new(),
                    Vec::<u64>::new(),
                )
            },
            |(sync_sim, dist_sim, rngs, tables, skews), range, acc: &mut QuadAcc| {
                let (sync, dist, cent, elas, errors) = acc;
                let mut start = range.start;
                while start < range.end {
                    let end = (start + LANES as u64).min(range.end);
                    rngs.clear();
                    tables.clear();
                    skews.clear();
                    for trial in start..end {
                        let mut rng = trial_rng(base_seed, idx, trial);
                        tables.push(CompletionModel::draw_table(num_ops, p, &mut rng));
                        rngs.push(rng);
                        skews.push(elastic_trial_skew_seed(base_seed, idx, trial));
                    }
                    let models = LaneModels::PerLane(&tables[..]);
                    let cfgs = LaneConfigs::Shared(&fault_free);
                    let sync_out = sync_sim.run(&models, &cfgs, rngs);
                    let dist_out = dist_sim.run(&models, &cfgs, rngs);
                    let elas_out = dist_sim.run_elastic(spec, skews, &models, &cfgs, rngs);
                    for (lane, (so, do_)) in sync_out.iter().zip(dist_out.iter()).enumerate() {
                        let trial = start + lane as u64;
                        let d_cycles = match (so, do_) {
                            (LaneOutcome::Done(s), LaneOutcome::Done(d)) => {
                                let (s, d) = (s.cycles, d.cycles);
                                debug_assert!(
                                    d <= s,
                                    "distributed lost a coupled trial: {d} > {s}"
                                );
                                sync.record(s);
                                dist.record(d);
                                cent.record(d);
                                Some(d)
                            }
                            _ => {
                                let mut rng = trial_rng(base_seed, idx, trial);
                                let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                                let skew = elastic_trial_skew_seed(base_seed, idx, trial);
                                match measure(&table, &mut rng, skew) {
                                    Ok((s, d, c, e)) => {
                                        debug_assert!(
                                            d <= s,
                                            "distributed lost a coupled trial: {d} > {s}"
                                        );
                                        debug_assert_eq!(
                                            c, d,
                                            "CENT diverged from DIST on a coupled trial"
                                        );
                                        sync.record(s);
                                        dist.record(d);
                                        cent.record(c);
                                        elas.record(e);
                                    }
                                    Err(er) => errors.record(trial, er),
                                }
                                // Elastic already handled on this path.
                                None
                            }
                        };
                        if let Some(d) = d_cycles {
                            match &elas_out[lane] {
                                LaneOutcome::Done(e) => {
                                    debug_assert!(
                                        d <= e.cycles,
                                        "elastic beat dist on a coupled trial"
                                    );
                                    elas.record(e.cycles);
                                }
                                LaneOutcome::Fallback => {
                                    let mut rng = trial_rng(base_seed, idx, trial);
                                    let table = CompletionModel::draw_table(num_ops, p, &mut rng);
                                    let skew = elastic_trial_skew_seed(base_seed, idx, trial);
                                    match simulate_elastic_with(
                                        bound,
                                        &cu,
                                        &table,
                                        None,
                                        &mut rng,
                                        &fault_free,
                                        spec,
                                        skew,
                                    ) {
                                        Ok(e) => {
                                            debug_assert!(
                                                d <= e.cycles,
                                                "elastic beat dist on a coupled trial"
                                            );
                                            elas.record(e.cycles);
                                        }
                                        Err(er) => errors.record(trial, er),
                                    }
                                }
                            }
                        }
                    }
                    start = end;
                }
            },
        );
        runner.check_cancelled()?;
        errors.into_result()?;
        sync_avg.push(sync.mean());
        dist_avg.push(dist.mean());
        cent_avg.push(cent.mean());
        elas_avg.push(elas.mean());
    }
    let summary = |best, avg: Vec<f64>, worst| LatencySummary {
        best_cycles: best,
        average_cycles: avg,
        worst_cycles: worst,
        p_values: indexed_p.iter().map(|&(_, p)| p).collect(),
    };
    Ok((
        summary(sync_best, sync_avg, sync_worst),
        summary(dist_best, dist_avg, dist_worst),
        summary(cent_best, cent_avg, cent_worst),
        summary(elas_best, elas_avg, elas_worst),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tauhls_dfg::benchmarks::{fir3, fir5};
    use tauhls_sched::Allocation;

    fn fir5_bound() -> BoundDfg {
        BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0))
    }

    #[test]
    fn derive_seed_separates_coordinates() {
        let s = derive_seed(1, 2, 3);
        assert_eq!(s, derive_seed(1, 2, 3));
        assert_ne!(s, derive_seed(0, 2, 3));
        assert_ne!(s, derive_seed(1, 3, 3));
        assert_ne!(s, derive_seed(1, 2, 4));
        // A window of trial seeds stays collision-free.
        let mut seeds: Vec<u64> = (0..10_000).map(|t| derive_seed(7, 0, t)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn indexed_triple_reproduces_contiguous_sub_sweeps() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(1, 1, 0));
        let ps = [0.1, 0.35, 0.5, 0.75, 0.9];
        let runner = BatchRunner::new(2);
        let (sync, dist, cent) = latency_triple_batch(&bound, &ps, 40, 9, &runner).unwrap();
        for (lo, hi) in [(0usize, 2usize), (2, 5), (1, 4), (0, 5)] {
            let indexed: Vec<(u64, f64)> = (lo..hi).map(|i| (i as u64, ps[i])).collect();
            let (s, d, c) = latency_triple_batch_indexed(&bound, &indexed, 40, 9, &runner).unwrap();
            assert_eq!(s.best_cycles, sync.best_cycles);
            assert_eq!(s.worst_cycles, sync.worst_cycles);
            assert_eq!(s.average_cycles, sync.average_cycles[lo..hi].to_vec());
            assert_eq!(d.average_cycles, dist.average_cycles[lo..hi].to_vec());
            assert_eq!(c.average_cycles, cent.average_cycles[lo..hi].to_vec());
            assert_eq!(s.p_values, ps[lo..hi].to_vec());
        }
    }

    #[test]
    fn cycle_stats_merge_is_exact() {
        let samples = [3usize, 5, 4, 4, 7, 3, 5, 6, 4, 5, 9, 3];
        let mut whole = CycleStats::new();
        for &s in &samples {
            whole.record(s);
        }
        for split in 1..samples.len() {
            let (a, b) = samples.split_at(split);
            let mut left = CycleStats::new();
            let mut right = CycleStats::new();
            a.iter().for_each(|&s| left.record(s));
            b.iter().for_each(|&s| right.record(s));
            left.merge(&right);
            assert_eq!(left, whole, "split at {split}");
        }
        assert_eq!(whole.min, 3);
        assert_eq!(whole.max, 9);
        assert_eq!(whole.count, 12);
    }

    #[test]
    fn runner_is_thread_count_invariant() {
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let job = SimJob::new(&bound, ControlStyle::Distributed, &model).trials(300);
        let reference = job.run(11, &BatchRunner::serial()).unwrap();
        for threads in [2usize, 3, 8] {
            assert_eq!(reference, job.run(11, &BatchRunner::new(threads)).unwrap());
        }
        // Odd chunk sizes cover the ragged-final-chunk path.
        let ragged = job
            .run(11, &BatchRunner::new(4).with_chunk_size(7))
            .unwrap();
        assert_eq!(reference, ragged);
    }

    #[test]
    fn first_error_is_deterministic_by_trial_index() {
        use crate::error::SimError;
        let mut a = FirstError::default();
        a.record(9, SimError::InvalidConfig("nine".to_string()));
        a.record(3, SimError::InvalidConfig("three".to_string()));
        a.record(5, SimError::InvalidConfig("five".to_string()));
        assert_eq!(a.first().map(|(t, _)| *t), Some(3));
        // fold order must not matter: the lowest trial wins either way.
        let mut left = FirstError::default();
        left.record(7, SimError::InvalidConfig("seven".to_string()));
        let mut right = FirstError::default();
        right.record(2, SimError::InvalidConfig("two".to_string()));
        let mut folded = FirstError::empty();
        folded.fold(left.clone());
        folded.fold(right.clone());
        assert_eq!(folded.first().map(|(t, _)| *t), Some(2));
        let mut folded_rev = FirstError::empty();
        folded_rev.fold(right);
        folded_rev.fold(left);
        assert_eq!(folded, folded_rev);
        assert!(folded.into_result().is_err());
        assert!(FirstError::default().into_result().is_ok());
    }

    #[test]
    fn pair_batch_matches_serial_oracle_and_dominates() {
        let bound = fir5_bound();
        let ps = [0.9, 0.5];
        let serial = latency_pair_batch(&bound, &ps, 400, 5, &BatchRunner::serial()).unwrap();
        let parallel = latency_pair_batch(&bound, &ps, 400, 5, &BatchRunner::new(8)).unwrap();
        assert_eq!(serial, parallel);
        let (sync, dist) = parallel;
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s);
        }
        assert!(dist.worst_cycles <= sync.worst_cycles);
    }

    #[test]
    fn triple_batch_reproduces_pair_and_cent_matches_dist() {
        let bound = fir5_bound();
        let ps = [0.9, 0.5];
        let (pair_sync, pair_dist) =
            latency_pair_batch(&bound, &ps, 400, 5, &BatchRunner::serial()).unwrap();
        let serial = latency_triple_batch(&bound, &ps, 400, 5, &BatchRunner::serial()).unwrap();
        let parallel = latency_triple_batch(&bound, &ps, 400, 5, &BatchRunner::new(8)).unwrap();
        assert_eq!(serial, parallel);
        let (sync, dist, cent) = parallel;
        // The extra CENT leg must not perturb the established pair.
        assert_eq!(sync, pair_sync);
        assert_eq!(dist, pair_dist);
        // And CENT is cycle-identical to DIST, trial for trial.
        assert_eq!(cent, dist);
    }

    #[test]
    fn quad_batch_reproduces_triple_and_is_thread_invariant() {
        let bound = fir5_bound();
        let ps = [0.9, 0.5];
        let spec = ElasticSpec::default();
        let (tri_sync, tri_dist, tri_cent) =
            latency_triple_batch(&bound, &ps, 400, 5, &BatchRunner::serial()).unwrap();
        let serial = latency_quad_batch(&bound, &ps, 400, 5, spec, &BatchRunner::serial()).unwrap();
        let parallel = latency_quad_batch(&bound, &ps, 400, 5, spec, &BatchRunner::new(8)).unwrap();
        assert_eq!(serial, parallel);
        let (sync, dist, cent, elas) = parallel;
        // The extra ELASTIC leg must not perturb the established triple.
        assert_eq!(sync, tri_sync);
        assert_eq!(dist, tri_dist);
        assert_eq!(cent, tri_cent);
        // Elastic clocking only costs cycles.
        for (d, e) in dist.average_cycles.iter().zip(&elas.average_cycles) {
            assert!(d <= e, "elastic avg {e} < dist avg {d}");
        }
    }

    #[test]
    fn quad_batch_zero_spec_collapses_elastic_onto_dist() {
        let bound = fir5_bound();
        let (_, dist, _, elas) = latency_quad_batch(
            &bound,
            &[0.9, 0.5],
            300,
            7,
            ElasticSpec::zero(),
            &BatchRunner::new(4),
        )
        .unwrap();
        assert_eq!(dist, elas);
    }

    #[test]
    fn indexed_quad_reproduces_contiguous_sub_sweeps() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(1, 1, 0));
        let ps = [0.1, 0.5, 0.9];
        let spec = ElasticSpec::default();
        let runner = BatchRunner::new(2);
        let (_, _, _, elas) = latency_quad_batch(&bound, &ps, 40, 9, spec, &runner).unwrap();
        for (lo, hi) in [(0usize, 2usize), (1, 3)] {
            let indexed: Vec<(u64, f64)> = (lo..hi).map(|i| (i as u64, ps[i])).collect();
            let (_, _, _, e) =
                latency_quad_batch_indexed(&bound, &indexed, 40, 9, spec, &runner).unwrap();
            assert_eq!(e.average_cycles, elas.average_cycles[lo..hi].to_vec());
            assert_eq!(e.best_cycles, elas.best_cycles);
            assert_eq!(e.worst_cycles, elas.worst_cycles);
        }
    }

    #[test]
    fn elastic_job_is_thread_and_engine_invariant() {
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let style = ControlStyle::Elastic(ElasticSpec::default());
        for trials in [1u64, 63, 65, 300] {
            let job = SimJob::new(&bound, style, &model).trials(trials);
            let scalar = job.run_scalar(11, &BatchRunner::serial()).unwrap();
            for runner in [
                BatchRunner::serial(),
                BatchRunner::new(4),
                BatchRunner::new(4).with_chunk_size(10),
            ] {
                assert_eq!(scalar, job.run(11, &runner).unwrap(), "trials {trials}");
            }
        }
    }

    #[test]
    fn cent_job_matches_distributed_job() {
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let dist = SimJob::new(&bound, ControlStyle::Distributed, &model)
            .trials(300)
            .run(11, &BatchRunner::new(4))
            .unwrap();
        let cent = SimJob::new(&bound, ControlStyle::Cent, &model)
            .trials(300)
            .run(11, &BatchRunner::new(4))
            .unwrap();
        assert_eq!(dist, cent);
    }

    #[test]
    fn summary_batch_brackets_extremes() {
        let bound = BoundDfg::bind(&fir3(), &Allocation::paper(1, 1, 0));
        let s = latency_summary_batch(
            &bound,
            ControlStyle::Distributed,
            &[0.9, 0.5, 0.1],
            500,
            3,
            &BatchRunner::new(2),
        )
        .unwrap();
        assert!(s.best_cycles as f64 <= s.average_cycles[0]);
        assert!(s.average_cycles[0] <= s.average_cycles[1]);
        assert!(s.average_cycles[1] <= s.average_cycles[2]);
        assert!(s.average_cycles[2] <= s.worst_cycles as f64);
    }

    #[test]
    fn zero_trials_yield_empty_accumulator() {
        let runner = BatchRunner::new(4);
        let acc: CycleStats = runner.run(0, |_, _| unreachable!());
        assert_eq!(acc.count, 0);
    }

    #[test]
    fn pre_cancelled_runner_reports_cancellation() {
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 4] {
            let runner = BatchRunner::new(threads).with_cancel(token.clone());
            // No chunk is ever claimed; the trial closure must not run.
            let acc: CycleStats = runner.run(100, |_, _| unreachable!());
            assert_eq!(acc.count, 0);
            let err = SimJob::new(&bound, ControlStyle::Distributed, &model)
                .trials(100)
                .run(3, &runner)
                .unwrap_err();
            assert_eq!(err, SimError::Cancelled);
            let err = latency_triple_batch(&bound, &[0.5], 100, 3, &runner).unwrap_err();
            assert_eq!(err, SimError::Cancelled);
        }
    }

    #[test]
    fn mid_run_cancellation_stops_claiming_chunks() {
        let token = CancelToken::new();
        let runner = BatchRunner::new(1)
            .with_chunk_size(1)
            .with_cancel(token.clone());
        // Cancel from inside trial 4: later chunks must never start.
        let stats: CycleStats = runner.run(1_000, |trial, acc: &mut CycleStats| {
            assert!(trial <= 4, "chunk claimed after cancellation");
            if trial == 4 {
                token.cancel();
            }
            acc.record(trial as usize);
        });
        assert_eq!(stats.count, 5);
        assert_eq!(runner.check_cancelled(), Err(SimError::Cancelled));
    }

    #[test]
    fn uncancelled_token_leaves_results_bit_identical() {
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let job = SimJob::new(&bound, ControlStyle::Distributed, &model).trials(300);
        let plain = job.run(11, &BatchRunner::new(4)).unwrap();
        let with_token = job
            .run(11, &BatchRunner::new(4).with_cancel(CancelToken::new()))
            .unwrap();
        assert_eq!(plain, with_token);
    }

    #[test]
    fn child_tokens_inherit_but_never_propagate_upward() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();

        // Cancelling a child is local: the parent stays live.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(child.is_self_cancelled());
        assert!(!parent.is_cancelled());
        // ... but flows down to its own descendants.
        assert!(grandchild.is_cancelled());
        assert!(!grandchild.is_self_cancelled());

        // Cancelling the root reaches every descendant, and the cause
        // stays distinguishable from a local cancel.
        let other = parent.child();
        assert!(!other.is_cancelled());
        parent.cancel();
        assert!(other.is_cancelled());
        assert!(!other.is_self_cancelled());
    }

    #[test]
    fn sliced_job_matches_scalar_oracle_at_lane_boundaries() {
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        for style in [
            ControlStyle::Distributed,
            ControlStyle::Cent,
            ControlStyle::CentSync,
        ] {
            for trials in [1u64, 63, 64, 65, 257] {
                let job = SimJob::new(&bound, style, &model).trials(trials);
                let scalar = job.run_scalar(11, &BatchRunner::serial()).unwrap();
                // The sliced default must reproduce the scalar oracle for
                // every lane width (ragged last slab included), chunk
                // size, and thread count.
                for runner in [
                    BatchRunner::serial(),
                    BatchRunner::new(4),
                    BatchRunner::new(4).with_chunk_size(10),
                    BatchRunner::serial().with_chunk_size(100),
                ] {
                    assert_eq!(
                        scalar,
                        job.run(11, &runner).unwrap(),
                        "style {style:?}, trials {trials}"
                    );
                }
            }
        }
    }

    #[test]
    fn sliced_job_matches_scalar_oracle_under_faults() {
        use crate::fault::{FaultKind, FaultPlan};
        use tauhls_dfg::OpId;
        let bound = fir5_bound();
        let model = CompletionModel::Bernoulli { p: 0.5 };
        let plans = [
            FaultPlan::single(1, FaultKind::StuckAtShort { op: OpId(1) }),
            FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(0) }),
            FaultPlan::single(2, FaultKind::DropPulse { op: OpId(2) }),
            FaultPlan::single(2, FaultKind::SpuriousPulse { op: OpId(3) }),
            FaultPlan::single(
                1,
                FaultKind::DelayLatch {
                    op: OpId(1),
                    delay: 2,
                },
            ),
            FaultPlan::single(
                2,
                FaultKind::FlipState {
                    controller: 0,
                    bit: 0,
                },
            ),
        ];
        for plan in plans {
            let config = SimConfig::with_faults(plan);
            for style in [ControlStyle::Distributed, ControlStyle::Cent] {
                let job = SimJob::new(&bound, style, &model)
                    .trials(65)
                    .config(&config);
                let scalar = job.run_scalar(11, &BatchRunner::serial());
                let sliced = job.run(11, &BatchRunner::new(4));
                assert_eq!(scalar, sliced, "style {style:?}, config {config:?}");
            }
        }
    }

    #[test]
    fn chunked_worker_is_reused_and_results_unchanged() {
        use std::sync::atomic::AtomicUsize;
        let runner = BatchRunner::serial().with_chunk_size(10);
        let built = AtomicUsize::new(0);
        let stats: CycleStats = runner.run_chunked(
            100,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::with_capacity(10)
            },
            |scratch, range, acc: &mut CycleStats| {
                // Scratch arrives dirty from the previous chunk; a
                // correct chunk body resets it before use.
                scratch.clear();
                scratch.extend(range.map(|t| t as usize));
                for &s in scratch.iter() {
                    acc.record(s);
                }
            },
        );
        // One worker (serial) means one scratch for all ten chunks.
        assert_eq!(built.load(Ordering::Relaxed), 1);
        let reference: CycleStats =
            runner.run(100, |t, acc: &mut CycleStats| acc.record(t as usize));
        assert_eq!(stats, reference);

        let built = AtomicUsize::new(0);
        let parallel: CycleStats = BatchRunner::new(4).with_chunk_size(10).run_chunked(
            100,
            || {
                built.fetch_add(1, Ordering::Relaxed);
            },
            |(), range, acc: &mut CycleStats| {
                for t in range {
                    acc.record(t as usize);
                }
            },
        );
        // At most one scratch per worker, never one per chunk.
        assert!(built.load(Ordering::Relaxed) <= 4);
        assert_eq!(parallel, reference);
    }

    #[test]
    fn mid_run_cancellation_stops_claiming_chunked_slabs() {
        let token = CancelToken::new();
        let runner = BatchRunner::new(1)
            .with_chunk_size(1)
            .with_cancel(token.clone());
        let stats: CycleStats = runner.run_chunked(
            1_000,
            || (),
            |(), range, acc: &mut CycleStats| {
                for trial in range {
                    assert!(trial <= 4, "chunk claimed after cancellation");
                    if trial == 4 {
                        token.cancel();
                    }
                    acc.record(trial as usize);
                }
            },
        );
        assert_eq!(stats.count, 5);
        assert_eq!(runner.check_cancelled(), Err(SimError::Cancelled));
    }
}
