//! Differential property suite: the bit-sliced engine against the scalar
//! oracle.
//!
//! Random DFGs (via `tauhls-dfg`'s generator), random allocations, random
//! fault plans (via `tauhls-check`), every control style plus the
//! pipelined mode, and trial counts spanning partial last slabs. Two
//! layers of comparison:
//!
//! * **job level** — `SimJob::run` (sliced default, parallel, random
//!   chunk size) against `SimJob::run_scalar` (scalar oracle, serial):
//!   reduced statistics and first-error outcomes must be byte-identical;
//! * **lane level** — `SlicedSim` lanes against the scalar simulators on
//!   the same per-trial RNG streams: every `Done` lane must equal the
//!   scalar `SimResult` exactly (per-op cycles, busy counters, values),
//!   while `Fallback` lanes are sound by construction (the batch layer
//!   re-runs them through the very oracle we compare against).

use tauhls_check::{arbitrary_plan, forall, Gen};
use tauhls_dfg::{random_dfg, RandomDfgParams};
use tauhls_fsm::DistributedControlUnit;
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{
    simulate_cent_sync_with, simulate_distributed_with, simulate_pipelined_with, trial_rng,
    BatchRunner, CompletionModel, ControlStyle, LaneConfigs, LaneModels, LaneOutcome,
    PipelinedLaneOutcome, SimConfig, SimJob, SlicedSim,
};

/// A random bound design: 3..=14 ops over Add/Sub/Mul with a random
/// shape, bound to a random paper-style allocation (telescopic
/// multipliers).
fn arbitrary_bound(g: &mut Gen) -> BoundDfg {
    let params = RandomDfgParams {
        num_ops: g.usize(3..=14),
        num_inputs: g.usize(1..=4),
        internal_edge_prob: g.unit_f64(),
        kind_weights: [3, 1, 3, 0],
    };
    let dfg = random_dfg(g.rng(), &params);
    let alloc = Allocation::paper(g.usize(1..=2), g.usize(1..=2), g.usize(1..=2));
    BoundDfg::bind(&dfg, &alloc)
}

/// A random single- or multi-fault config (or fault-free, 30% of the
/// time) sized to the design.
fn arbitrary_config(g: &mut Gen, bound: &BoundDfg, num_controllers: usize) -> SimConfig {
    if g.bool(0.3) {
        SimConfig::default()
    } else {
        let num_ops = bound.dfg().num_ops();
        SimConfig::with_faults(arbitrary_plan(
            g,
            num_ops,
            num_controllers,
            2 * num_ops + 4,
            3,
        ))
    }
}

#[test]
fn sliced_jobs_match_scalar_oracle_on_random_designs() {
    forall("sliced-equiv-jobs", 50, |g| {
        let bound = arbitrary_bound(g);
        let cu = DistributedControlUnit::generate(&bound);
        let config = arbitrary_config(g, &bound, cu.controllers().len());
        let trials = g.u64(1..=257);
        let model = CompletionModel::Bernoulli { p: g.unit_f64() };
        let seed = g.u64(0..1_000_000);
        // A random chunk size forces slabs that straddle lane boundaries.
        let chunk = g.u64(1..=96);
        for style in [
            ControlStyle::Distributed,
            ControlStyle::Cent,
            ControlStyle::CentSync,
        ] {
            let job = SimJob::new(&bound, style, &model)
                .trials(trials)
                .config(&config);
            let scalar = job.run_scalar(seed, &BatchRunner::serial());
            let sliced = job.run(seed, &BatchRunner::new(4).with_chunk_size(chunk));
            assert_eq!(
                scalar, sliced,
                "style {style:?}, trials {trials}, chunk {chunk}, config {config:?}"
            );
        }
    });
}

#[test]
fn sliced_lanes_match_scalar_results_exactly() {
    forall("sliced-equiv-lanes", 60, |g| {
        let bound = arbitrary_bound(g);
        let cu = DistributedControlUnit::generate(&bound);
        let config = arbitrary_config(g, &bound, cu.controllers().len());
        let lanes = g.usize(1..=64);
        let model = CompletionModel::Bernoulli { p: g.unit_f64() };
        let seed = g.u64(0..1_000_000);
        let models = LaneModels::Shared(&model);
        let cfgs = LaneConfigs::Shared(&config);

        let mut sim = SlicedSim::distributed(&bound, &cu, None);
        let mut rngs: Vec<_> = (0..lanes).map(|t| trial_rng(seed, 0, t as u64)).collect();
        let out = sim.run(&models, &cfgs, &mut rngs);
        let fault_free = config == SimConfig::default();
        for (t, lane) in out.iter().enumerate() {
            match lane {
                LaneOutcome::Done(r) => {
                    let mut srng = trial_rng(seed, 0, t as u64);
                    let scalar =
                        simulate_distributed_with(&bound, &cu, &model, None, &mut srng, &config);
                    assert_eq!(Ok(r), scalar.as_ref(), "dist lane {t}, config {config:?}");
                }
                LaneOutcome::Fallback => {
                    assert!(!fault_free, "fault-free dist lane {t} fell back");
                }
            }
        }

        let mut sim = SlicedSim::cent_sync(&bound, None);
        let mut rngs: Vec<_> = (0..lanes).map(|t| trial_rng(seed, 1, t as u64)).collect();
        let out = sim.run(&models, &cfgs, &mut rngs);
        for (t, lane) in out.iter().enumerate() {
            match lane {
                LaneOutcome::Done(r) => {
                    let mut srng = trial_rng(seed, 1, t as u64);
                    let scalar = simulate_cent_sync_with(&bound, &model, None, &mut srng, &config);
                    assert_eq!(Ok(r), scalar.as_ref(), "sync lane {t}, config {config:?}");
                }
                LaneOutcome::Fallback => {
                    assert!(!fault_free, "fault-free sync lane {t} fell back");
                }
            }
        }
    });
}

#[test]
fn sliced_pipelined_matches_scalar_on_random_designs() {
    forall("sliced-equiv-piped", 60, |g| {
        let bound = arbitrary_bound(g);
        let cu = DistributedControlUnit::generate(&bound);
        let config = arbitrary_config(g, &bound, cu.controllers().len());
        let iterations = g.usize(1..=4);
        let lanes = g.usize(1..=64);
        let model = CompletionModel::Bernoulli { p: g.unit_f64() };
        let seed = g.u64(0..1_000_000);

        let mut sim = SlicedSim::pipelined(&bound, &cu, iterations);
        let mut rngs: Vec<_> = (0..lanes).map(|t| trial_rng(seed, 2, t as u64)).collect();
        let out = sim.run_pipelined(
            &LaneModels::Shared(&model),
            &LaneConfigs::Shared(&config),
            &mut rngs,
        );
        let fault_free = config == SimConfig::default();
        for (t, lane) in out.iter().enumerate() {
            match lane {
                PipelinedLaneOutcome::Done(r) => {
                    let mut srng = trial_rng(seed, 2, t as u64);
                    let scalar = simulate_pipelined_with(
                        &bound, &cu, &model, iterations, &mut srng, &config,
                    );
                    assert_eq!(
                        Ok(r),
                        scalar.as_ref(),
                        "pipelined lane {t}, iters {iterations}, config {config:?}"
                    );
                }
                PipelinedLaneOutcome::Fallback => {
                    assert!(!fault_free, "fault-free pipelined lane {t} fell back");
                }
            }
        }
    });
}
