//! Fault-injection conformance suite.
//!
//! Establishes the two halves of the resilience contract:
//!
//! 1. **Inertness** — an empty `FaultPlan` reproduces the plain simulators
//!    bit for bit (same `SimResult`, same RNG stream consumption).
//! 2. **Detectability** — for every fault kind there exists an injection
//!    (found by a deterministic sweep over ops and cycles) that the engine
//!    detects and reports as a structured `SimError` with diagnostics,
//!    and the detection is bit-identical across 1, 2 and 8 threads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tauhls_dfg::benchmarks::fir5;
use tauhls_dfg::OpId;
use tauhls_sched::{Allocation, BoundDfg};
use tauhls_sim::{
    simulate_cent_sync, simulate_cent_sync_with, simulate_distributed, simulate_distributed_with,
    simulate_pipelined, simulate_pipelined_with, BatchRunner, CompletionModel, ControlStyle, Fault,
    FaultKind, FaultPlan, SimConfig, SimError, SimJob, Watchdog,
};

fn fir5_setup() -> (BoundDfg, tauhls_fsm::DistributedControlUnit) {
    let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
    let cu = tauhls_fsm::DistributedControlUnit::generate(&bound);
    (bound, cu)
}

#[test]
fn empty_plan_is_bit_identical_to_plain_simulators() {
    let (bound, cu) = fir5_setup();
    let empty = SimConfig::default();
    for model in [
        CompletionModel::AlwaysShort,
        CompletionModel::AlwaysLong,
        CompletionModel::Bernoulli { p: 0.6 },
    ] {
        for seed in 0..20 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let plain = simulate_distributed(&bound, &cu, &model, None, &mut r1).unwrap();
            let with =
                simulate_distributed_with(&bound, &cu, &model, None, &mut r2, &empty).unwrap();
            assert_eq!(plain, with, "distributed diverged at seed {seed}");
            // The RNG streams must also stay aligned after the run.
            assert_eq!(
                simulate_distributed(&bound, &cu, &model, None, &mut r1).unwrap(),
                simulate_distributed_with(&bound, &cu, &model, None, &mut r2, &empty).unwrap(),
            );

            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            assert_eq!(
                simulate_cent_sync(&bound, &model, None, &mut r1).unwrap(),
                simulate_cent_sync_with(&bound, &model, None, &mut r2, &empty).unwrap(),
            );

            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            assert_eq!(
                simulate_pipelined(&bound, &cu, &model, 6, &mut r1).unwrap(),
                simulate_pipelined_with(&bound, &cu, &model, 6, &mut r2, &empty).unwrap(),
            );
        }
    }
}

/// Sweeps injection sites until the engine reports an error for `kind`,
/// returning the first detection. Deterministic: ops and cycles are
/// enumerated in order with a fixed seed per site.
fn first_detection(
    bound: &BoundDfg,
    cu: &tauhls_fsm::DistributedControlUnit,
    make: impl Fn(OpId, usize) -> FaultKind,
) -> (FaultPlan, SimError) {
    let n = bound.dfg().num_ops();
    for op in 0..n {
        for cycle in 1..=12 {
            let plan = FaultPlan::single(cycle, make(OpId(op), cycle));
            let cfg = SimConfig::with_faults(plan.clone());
            let mut rng = StdRng::seed_from_u64(2003);
            if let Err(e) = simulate_distributed_with(
                bound,
                cu,
                &CompletionModel::Bernoulli { p: 0.5 },
                None,
                &mut rng,
                &cfg,
            ) {
                return (plan, e);
            }
        }
    }
    panic!("no injection site detected for this fault kind");
}

#[test]
fn stuck_at_long_starves_consumers_into_deadlock() {
    let (bound, cu) = fir5_setup();
    let (_, err) = first_detection(&bound, &cu, |op, _| FaultKind::StuckAtLong { op });
    let SimError::Deadlock(diag) = &err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(!diag.outstanding.is_empty());
    assert!(!diag.controllers.is_empty());
    assert!(err.detected_cycle().is_some());
}

#[test]
fn stuck_at_short_is_detected_as_desync() {
    let (bound, cu) = fir5_setup();
    let (_, err) = first_detection(&bound, &cu, |op, _| FaultKind::StuckAtShort { op });
    assert!(matches!(err, SimError::Desync(_)), "got {err}");
}

#[test]
fn dropped_pulse_is_detected() {
    let (bound, cu) = fir5_setup();
    let (_, err) = first_detection(&bound, &cu, |op, _| FaultKind::DropPulse { op });
    assert!(
        matches!(err, SimError::Deadlock(_) | SimError::Desync(_)),
        "got {err}"
    );
}

#[test]
fn spurious_pulse_is_detected() {
    let (bound, cu) = fir5_setup();
    let (_, err) = first_detection(&bound, &cu, |op, _| FaultKind::SpuriousPulse { op });
    assert!(matches!(err, SimError::Desync(_)), "got {err}");
}

#[test]
fn delayed_latch_is_detected() {
    let (bound, cu) = fir5_setup();
    let (_, err) = first_detection(&bound, &cu, |op, _| FaultKind::DelayLatch { op, delay: 3 });
    assert!(matches!(err, SimError::Desync(_)), "got {err}");
}

#[test]
fn state_register_flip_is_detected() {
    let (bound, cu) = fir5_setup();
    let n = bound.dfg().num_ops();
    let controllers = cu.controllers().len();
    for controller in 0..controllers {
        for bit in 0..4u32 {
            for cycle in 1..=12 {
                let plan = FaultPlan::single(cycle, FaultKind::FlipState { controller, bit });
                let cfg = SimConfig::with_faults(plan);
                let mut rng = StdRng::seed_from_u64(7);
                if let Err(e) = simulate_distributed_with(
                    &bound,
                    &cu,
                    &CompletionModel::Bernoulli { p: 0.5 },
                    None,
                    &mut rng,
                    &cfg,
                ) {
                    assert!(
                        matches!(e, SimError::Deadlock(_) | SimError::Desync(_)),
                        "got {e}"
                    );
                    return;
                }
            }
        }
    }
    panic!("no state flip detected on any controller/bit/cycle in a {n}-op DFG");
}

#[test]
fn detection_is_bit_identical_across_thread_counts() {
    let (bound, _) = fir5_setup();
    // Every trial injects the same stuck-at-long fault; the job must fail
    // with the *same* earliest-trial error regardless of parallelism.
    let cfg = SimConfig::with_faults(FaultPlan::single(2, FaultKind::StuckAtLong { op: OpId(0) }));
    let model = CompletionModel::Bernoulli { p: 0.5 };
    let job = SimJob::new(&bound, ControlStyle::Distributed, &model)
        .trials(64)
        .config(&cfg);
    let reference = job.run(11, &BatchRunner::serial()).unwrap_err();
    for threads in [2usize, 8] {
        let err = job.run(11, &BatchRunner::new(threads)).unwrap_err();
        assert_eq!(reference, err, "threads = {threads}");
    }
    assert!(matches!(reference, SimError::Deadlock(_)));
}

#[test]
fn diagnostics_carry_a_usable_snapshot() {
    let (bound, cu) = fir5_setup();
    let cfg = SimConfig::with_faults(FaultPlan::single(1, FaultKind::StuckAtLong { op: OpId(0) }));
    let mut rng = StdRng::seed_from_u64(0);
    let err = simulate_distributed_with(
        &bound,
        &cu,
        &CompletionModel::AlwaysShort,
        None,
        &mut rng,
        &cfg,
    )
    .unwrap_err();
    let diag = err.diagnostics().expect("deadlock carries diagnostics");
    assert_eq!(diag.done.len(), bound.dfg().num_ops());
    assert_eq!(diag.controllers.len(), cu.controllers().len());
    // Snapshot states decode as real controller states.
    for c in &diag.controllers {
        assert!(
            c.state.starts_with('S') || c.state.starts_with('R'),
            "unexpected snapshot state {}",
            c.state
        );
    }
    // The rendered error names the cycle and at least one controller.
    let text = err.to_string();
    assert!(text.contains("cycle"));
    assert!(text.contains("D-FSM") || text.contains('='));
}

#[test]
fn watchdog_budget_is_configurable() {
    let (bound, cu) = fir5_setup();
    // A tiny fixed budget trips immediately even on a healthy run.
    let cfg = SimConfig {
        faults: FaultPlan::empty(),
        watchdog: Watchdog::Cycles(1),
    };
    let mut rng = StdRng::seed_from_u64(0);
    let err = simulate_distributed_with(
        &bound,
        &cu,
        &CompletionModel::AlwaysShort,
        None,
        &mut rng,
        &cfg,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Deadlock(_)));
    // A generous one lets the same run finish.
    let cfg = SimConfig {
        faults: FaultPlan::empty(),
        watchdog: Watchdog::Cycles(10_000),
    };
    let mut rng = StdRng::seed_from_u64(0);
    simulate_distributed_with(
        &bound,
        &cu,
        &CompletionModel::AlwaysShort,
        None,
        &mut rng,
        &cfg,
    )
    .unwrap();
}

#[test]
fn multi_fault_plans_compose() {
    let (bound, cu) = fir5_setup();
    let mut plan = FaultPlan::empty();
    plan.push(Fault {
        at_cycle: 2,
        kind: FaultKind::DropPulse { op: OpId(1) },
    });
    plan.push(Fault {
        at_cycle: 4,
        kind: FaultKind::StuckAtLong { op: OpId(3) },
    });
    assert_eq!(plan.faults().len(), 2);
    let cfg = SimConfig::with_faults(plan);
    let mut rng = StdRng::seed_from_u64(5);
    // Outcome may be any structured error (or survival) — but never a panic.
    let _ = simulate_distributed_with(
        &bound,
        &cu,
        &CompletionModel::Bernoulli { p: 0.5 },
        None,
        &mut rng,
        &cfg,
    );
}

#[test]
fn centsync_detects_masked_extension() {
    // Stuck-at-short on a TAU op under an all-long model: the step latches
    // at the base half while the true computation needs the extension.
    // Needs a step whose only TAU op is the faulty one (otherwise a
    // healthy sibling extends the step and masks the fault) — fir5's odd
    // multiplication count over two units provides one.
    let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
    let n = bound.dfg().num_ops();
    for op in 0..n {
        for cycle in 1..=12 {
            let cfg = SimConfig::with_faults(FaultPlan::single(
                cycle,
                FaultKind::StuckAtShort { op: OpId(op) },
            ));
            let mut rng = StdRng::seed_from_u64(1);
            if let Err(e) =
                simulate_cent_sync_with(&bound, &CompletionModel::AlwaysLong, None, &mut rng, &cfg)
            {
                assert!(matches!(e, SimError::Desync(_)), "got {e}");
                return;
            }
        }
    }
    panic!("no centsync stuck-at-short detection found");
}

#[test]
fn pipelined_detects_stuck_at_long_deadlock() {
    let (bound, cu) = fir5_setup();
    let n = bound.dfg().num_ops();
    for op in 0..n {
        let cfg = SimConfig::with_faults(FaultPlan::single(
            1,
            FaultKind::StuckAtLong { op: OpId(op) },
        ));
        let mut rng = StdRng::seed_from_u64(3);
        if let Err(e) = simulate_pipelined_with(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.5 },
            4,
            &mut rng,
            &cfg,
        ) {
            assert!(
                matches!(e, SimError::Deadlock(_) | SimError::Desync(_)),
                "got {e}"
            );
            return;
        }
    }
    panic!("no pipelined stuck-at-long detection found");
}
