#!/bin/sh
# Regenerates every table/figure artifact in results/ (used by EXPERIMENTS.md).
set -e
cd "$(dirname "$0")"
mkdir -p results
cargo run -p tauhls-bench --release --bin table1 > results/table1.txt
cargo run -p tauhls-bench --release --bin table2 -- 6000 2003 > results/table2.txt
mv -f table2.json results/ 2>/dev/null || true
for f in fig1_tau fig2_taubm fig3_scheduling fig4_explosion fig6_dfsm fig7_distributed fig_sweeps fig_pipeline; do
  cargo run -p tauhls-bench --release --bin $f > results/$f.txt
done
cargo run -p tauhls-bench --release --bin fig_utilization -- 0.6 3000 > results/fig_utilization.txt
echo "results/ regenerated"
