#!/bin/sh
# Regenerates every table/figure artifact in results/ (used by
# EXPERIMENTS.md and the golden-file snapshot tests in tests/golden.rs).
# The Monte-Carlo artifacts are produced by the deterministic batch engine,
# so the output is byte-identical regardless of the machine's core count.
set -e
cd "$(dirname "$0")"
mkdir -p results
cargo run -p tauhls-bench --release --bin table1 > results/table1.txt
mv -f table1.json results/
cargo run -p tauhls-bench --release --bin table2 -- 6000 2003 > results/table2.txt
mv -f table2.json results/
cargo run -p tauhls-bench --release --bin kernel_golden
mv -f kernel_golden.json results/
cargo run -p tauhls-bench --release --bin synth_golden
mv -f synth_golden.json results/
for f in fig1_tau fig2_taubm fig3_scheduling fig4_explosion fig6_dfsm fig7_distributed fig_sweeps fig_pipeline; do
  cargo run -p tauhls-bench --release --bin $f > results/$f.txt
done
cargo run -p tauhls-bench --release --bin fig_utilization -- 0.6 3000 > results/fig_utilization.txt
echo "results/ regenerated"
