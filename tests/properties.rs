//! Property-based integration tests over random dataflow graphs: the
//! whole flow must stay legal, the paper's dominance claims must hold for
//! arbitrary graphs, allocations and completion patterns, and the batch
//! engine must agree with its single-threaded oracle bit-for-bit.

use tauhls::dfg::{random_dfg, RandomDfgParams};
use tauhls::fsm::DistributedControlUnit;
use tauhls::sched::{reachability, BoundDfg, DependencyGraph, ListSchedule};
use tauhls::sim::{
    latency_pair_batch, simulate_cent_sync, simulate_distributed, BatchRunner, CompletionModel,
    ControlStyle, CycleStats, SimJob,
};
use tauhls::Allocation;
use tauhls_check::{forall, Gen};

/// Draws the shared parameter tuple: (num_ops, muls, adds, subs).
fn draw_params(g: &mut Gen) -> (usize, usize, usize, usize) {
    (g.usize(4..28), g.usize(1..4), g.usize(1..3), g.usize(1..3))
}

fn draw_dfg(g: &mut Gen, num_ops: usize, kind_weights: [u32; 4]) -> tauhls::dfg::Dfg {
    random_dfg(
        g.rng(),
        &RandomDfgParams {
            num_ops,
            kind_weights,
            ..Default::default()
        },
    )
}

#[test]
fn schedule_and_binding_always_legal() {
    forall("schedule_and_binding_always_legal", 48, |gen| {
        let (ops, muls, adds, subs) = draw_params(gen);
        let g = draw_dfg(gen, ops, [2, 1, 3, 1]);
        let alloc = Allocation::paper(muls, adds, subs);
        let s = ListSchedule::run(&g, &alloc);
        assert!(s.verify(&g, &alloc));
        let b = BoundDfg::bind(&g, &alloc);
        // Sequences partition the ops and respect classes.
        let total: usize = b.sequences().iter().map(Vec::len).sum();
        assert_eq!(total, g.num_ops());
        // Schedule arcs never contradict data dependences.
        for (x, y) in b.schedule_arcs() {
            assert!(!b.precedes(*y, *x));
        }
    });
}

#[test]
fn clique_cover_bounds() {
    forall("clique_cover_bounds", 48, |gen| {
        let (ops, _, _, _) = draw_params(gen);
        let g = draw_dfg(gen, ops, [2, 1, 3, 1]);
        let reach = reachability(&g);
        for class in tauhls::dfg::ResourceClass::ALL {
            let dep = DependencyGraph::for_class(&g, class, &reach);
            if dep.nodes().is_empty() {
                continue;
            }
            let exact = dep.min_clique_cover();
            let greedy = dep.greedy_clique_cover();
            // Exact is optimal, greedy is a valid partition.
            assert!(exact.len() <= greedy.len());
            for chain in exact.iter().chain(&greedy) {
                for w in chain.windows(2) {
                    assert!(dep.dependent(w[0], w[1]));
                }
            }
        }
    });
}

#[test]
fn simulation_legal_and_dist_dominates() {
    forall("simulation_legal_and_dist_dominates", 48, |gen| {
        let (ops, muls, adds, subs) = draw_params(gen);
        let g = draw_dfg(gen, ops, [2, 1, 3, 1]);
        let alloc = Allocation::paper(muls, adds, subs);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        for (_, fsm) in cu.controllers() {
            assert!(fsm.check().is_ok());
        }
        // Coupled completion draws: distributed dominates per trial.
        for p in [1.0, 0.5, 0.0] {
            let table = CompletionModel::draw_table(g.num_ops(), p, gen.rng());
            let d = simulate_distributed(&bound, &cu, &table, None, gen.rng())
                .expect("fault-free simulation");
            assert!(d.verify(&bound).is_ok(), "{:?}", d.verify(&bound));
            let s =
                simulate_cent_sync(&bound, &table, None, gen.rng()).expect("fault-free simulation");
            assert!(
                d.cycles <= s.cycles,
                "distributed {} > sync {}",
                d.cycles,
                s.cycles
            );
        }
    });
}

#[test]
fn latency_bounded_by_extremes() {
    forall("latency_bounded_by_extremes", 48, |gen| {
        let (ops, muls, adds, subs) = draw_params(gen);
        let g = draw_dfg(gen, ops, [3, 1, 2, 0]);
        let alloc = Allocation::paper(muls, adds, subs);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let best =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, gen.rng())
                .expect("fault-free simulation")
                .cycles;
        let worst =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysLong, None, gen.rng())
                .expect("fault-free simulation")
                .cycles;
        assert!(best <= worst);
        let mid = simulate_distributed(
            &bound,
            &cu,
            &CompletionModel::Bernoulli { p: 0.5 },
            None,
            gen.rng(),
        )
        .expect("fault-free simulation")
        .cycles;
        assert!(best <= mid && mid <= worst);
        // Worst case is at most best + one extension per TAU op.
        let tau_ops = g.ops_of_class(tauhls::dfg::ResourceClass::Multiplier).len();
        assert!(worst <= best + tau_ops);
    });
}

#[test]
fn batch_engine_matches_serial_oracle_on_random_dfgs() {
    // The tentpole guarantee, as a property: for arbitrary graphs and
    // allocations, fanning trials over threads changes nothing — both the
    // coupled pair harness and the plain summary are bit-identical to the
    // threads = 1 oracle, and the distributed style still dominates.
    forall("batch_engine_matches_serial_oracle", 12, |gen| {
        let (ops, muls, adds, subs) = draw_params(gen);
        let g = draw_dfg(gen, ops, [2, 1, 3, 1]);
        let bound = BoundDfg::bind(&g, &Allocation::paper(muls, adds, subs));
        let seed = gen.u64(0..1 << 48);
        let trials = gen.u64(1..200);
        let ps = [0.9, 0.5];
        let serial = latency_pair_batch(&bound, &ps, trials, seed, &BatchRunner::serial())
            .expect("fault-free simulation");
        for threads in [2usize, 8] {
            let parallel =
                latency_pair_batch(&bound, &ps, trials, seed, &BatchRunner::new(threads))
                    .expect("fault-free simulation");
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        let (sync, dist) = serial;
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s, "dist {d} > sync {s}");
        }
        let model = CompletionModel::Bernoulli { p: 0.7 };
        let job = SimJob::new(&bound, ControlStyle::CentSync, &model).trials(trials);
        assert_eq!(
            job.run(seed, &BatchRunner::serial())
                .expect("fault-free simulation"),
            job.run(seed, &BatchRunner::new(3).with_chunk_size(5))
                .expect("fault-free simulation")
        );
    });
}

#[test]
fn merged_stats_equal_single_pass_exactly() {
    // Mergeability invariant behind the parallel reduction: splitting a
    // sample stream at arbitrary points and merging the partial
    // accumulators reproduces the single-pass accumulator exactly —
    // integer-exact equality, not tolerance.
    forall("merged_stats_equal_single_pass", 64, |gen| {
        let len = gen.usize(1..400);
        let samples = gen.vec(len, |g| g.usize(0..10_000));
        let mut single = CycleStats::new();
        for &s in &samples {
            single.record(s);
        }
        let pieces = gen.usize(1..8);
        let mut merged = CycleStats::new();
        let chunk = len.div_ceil(pieces);
        for part in samples.chunks(chunk) {
            let mut acc = CycleStats::new();
            part.iter().for_each(|&s| acc.record(s));
            merged.merge(&acc);
        }
        assert_eq!(single, merged);
        assert_eq!(single.count, len as u64);
        if let Some(&mx) = samples.iter().max() {
            assert_eq!(single.max, mx);
        }
        // Variance is non-negative and mean sits within [min, max].
        assert!(single.variance() >= -1e-9);
        assert!(single.min as f64 <= single.mean() && single.mean() <= single.max as f64);
    });
}

#[test]
fn elastic_zero_bisimulates_dist_and_skew_never_wins() {
    use tauhls::sim::{simulate_elastic, ElasticSpec};
    use tauhls_check::arbitrary_elastic_spec;

    forall(
        "elastic_zero_bisimulates_dist_and_skew_never_wins",
        48,
        |gen| {
            let (ops, muls, adds, subs) = draw_params(gen);
            let g = draw_dfg(gen, ops, [2, 1, 3, 1]);
            let alloc = Allocation::paper(muls, adds, subs);
            let bound = BoundDfg::bind(&g, &alloc);
            let cu = DistributedControlUnit::generate(&bound);
            let skew_seed = gen.usize(0..1 << 30) as u64;
            let spec = arbitrary_elastic_spec(gen, 3);
            for p in [1.0, 0.5, 0.0] {
                let table = CompletionModel::draw_table(g.num_ops(), p, gen.rng());
                let d = simulate_distributed(&bound, &cu, &table, None, gen.rng())
                    .expect("fault-free simulation");
                // Degenerate GALS spec: bit-identical to the synchronous
                // distributed engine, whatever the skew seed says.
                let z = simulate_elastic(
                    &bound,
                    &cu,
                    &table,
                    None,
                    gen.rng(),
                    ElasticSpec::zero(),
                    skew_seed,
                )
                .expect("fault-free simulation");
                assert_eq!(d.cycles, z.cycles, "zero-spec elastic diverged");
                assert_eq!(d.completion_cycle, z.completion_cycle);
                assert_eq!(d.values, z.values);
                // Arbitrary spec: stalls and handshake latency only ever
                // delay — the synchronous run is a per-trial lower bound —
                // and the datapath values are untouched.
                let e = simulate_elastic(&bound, &cu, &table, None, gen.rng(), spec, skew_seed)
                    .expect("fault-free simulation");
                assert!(
                    e.cycles >= d.cycles,
                    "elastic {} beat dist {} under {spec:?}",
                    e.cycles,
                    d.cycles
                );
                assert_eq!(d.values, e.values, "clocking changed computed values");
            }
        },
    );
}
