//! Property-based integration tests over random dataflow graphs: the
//! whole flow must stay legal, and the paper's dominance claims must hold
//! for arbitrary graphs, allocations and completion patterns.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tauhls::dfg::{random_dfg, RandomDfgParams};
use tauhls::fsm::DistributedControlUnit;
use tauhls::sched::{reachability, BoundDfg, DependencyGraph, ListSchedule};
use tauhls::sim::{simulate_cent_sync, simulate_distributed, CompletionModel};
use tauhls::Allocation;

fn arb_params() -> impl Strategy<Value = (u64, usize, usize, usize, usize)> {
    // (seed, num_ops, muls, adds, subs)
    (0u64..10_000, 4usize..28, 1usize..4, 1usize..3, 1usize..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_and_binding_always_legal((seed, ops, muls, adds, subs) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_dfg(&mut rng, &RandomDfgParams {
            num_ops: ops,
            kind_weights: [2, 1, 3, 1],
            ..Default::default()
        });
        let alloc = Allocation::paper(muls, adds, subs);
        let s = ListSchedule::run(&g, &alloc);
        prop_assert!(s.verify(&g, &alloc));
        let b = BoundDfg::bind(&g, &alloc);
        // Sequences partition the ops and respect classes.
        let total: usize = b.sequences().iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_ops());
        // Schedule arcs never contradict data dependences.
        for (x, y) in b.schedule_arcs() {
            prop_assert!(!b.precedes(*y, *x));
        }
    }

    #[test]
    fn clique_cover_bounds((seed, ops, _, _, _) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_dfg(&mut rng, &RandomDfgParams {
            num_ops: ops,
            kind_weights: [2, 1, 3, 1],
            ..Default::default()
        });
        let reach = reachability(&g);
        for class in tauhls::dfg::ResourceClass::ALL {
            let dep = DependencyGraph::for_class(&g, class, &reach);
            if dep.nodes().is_empty() { continue; }
            let exact = dep.min_clique_cover();
            let greedy = dep.greedy_clique_cover();
            // Exact is optimal, greedy is a valid partition.
            prop_assert!(exact.len() <= greedy.len());
            for chain in exact.iter().chain(&greedy) {
                for w in chain.windows(2) {
                    prop_assert!(dep.dependent(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn simulation_legal_and_dist_dominates((seed, ops, muls, adds, subs) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_dfg(&mut rng, &RandomDfgParams {
            num_ops: ops,
            kind_weights: [2, 1, 3, 1],
            ..Default::default()
        });
        let alloc = Allocation::paper(muls, adds, subs);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        for (_, fsm) in cu.controllers() {
            prop_assert!(fsm.check().is_ok());
        }
        // Coupled completion draws: distributed dominates per trial.
        for p in [1.0, 0.5, 0.0] {
            let table = CompletionModel::draw_table(g.num_ops(), p, &mut rng);
            let d = simulate_distributed(&bound, &cu, &table, None, &mut rng);
            prop_assert!(d.verify(&bound).is_ok(), "{:?}", d.verify(&bound));
            let s = simulate_cent_sync(&bound, &table, None, &mut rng);
            prop_assert!(d.cycles <= s.cycles,
                "distributed {} > sync {} (seed {seed})", d.cycles, s.cycles);
        }
    }

    #[test]
    fn latency_bounded_by_extremes((seed, ops, muls, adds, subs) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_dfg(&mut rng, &RandomDfgParams {
            num_ops: ops,
            kind_weights: [3, 1, 2, 0],
            ..Default::default()
        });
        let alloc = Allocation::paper(muls, adds, subs);
        let bound = BoundDfg::bind(&g, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let best = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng).cycles;
        let worst = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysLong, None, &mut rng).cycles;
        prop_assert!(best <= worst);
        let mid = simulate_distributed(&bound, &cu, &CompletionModel::Bernoulli { p: 0.5 }, None, &mut rng).cycles;
        prop_assert!(best <= mid && mid <= worst);
        // Worst case is at most best + one extension per TAU op.
        let tau_ops = g.ops_of_class(tauhls::dfg::ResourceClass::Multiplier).len();
        prop_assert!(worst <= best + tau_ops);
    }
}
