//! Error-path tests for the `tauhls` binary: every misuse must exit
//! non-zero with a diagnostic on stderr — and never a panic backtrace.

use std::path::Path;
use std::process::{Command, Output};

fn tauhls(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(args)
        .output()
        .expect("spawn tauhls")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_graceful_failure(out: &Output, needle: &str) {
    let stderr = stderr_of(out);
    assert!(!out.status.success(), "expected failure, got: {stderr}");
    assert!(
        stderr.contains(needle),
        "stderr should mention {needle:?}, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked at") && !stderr.contains("RUST_BACKTRACE"),
        "CLI leaked a panic backtrace: {stderr}"
    );
}

fn example_dfg() -> &'static str {
    let p = "examples/dfg/axpy.dfg";
    assert!(Path::new(p).exists(), "run from the workspace root");
    p
}

/// A per-process scratch directory: concurrent test invocations (e.g.
/// `cargo test` and `cargo test --workspace` side by side) must not
/// truncate each other's fixture files mid-read.
fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tauhls-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_arguments_prints_usage() {
    let out = tauhls(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert_graceful_failure(&out, "usage:");
}

#[test]
fn bad_subcommand_prints_usage() {
    let out = tauhls(&["frobnicate", example_dfg()]);
    assert_eq!(out.status.code(), Some(2));
    assert_graceful_failure(&out, "usage:");
}

#[test]
fn missing_dfg_file_reports_path() {
    let out = tauhls(&["simulate", "/nonexistent/missing.dfg"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "/nonexistent/missing.dfg");
}

#[test]
fn malformed_dfg_reports_parse_error_with_line() {
    let path = scratch_dir().join("broken.dfg");
    std::fs::write(&path, "dfg broken\nop a = frob 1 2\n").unwrap();
    let out = tauhls(&["synth", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "line 2");
}

#[test]
fn bad_option_values_print_usage() {
    for args in [
        ["simulate", "--trials", "many"],
        ["simulate", "--p", "0.9,oops"],
        ["simulate", "--binding", "sideways"],
    ] {
        let out = tauhls(&[args[0], example_dfg(), args[1], args[2]]);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert_graceful_failure(&out, "error:");
    }
}

#[test]
fn simulate_reports_all_four_styles() {
    let out = tauhls(&[
        "simulate",
        example_dfg(),
        "--trials",
        "40",
        "--threads",
        "2",
        "--skew",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for key in ["LT_TAU", "LT_DIST", "LT_CENT", "LT_ELAS"] {
        assert!(text.contains(key), "simulate output missing {key}: {text}");
    }
    assert!(
        text.contains("s=2"),
        "simulate output missing the elastic spec: {text}"
    );
}

#[test]
fn table2_runs_builtin_suite_with_cent_column() {
    let out = tauhls(&["table2", "--trials", "20", "--seed", "3", "--threads", "2"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for key in ["LT_TAU", "LT_DIST", "LT_CENT", "fir5", "ar_lattice4"] {
        assert!(text.contains(key), "table2 output missing {key}: {text}");
    }
    // Bad options still fail gracefully without a DFG argument.
    let bad = tauhls(&["table2", "--trials", "many"]);
    assert_eq!(bad.status.code(), Some(2));
    assert_graceful_failure(&bad, "error:");
}

#[test]
fn resilience_misuse_fails_cleanly() {
    let out = tauhls(&["resilience", example_dfg(), "--trials", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "--trials >= 1");

    let out = tauhls(&["resilience", example_dfg(), "--p", "1.5"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "not a probability");

    // --styles must keep the distributed engine (and parse at all).
    let out = tauhls(&["resilience", example_dfg(), "--styles", "cent,elastic"]);
    assert_eq!(out.status.code(), Some(2));
    assert_graceful_failure(&out, "must include 'dist'");
}

#[test]
fn resilience_styles_filter_drops_the_unselected_columns() {
    let out = tauhls(&[
        "resilience",
        example_dfg(),
        "--trials",
        "24",
        "--seed",
        "11",
        "--styles",
        "dist,elastic",
    ]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        text.contains("elastic_survived"),
        "elastic columns missing: {text}"
    );
    assert!(
        text.contains("\"cent_agreement\": 0"),
        "cent leg should be gated off: {text}"
    );
}

#[test]
fn synth_misuse_fails_with_one_line_messages() {
    // Allocation cannot cover the graph: the staged pipeline rejects it
    // as a typed error, not a panic.
    let out = tauhls(&["synth", example_dfg(), "--muls", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "allocation lacks a unit");

    // Malformed spec file: parser diagnostic with a line number.
    let dir = scratch_dir();
    let bad = dir.join("bad-synth.dfg");
    std::fs::write(&bad, "dfg bad\ninput a\nop x = mul a\n").unwrap();
    let out = tauhls(&["synth", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "line 3");

    // A graph with no operations is an invalid request, not a crash.
    let empty = dir.join("empty-synth.dfg");
    std::fs::write(&empty, "dfg hollow\ninput a\n").unwrap();
    let out = tauhls(&["synth", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "no operations");
}

#[test]
fn synth_json_emits_the_artifact_hash_chain() {
    let out = tauhls(&["synth", example_dfg(), "--json"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for stage in [
        "canonicalize",
        "order",
        "bind",
        "controllers",
        "logic",
        "report",
    ] {
        assert!(
            text.contains(&format!("\"stage\": \"{stage}\"")),
            "missing stage {stage}: {text}"
        );
    }
    assert!(text.contains("\"controllers\""), "{text}");
    // The hash chain is deterministic: a second run (and a run with a
    // different thread count) reports identical artifact hashes.
    let extract_hashes = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("_hash"))
            .map(String::from)
            .collect()
    };
    let again = tauhls(&["synth", example_dfg(), "--json", "--threads", "4"]);
    assert!(again.status.success(), "{}", stderr_of(&again));
    assert_eq!(
        extract_hashes(&text),
        extract_hashes(&String::from_utf8_lossy(&again.stdout)),
        "artifact hashes must not depend on run or thread count"
    );
}

#[test]
fn call_misuse_fails_with_one_line_messages() {
    let out = tauhls(&["call"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "call needs an endpoint");

    let out = tauhls(&["call", "bogus"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "unknown endpoint 'bogus'");

    let out = tauhls(&["call", "healthz", "--addr"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "missing value for --addr");

    let out = tauhls(&["call", "simulate", "a.json", "b.json", "extra"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "too many arguments");

    let out = tauhls(&["call", "simulate", "/nonexistent/spec.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "/nonexistent/spec.json");

    // Nothing listening: connection refused, one line, no backtrace.
    let out = tauhls(&["call", "healthz", "--addr", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "connect 127.0.0.1:1");
}

#[test]
fn serve_misuse_fails_with_one_line_messages() {
    let out = tauhls(&["serve", "--workers", "many"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "--workers");

    let out = tauhls(&["serve", "--wat", "1"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "unknown serve option --wat");

    let out = tauhls(&["serve", "--addr", "not-an-address"]);
    assert_eq!(out.status.code(), Some(1));
    assert_graceful_failure(&out, "cannot start server");
}

#[test]
fn resilience_happy_path_emits_deterministic_json() {
    let args = [
        "resilience",
        example_dfg(),
        "--trials",
        "24",
        "--seed",
        "11",
    ];
    let a = tauhls(&{
        let mut v = args.to_vec();
        v.extend(["--threads", "1"]);
        v
    });
    assert!(a.status.success(), "{}", stderr_of(&a));
    let b = tauhls(&{
        let mut v = args.to_vec();
        v.extend(["--threads", "4"]);
        v
    });
    assert!(b.status.success(), "{}", stderr_of(&b));
    let text = String::from_utf8_lossy(&a.stdout).into_owned();
    assert_eq!(
        text,
        String::from_utf8_lossy(&b.stdout),
        "thread count leaked into the report"
    );
    for key in [
        "stuck_short",
        "flip_state",
        "detection_rate",
        "survival_fraction",
    ] {
        assert!(text.contains(key), "report missing {key}: {text}");
    }
}
