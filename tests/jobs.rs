//! Integration tests for the durable async job manager, over real HTTP.
//!
//! The crash-recovery contract is exercised with a genuine `kill -9` on a
//! `tauhls serve` subprocess mid-job: a restart on the same `--data-dir`
//! must replay the journal, requeue the interrupted job, and converge to
//! a byte-identical result. Hostile-input tests corrupt the journal and
//! artifacts on disk between runs — the server must quarantine and
//! recompute, never panic.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use tauhls::serve::{client, ServeConfig, Server};
use tauhls_json::Json;

const TIMEOUT: Duration = Duration::from_secs(120);

/// A fresh per-test scratch directory under the system tempdir,
/// removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tauhls-jobs-it-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An in-process server on an ephemeral port with the durable store in
/// `data_dir` and small knobs suited to tests.
fn start_durable(data_dir: &Path) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        sim_threads: Some(1),
        job_workers: 1,
        job_backoff_base: Duration::from_millis(5),
        data_dir: Some(data_dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn submit(addr: &str, body: &str, headers: &[(&str, &str)]) -> client::Response {
    client::request_with(addr, "POST", "/v1/jobs", headers, Some(body), TIMEOUT)
        .expect("submit response")
}

fn job_id(response: &client::Response) -> String {
    Json::parse(&response.body)
        .ok()
        .and_then(|j| j.get("job").and_then(|v| v.as_str().map(String::from)))
        .unwrap_or_else(|| panic!("submit body has no job id: {}", response.body))
}

fn job_state(addr: &str, id: &str) -> String {
    let r = client::request(addr, "GET", &format!("/v1/jobs/{id}"), None, TIMEOUT)
        .expect("status response");
    assert_eq!(r.status, 200, "{}", r.body);
    Json::parse(&r.body)
        .ok()
        .and_then(|j| j.get("state").and_then(|v| v.as_str().map(String::from)))
        .unwrap_or_else(|| panic!("status body has no state: {}", r.body))
}

/// Polls until the job is done, then returns its result body.
fn wait_for_result(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let state = job_state(addr, id);
        match state.as_str() {
            "done" => break,
            "failed" | "cancelled" => panic!("job {id} ended {state}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let r = client::request(addr, "GET", &format!("/v1/jobs/{id}/result"), None, TIMEOUT)
        .expect("result response");
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.header("x-job-state"), Some("done"));
    r.body
}

/// Spawns a real `tauhls serve` subprocess on an ephemeral port and
/// returns the child plus its resolved address.
fn spawn_serve(data_dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "1",
            "--job-workers",
            "1",
            "--backoff-ms",
            "5",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tauhls serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("banner format")
        .to_string();
    (child, addr)
}

#[test]
fn sigkill_mid_job_then_restart_converges_to_identical_result() {
    let dir = TempDir::new("sigkill");
    let (mut child, addr) = spawn_serve(dir.path());

    // Slow enough (~2 s in a debug build with 1 sim thread) to still be
    // running when SIGKILL lands, yet bounded for the recomputation
    // after restart.
    let spec =
        r#"{"endpoint":"simulate","spec":{"dfg":"ewf","trials":60000,"p":[0.9,0.5],"seed":3}}"#;
    let submitted = submit(&addr, spec, &[]);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = job_id(&submitted);

    // Wait until the attempt is genuinely in flight, then kill -9: no
    // drain, no journal flush beyond the already-fsynced `start` event.
    let deadline = Instant::now() + TIMEOUT;
    while job_state(&addr, &id) != "running" {
        assert!(Instant::now() < deadline, "job never started running");
        thread::sleep(Duration::from_millis(10));
    }
    let killed = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("send SIGKILL");
    assert!(killed.success());
    child.wait().expect("reap killed server");

    // Restart on the same data dir: replay must requeue the interrupted
    // job and finish it without resubmission.
    let (mut child, addr) = spawn_serve(dir.path());
    let recovered = wait_for_result(&addr, &id);

    // The recomputed result is byte-identical to an independent run of
    // the same canonical spec (here: the synchronous endpoint).
    let sync = client::request(
        &addr,
        "POST",
        "/v1/simulate",
        Some(r#"{"dfg":"ewf","trials":60000,"p":[0.9,0.5],"seed":3}"#),
        TIMEOUT,
    )
    .expect("sync response");
    assert_eq!(sync.status, 200, "{}", sync.body);
    assert_eq!(
        recovered, sync.body,
        "recovered async result diverged from a fresh synchronous run"
    );

    // And a second restart serves the completed result straight from the
    // recovered artifact — no recomputation, same bytes.
    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());
    assert!(child.wait().expect("drain").success());
    let (mut child, addr) = spawn_serve(dir.path());
    let replayed = wait_for_result(&addr, &id);
    assert_eq!(replayed, recovered);
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let _ = child.wait();
}

#[test]
fn bit_flipped_artifact_is_quarantined_and_recomputed() {
    let dir = TempDir::new("bitflip");
    let spec = r#"{"endpoint":"simulate","spec":{"dfg":"fir3","trials":40,"seed":11}}"#;

    let server = start_durable(dir.path());
    let addr = server.local_addr().to_string();
    let submitted = submit(&addr, spec, &[]);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = job_id(&submitted);
    let original = wait_for_result(&addr, &id);
    server.shutdown();

    // Flip one bit in the completed artifact. The journal still records
    // the pristine hash, so recovery must detect the mismatch.
    let artifacts: Vec<PathBuf> = std::fs::read_dir(dir.path().join("artifacts"))
        .expect("artifacts dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(artifacts.len(), 1, "{artifacts:?}");
    let mut bytes = std::fs::read(&artifacts[0]).expect("read artifact");
    bytes[7] ^= 0x10;
    std::fs::write(&artifacts[0], &bytes).expect("write corrupted artifact");

    // Restart: no panic; the bad file moves to quarantine/ and the job
    // recomputes to the same bytes as the uncorrupted run.
    let server = start_durable(dir.path());
    let addr = server.local_addr().to_string();
    let recomputed = wait_for_result(&addr, &id);
    assert_eq!(recomputed, original, "recomputed artifact diverged");
    let quarantined = std::fs::read_dir(dir.path().join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(quarantined, 1, "corrupt artifact was not quarantined");
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        metrics
            .body
            .contains("tauhls_serve_jobs_total{event=\"quarantined\"} 1"),
        "{}",
        metrics.body
    );
    server.shutdown();
}

#[test]
fn truncated_journal_tail_recovers_the_durable_prefix() {
    let dir = TempDir::new("torn");
    let done = r#"{"endpoint":"simulate","spec":{"dfg":"fir3","trials":30,"seed":21}}"#;

    let server = start_durable(dir.path());
    let addr = server.local_addr().to_string();
    let submitted = submit(&addr, done, &[]);
    let id = job_id(&submitted);
    let original = wait_for_result(&addr, &id);
    server.shutdown();

    // Simulate a torn final write: append half a journal line.
    let journal = dir.path().join("jobs.journal");
    let mut text = std::fs::read_to_string(&journal).expect("read journal");
    text.push_str(r#"{"event":"submit","job":"deadbeef"#);
    std::fs::write(&journal, &text).expect("write torn journal");

    // Restart: replay keeps every complete line, drops the torn tail,
    // and the finished job is still served byte-identically.
    let server = start_durable(dir.path());
    let addr = server.local_addr().to_string();
    let replayed = wait_for_result(&addr, &id);
    assert_eq!(replayed, original);
    server.shutdown();
}

#[test]
fn journal_replay_survives_fuzzed_garbage() {
    // Deterministic xorshift so failures reproduce.
    let mut state = 0x243f_6a88_85a3_08d3_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for round in 0..6 {
        let dir = TempDir::new("fuzz");
        let journal = dir.path().join("jobs.journal");
        let mut bytes = Vec::new();
        match round {
            // Raw binary noise, including invalid UTF-8.
            0 => {
                for _ in 0..512 {
                    bytes.extend_from_slice(&next().to_le_bytes());
                }
            }
            // Valid JSON lines that are semantically garbage.
            1 => {
                bytes.extend_from_slice(b"[1,2,3]\n\"just a string\"\n42\n{}\n");
                bytes.extend_from_slice(b"{\"event\":\"warp\",\"job\":\"zz\"}\n");
            }
            // A submit whose spec hash does not match its recorded id.
            2 => bytes.extend_from_slice(
                b"{\"event\":\"submit\",\"job\":\"0000000000000000\",\"client\":\"x\",\
                  \"priority\":5,\"attempts\":0,\"spec\":{\"endpoint\":\"simulate\",\
                  \"spec\":{\"dfg\":\"fir3\",\"trials\":10}}}\n",
            ),
            // Events for jobs that were never submitted.
            3 => bytes.extend_from_slice(
                b"{\"event\":\"done\",\"job\":\"ffffffffffffffff\",\
                  \"artifact\":\"1111111111111111\",\"bytes\":10}\n\
                  {\"event\":\"start\",\"job\":\"eeeeeeeeeeeeeeee\",\"attempt\":1}\n",
            ),
            // Random printable lines with embedded newlines and braces.
            _ => {
                for _ in 0..64 {
                    let n = next() % 40;
                    for _ in 0..n {
                        bytes.push(b' ' + (next() % 94) as u8);
                    }
                    bytes.push(b'\n');
                }
            }
        }
        std::fs::write(&journal, &bytes).expect("write fuzzed journal");

        // Startup must tolerate the garbage (diagnostics, not panics) and
        // the service must be fully functional afterwards.
        let server = start_durable(dir.path());
        let addr = server.local_addr().to_string();
        let submitted = submit(
            &addr,
            r#"{"endpoint":"simulate","spec":{"dfg":"fir3","trials":25,"seed":5}}"#,
            &[],
        );
        assert!(
            submitted.status == 200 || submitted.status == 202,
            "round {round}: {} {}",
            submitted.status,
            submitted.body
        );
        let id = job_id(&submitted);
        let body = wait_for_result(&addr, &id);
        assert!(body.contains("\"spec\""), "round {round}: {body}");
        server.shutdown();
    }
}

#[test]
fn per_client_429_with_retry_after_while_other_clients_proceed() {
    // Tight per-client bucket (1 token, slow refill) and no job workers,
    // so admission decisions are the only moving part.
    let dir = TempDir::new("admission");
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        sim_threads: Some(1),
        job_workers: 0,
        admission_rate: 0.25,
        admission_burst: 1.0,
        data_dir: Some(dir.path().to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    let body = |trials: u32| {
        format!(r#"{{"endpoint":"simulate","spec":{{"dfg":"fir3","trials":{trials}}}}}"#)
    };

    // Alice's first submission is admitted; her second (a different
    // spec, so not an idempotent replay) exhausts the bucket.
    let ok = submit(&addr, &body(10), &[("X-Client", "alice")]);
    assert_eq!(ok.status, 202, "{}", ok.body);
    let limited = submit(&addr, &body(11), &[("X-Client", "alice")]);
    assert_eq!(limited.status, 429, "{}", limited.body);
    let retry_after: u64 = limited
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is numeric seconds");
    assert!(retry_after >= 1, "{retry_after}");
    assert!(limited.body.contains("rate limit"), "{}", limited.body);

    // Other clients are unaffected by Alice's throttle.
    let bob = submit(&addr, &body(12), &[("X-Client", "bob")]);
    assert_eq!(bob.status, 202, "{}", bob.body);

    // Rejections surface in the metrics the operator watches.
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        metrics
            .body
            .contains("tauhls_serve_jobs_total{event=\"rejected\"} 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics
            .body
            .contains("tauhls_serve_responses_total{code=\"429\"} 1"),
        "{}",
        metrics.body
    );
    server.shutdown();
}

#[test]
fn jobs_cli_round_trip_submit_wait_and_status() {
    let dir = TempDir::new("cli");
    let (mut child, addr) = spawn_serve(dir.path());

    // `tauhls jobs submit --wait` polls to completion and prints the
    // result body — the same bytes the HTTP result endpoint serves.
    let spec_file = dir.path().join("spec.json");
    std::fs::write(&spec_file, r#"{"dfg":"fir3","trials":35,"seed":8}"#).expect("write spec");
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args([
            "jobs",
            "submit",
            "simulate",
            spec_file.to_str().expect("utf-8 path"),
            "--addr",
            &addr,
            "--client",
            "cli-test",
            "--priority",
            "2",
            "--wait",
        ])
        .output()
        .expect("run tauhls jobs submit");
    assert!(
        output.status.success(),
        "submit --wait failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let printed = String::from_utf8(output.stdout).expect("utf-8 result");
    let parsed = Json::parse(&printed).expect("result is JSON");
    assert!(
        parsed.get("spec").is_some(),
        "result body lacked the canonical spec echo: {printed}"
    );
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        metrics
            .body
            .contains("tauhls_serve_jobs_total{event=\"completed\"} 1"),
        "{}",
        metrics.body
    );

    // Submit-without-wait prints the status body; the id feeds the
    // status and cancel verbs.
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args([
            "jobs",
            "submit",
            "simulate",
            spec_file.to_str().expect("utf-8 path"),
            "--addr",
            &addr,
        ])
        .output()
        .expect("run tauhls jobs submit");
    assert!(output.status.success());
    let body = String::from_utf8(output.stdout).expect("utf-8 status");
    let id = Json::parse(&body)
        .ok()
        .and_then(|j| j.get("job").and_then(|v| v.as_str().map(String::from)))
        .expect("status body has job id");

    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(["jobs", "status", &id, "--addr", &addr])
        .output()
        .expect("run tauhls jobs status");
    assert!(output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stdout).contains(&id),
        "status output lacks the job id"
    );

    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let _ = child.wait();
}
