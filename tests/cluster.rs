//! Cluster conformance and chaos tests.
//!
//! Conformance: a coordinator sharding a job across 1, 2, or 3 workers
//! must answer the byte-identical body a single-node server produces,
//! for every partitionable job kind (simulate / resilience / explore).
//!
//! Chaos: real `tauhls serve` subprocesses. SIGKILL a worker mid-sweep
//! and the coordinator requeues its partitions and still converges to
//! the single-node bytes; SIGKILL the *coordinator* mid-sweep and a
//! restart over the same journal replays the job to the same bytes.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use tauhls::serve::{client, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(120);

/// The three partitionable job kinds, with enough units each that every
/// worker count in 1..=3 produces a genuine multi-part split.
const SPECS: [(&str, &str); 3] = [
    (
        "/v1/simulate",
        r#"{"dfg":"fir5","trials":200,"p":[0.9,0.7,0.5,0.3],"seed":7}"#,
    ),
    (
        "/v1/resilience",
        r#"{"dfg":"fir3","trials":80,"p":0.7,"seed":5}"#,
    ),
    (
        "/v1/explore",
        r#"{"dfg":"fir3","max_muls":2,"max_adds":1,"trials":40,"p":[0.5],"seed":3}"#,
    ),
];

fn start_single() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        sim_threads: Some(1),
        ..ServeConfig::default()
    })
    .expect("bind single server")
}

fn write_peers(dir: &std::path::Path, addrs: &[String]) -> std::path::PathBuf {
    let path = dir.join("peers.json");
    let body = format!(
        "[{}]",
        addrs
            .iter()
            .map(|a| format!("{a:?}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    std::fs::write(&path, body).expect("write peers file");
    path
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tauhls-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn coordinator_merges_are_byte_identical_at_any_worker_count() {
    // Single-node baselines.
    let single = start_single();
    let single_addr = single.local_addr().to_string();
    let baselines: Vec<String> = SPECS
        .iter()
        .map(|(path, spec)| {
            let r = client::request(&single_addr, "POST", path, Some(spec), TIMEOUT)
                .expect("baseline response");
            assert_eq!(r.status, 200, "{path}: {}", r.body);
            r.body
        })
        .collect();
    single.shutdown();

    let dir = temp_dir("conformance");
    for worker_count in 1..=3usize {
        let workers: Vec<Server> = (0..worker_count).map(|_| start_single()).collect();
        let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
        let coordinator = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            sim_threads: Some(1),
            workers_file: Some(write_peers(&dir, &addrs)),
            ..ServeConfig::default()
        })
        .expect("bind coordinator");
        let caddr = coordinator.local_addr().to_string();
        for ((path, spec), baseline) in SPECS.iter().zip(&baselines) {
            let r = client::request(&caddr, "POST", path, Some(spec), TIMEOUT)
                .expect("clustered response");
            assert_eq!(r.status, 200, "{path}@{worker_count}: {}", r.body);
            assert_eq!(
                &r.body, baseline,
                "{path} diverged from single-node bytes at {worker_count} workers"
            );
        }
        // The coordinator actually dispatched: its status reports the
        // coordinator role and its metrics count completed partitions.
        let status = client::request(&caddr, "GET", "/v1/status", None, TIMEOUT).expect("status");
        assert!(
            status.body.contains("\"role\": \"coordinator\""),
            "{}",
            status.body
        );
        let metrics = client::request(&caddr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
        let completed: u64 = metrics
            .body
            .lines()
            .find_map(|l| {
                l.strip_prefix("tauhls_serve_cluster_partitions_total{event=\"completed\"} ")
            })
            .expect("completed counter")
            .parse()
            .expect("numeric counter");
        assert!(
            completed > 0,
            "no partitions dispatched at {worker_count} workers:\n{}",
            metrics.body
        );
        coordinator.shutdown();
        for w in workers {
            w.shutdown();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut args = vec!["serve", "--addr", "127.0.0.1:0", "--threads", "1"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tauhls serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("banner format")
        .to_string();
    (child, addr)
}

fn sigkill(child: &mut Child) {
    child.kill().expect("SIGKILL");
    let _ = child.wait();
}

fn sigterm(child: &mut Child) {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let _ = child.wait();
}

/// A sweep slow enough (in a debug build) that a kill a moment after
/// submission lands mid-flight, with enough units to split 3 ways.
const SLOW_SPEC: &str = r#"{"dfg":"ewf","trials":60000,"p":[0.9,0.8,0.7,0.6,0.5,0.4],"seed":11}"#;

#[test]
fn killing_a_worker_mid_sweep_requeues_and_converges_byte_identically() {
    let single = start_single();
    let single_addr = single.local_addr().to_string();
    let baseline = client::request(
        &single_addr,
        "POST",
        "/v1/simulate",
        Some(SLOW_SPEC),
        TIMEOUT,
    )
    .expect("baseline");
    assert_eq!(baseline.status, 200, "{}", baseline.body);
    single.shutdown();

    let (mut worker_a, addr_a) = spawn_serve(&[]);
    let (mut worker_b, addr_b) = spawn_serve(&[]);
    let dir = temp_dir("worker-chaos");
    let peers = write_peers(&dir, &[addr_a, addr_b]);
    let (mut coordinator, caddr) = spawn_serve(&[
        "--workers-file",
        peers.to_str().expect("utf-8 path"),
        "--heartbeat-ms",
        "200",
        "--partition-timeout-ms",
        "60000",
    ]);

    let job = {
        let caddr = caddr.clone();
        thread::spawn(move || {
            client::request(&caddr, "POST", "/v1/simulate", Some(SLOW_SPEC), TIMEOUT)
        })
    };
    // Let the dispatch fan out, then hard-kill one worker. Its
    // partitions requeue to the survivor (or run locally after the
    // attempts are exhausted) — either way the bytes cannot change.
    thread::sleep(Duration::from_millis(500));
    sigkill(&mut worker_a);

    let merged = job
        .join()
        .expect("client thread")
        .expect("clustered response");
    assert_eq!(merged.status, 200, "{}", merged.body);
    assert_eq!(
        merged.body, baseline.body,
        "worker loss changed the merged bytes"
    );

    // The loss was actually observed: the dead worker's partitions were
    // requeued (to the survivor or to a local fallback run).
    let metrics = client::request(&caddr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    let counter = |event: &str| -> u64 {
        metrics
            .body
            .lines()
            .find_map(|l| {
                l.strip_prefix(&format!(
                    "tauhls_serve_cluster_partitions_total{{event=\"{event}\"}} "
                ))
            })
            .expect("counter line")
            .parse()
            .expect("numeric counter")
    };
    assert!(
        counter("requeued") + counter("local") > 0,
        "kill -9 was never observed:\n{}",
        metrics.body
    );

    sigterm(&mut coordinator);
    sigkill(&mut worker_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killing_the_coordinator_mid_sweep_recovers_to_the_same_bytes() {
    let single = start_single();
    let single_addr = single.local_addr().to_string();
    let baseline = client::request(
        &single_addr,
        "POST",
        "/v1/simulate",
        Some(SLOW_SPEC),
        TIMEOUT,
    )
    .expect("baseline");
    assert_eq!(baseline.status, 200, "{}", baseline.body);
    single.shutdown();

    let (mut worker_a, addr_a) = spawn_serve(&[]);
    let (mut worker_b, addr_b) = spawn_serve(&[]);
    let dir = temp_dir("coordinator-chaos");
    let peers = write_peers(&dir, &[addr_a, addr_b]);
    let data_dir = dir.join("data");
    let coordinator_args: Vec<String> = [
        "--workers-file",
        peers.to_str().expect("utf-8 path"),
        "--data-dir",
        data_dir.to_str().expect("utf-8 path"),
        "--job-workers",
        "1",
        "--heartbeat-ms",
        "200",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let arg_refs: Vec<&str> = coordinator_args.iter().map(String::as_str).collect();
    let (mut coordinator, caddr) = spawn_serve(&arg_refs);

    // Submit asynchronously so the job is journalled before it runs.
    let submission = format!(r#"{{"endpoint":"simulate","spec":{SLOW_SPEC}}}"#);
    let submitted =
        client::request(&caddr, "POST", "/v1/jobs", Some(&submission), TIMEOUT).expect("submit");
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let job_id = submitted
        .header("location")
        .expect("Location header")
        .rsplit('/')
        .next()
        .expect("job id")
        .to_string();

    // Kill -9 the coordinator while the sweep is in flight.
    thread::sleep(Duration::from_millis(500));
    sigkill(&mut coordinator);

    // Restart over the same journal and workers file: the interrupted
    // job requeues and re-runs through the cluster.
    let (mut coordinator, caddr) = spawn_serve(&arg_refs);
    let deadline = Instant::now() + TIMEOUT;
    let body = loop {
        let poll = client::request(
            &caddr,
            "GET",
            &format!("/v1/jobs/{job_id}/result"),
            None,
            TIMEOUT,
        )
        .expect("poll result");
        match poll.status {
            200 => break poll.body,
            202 => {
                assert!(
                    Instant::now() < deadline,
                    "job never finished after restart"
                );
                thread::sleep(Duration::from_millis(100));
            }
            other => panic!("unexpected result status {other}: {}", poll.body),
        }
    };
    assert_eq!(
        body, baseline.body,
        "coordinator crash-recovery changed the job bytes"
    );

    sigterm(&mut coordinator);
    sigkill(&mut worker_a);
    sigkill(&mut worker_b);
    let _ = std::fs::remove_dir_all(&dir);
}
