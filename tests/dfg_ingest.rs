//! End-to-end tests for first-class DFG ingestion: inline wire-format
//! graphs through the synchronous endpoints, the validator, the
//! design-space explorer (sync, async + kill -9 recovery, CLI), the
//! live-status endpoint, and stage-cache warm-up across restarts.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use tauhls::serve::{client, ServeConfig, Server};
use tauhls_json::Json;

const TIMEOUT: Duration = Duration::from_secs(120);

/// A compact wire document used across the suite: a two-op multiply-add
/// with three inputs (`r = a*x + b`).
const AXPY_WIRE: &str = r#"{"nodes":[{"id":"a","op":"input"},{"id":"x","op":"input"},{"id":"b","op":"input"},{"id":"m","op":"mul"},{"id":"s","op":"add"}],"edges":[{"from":"a","to":"m","port":0},{"from":"x","to":"m","port":1},{"from":"m","to":"s","port":0},{"from":"b","to":"s","port":1}],"outputs":{"r":"s"},"params":{"name":"axpy"}}"#;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tauhls-dfg-it-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_server(sim_threads: Option<usize>, data_dir: Option<&Path>) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        sim_threads,
        job_workers: 1,
        job_backoff_base: Duration::from_millis(5),
        data_dir: data_dir.map(Path::to_path_buf),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn post(addr: &str, path: &str, body: &str) -> client::Response {
    client::request(addr, "POST", path, Some(body), TIMEOUT).expect("response")
}

fn job_state(addr: &str, id: &str) -> String {
    let r = client::request(addr, "GET", &format!("/v1/jobs/{id}"), None, TIMEOUT)
        .expect("status response");
    assert_eq!(r.status, 200, "{}", r.body);
    Json::parse(&r.body)
        .ok()
        .and_then(|j| j.get("state").and_then(|v| v.as_str().map(String::from)))
        .unwrap_or_else(|| panic!("status body has no state: {}", r.body))
}

fn wait_for_result(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let state = job_state(addr, id);
        match state.as_str() {
            "done" => break,
            "failed" | "cancelled" => panic!("job {id} ended {state}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let r = client::request(addr, "GET", &format!("/v1/jobs/{id}/result"), None, TIMEOUT)
        .expect("result response");
    assert_eq!(r.status, 200, "{}", r.body);
    r.body
}

fn spawn_serve(data_dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "1",
            "--job-workers",
            "1",
            "--backoff-ms",
            "5",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tauhls serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("banner format")
        .to_string();
    (child, addr)
}

#[test]
fn inline_wire_dfgs_run_on_every_sync_endpoint_and_canonicalize() {
    let server = start_server(Some(1), None);
    let addr = server.local_addr().to_string();

    // Simulate with an inline graph: 200, and the canonical echo holds
    // the canonical wire object, not a benchmark name.
    let sim = post(
        &addr,
        "/v1/simulate",
        &format!(r#"{{"dfg":{AXPY_WIRE},"trials":50,"p":[0.5],"seed":9}}"#),
    );
    assert_eq!(sim.status, 200, "{}", sim.body);
    assert!(sim.body.contains("\"nodes\""), "{}", sim.body);

    // A semantically identical document with respelled key order is the
    // same job: second request is a byte-identical cache hit.
    let respelled = AXPY_WIRE.replace(r#"{"id":"a","op":"input"}"#, r#"{"op":"input","id":"a"}"#);
    assert_ne!(respelled, AXPY_WIRE);
    let hit = post(
        &addr,
        "/v1/simulate",
        &format!(r#"{{"dfg":{respelled},"trials":50,"p":[0.5],"seed":9}}"#),
    );
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-cache"), Some("hit"), "{}", hit.body);
    assert_eq!(hit.body, sim.body);

    // Synth and area accept the same inline graph.
    let synth = post(&addr, "/v1/synth", &format!(r#"{{"dfg":{AXPY_WIRE}}}"#));
    assert_eq!(synth.status, 200, "{}", synth.body);
    assert!(synth.body.contains("\"controllers\""), "{}", synth.body);
    let area = post(
        &addr,
        "/v1/area",
        &format!(r#"{{"dfg":{AXPY_WIRE},"width":16}}"#),
    );
    assert_eq!(area.status, 200, "{}", area.body);

    // A hostile graph (dangling edge) is a typed 400 with a byte offset.
    let bad = AXPY_WIRE.replace(r#""from":"m","to":"s""#, r#""from":"ghost","to":"s""#);
    let rejected = post(
        &addr,
        "/v1/simulate",
        &format!(r#"{{"dfg":{bad},"trials":5}}"#),
    );
    assert_eq!(rejected.status, 400, "{}", rejected.body);
    assert!(rejected.body.contains("byte "), "{}", rejected.body);
    assert!(rejected.body.contains("ghost"), "{}", rejected.body);

    server.shutdown();
}

#[test]
fn dfg_validate_and_status_round_trip_over_http() {
    let server = start_server(Some(1), None);
    let addr = server.local_addr().to_string();

    let ok = post(&addr, "/v1/dfg/validate", AXPY_WIRE);
    assert_eq!(ok.status, 200, "{}", ok.body);
    let doc = Json::parse(&ok.body).expect("validate body is JSON");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        doc.get("name").and_then(|v| v.as_str()),
        Some("axpy"),
        "{}",
        ok.body
    );
    let hash = doc
        .get("hash")
        .and_then(|v| v.as_str())
        .expect("hash present");
    assert_eq!(hash.len(), 16, "{hash}");

    // Validation is pure: it never caches, and the canonical form it
    // answers re-validates to the same hash.
    let canonical = doc.get("canonical").expect("canonical echo").to_compact();
    let again = post(&addr, "/v1/dfg/validate", &canonical);
    assert_eq!(again.status, 200, "{}", again.body);
    let again_doc = Json::parse(&again.body).expect("JSON");
    assert_eq!(
        again_doc.get("hash").and_then(|v| v.as_str()),
        Some(hash),
        "canonical form drifted"
    );

    let cyclic = r#"{"nodes":[{"id":"p","op":"add"},{"id":"q","op":"add"}],"edges":[{"from":"p","to":"q","port":0},{"from":"q","to":"p","port":0},{"from":"p","to":"q","port":1},{"from":"q","to":"p","port":1}],"outputs":{"y":"p"}}"#;
    let rejected = post(&addr, "/v1/dfg/validate", cyclic);
    assert_eq!(rejected.status, 400, "{}", rejected.body);
    assert!(rejected.body.contains("byte "), "{}", rejected.body);

    // The status endpoint reports the live service as JSON.
    let status = client::request(&addr, "GET", "/v1/status", None, TIMEOUT).expect("status");
    assert_eq!(status.status, 200, "{}", status.body);
    let snap = Json::parse(&status.body).expect("status body is JSON");
    assert!(snap.get("uptime_seconds").is_some(), "{}", status.body);
    assert!(snap.get("jobs").is_some(), "{}", status.body);
    assert!(snap.get("events").is_some(), "{}", status.body);
    // dfg_validate traffic shows up in the metrics endpoint list.
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        metrics
            .body
            .contains("tauhls_serve_requests_total{endpoint=\"dfg_validate\"} 3"),
        "{}",
        metrics.body
    );
    server.shutdown();
}

#[test]
fn explore_frontier_is_thread_count_invariant_and_kill9_durable() {
    let explore_spec = format!(
        r#"{{"dfg":{AXPY_WIRE},"max_muls":2,"max_adds":1,"trials":60000,"p":[0.9,0.5],"sd_ld":[0.75,1.0],"seed":3}}"#
    );

    // Reference frontier from a single-threaded in-process server.
    let server = start_server(Some(1), None);
    let addr = server.local_addr().to_string();
    let serial = post(&addr, "/v1/dfg/explore", &explore_spec);
    assert_eq!(serial.status, 200, "{}", serial.body);
    assert!(serial.body.contains("\"frontier\""), "{}", serial.body);
    server.shutdown();

    // Same spec on a 4-thread server: byte-identical body.
    let server = start_server(Some(4), None);
    let addr = server.local_addr().to_string();
    let threaded = post(&addr, "/v1/explore", &explore_spec);
    assert_eq!(threaded.status, 200);
    assert_eq!(
        threaded.body, serial.body,
        "explore frontier depends on the thread count"
    );
    server.shutdown();

    // Durable async explore: submit to a real subprocess, SIGKILL it
    // mid-run, restart on the same data dir, and the recovered frontier
    // is byte-identical to the synchronous reference.
    let dir = TempDir::new("explore-sigkill");
    let (mut child, addr) = spawn_serve(dir.path());
    let submit_body = format!(r#"{{"endpoint":"explore","spec":{explore_spec}}}"#);
    let submitted =
        client::request_with(&addr, "POST", "/v1/jobs", &[], Some(&submit_body), TIMEOUT)
            .expect("submit response");
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = Json::parse(&submitted.body)
        .ok()
        .and_then(|j| j.get("job").and_then(|v| v.as_str().map(String::from)))
        .expect("submit body has job id");

    let deadline = Instant::now() + TIMEOUT;
    while job_state(&addr, &id) != "running" {
        assert!(Instant::now() < deadline, "explore job never started");
        thread::sleep(Duration::from_millis(10));
    }
    let killed = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status()
        .expect("send SIGKILL");
    assert!(killed.success());
    child.wait().expect("reap killed server");

    let (mut child, addr) = spawn_serve(dir.path());
    let recovered = wait_for_result(&addr, &id);
    assert_eq!(
        recovered, serial.body,
        "recovered explore frontier diverged from the synchronous run"
    );
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let _ = child.wait();
}

#[test]
fn stage_cache_warms_from_the_journal_across_restarts() {
    let dir = TempDir::new("stagewarm");

    let server = start_server(Some(1), Some(dir.path()));
    let addr = server.local_addr().to_string();
    let cold = post(&addr, "/v1/synth", r#"{"dfg":"fir5"}"#);
    assert_eq!(cold.status, 200, "{}", cold.body);
    server.shutdown();
    assert!(
        dir.path().join("stage_warm.journal").exists(),
        "synth run did not journal its spec"
    );

    // Restart: the warmer replays the journalled spec, so the very first
    // synth request hits every pipeline stage.
    let server = start_server(Some(1), Some(dir.path()));
    let addr = server.local_addr().to_string();
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        !metrics.body.contains("tauhls_serve_stage_cache_entries 0"),
        "stage cache still cold after restart:\n{}",
        metrics.body
    );
    let warm = post(&addr, "/v1/synth", r#"{"dfg":"fir5"}"#);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold.body, "warm synth body diverged");
    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        metrics
            .body
            .contains("tauhls_serve_stage_cache_hits_total{stage=\"logic\"} 1"),
        "first post-restart synth missed the warmed stages:\n{}",
        metrics.body
    );
    // The status event log records the warm-up.
    let status = client::request(&addr, "GET", "/v1/status", None, TIMEOUT).expect("status");
    assert!(
        status.body.contains("stage cache warmed"),
        "{}",
        status.body
    );
    server.shutdown();
}

#[test]
fn explore_cli_matches_the_service_and_dfg_verbs_work() {
    let dir = TempDir::new("cli");
    let wire_file = dir.path().join("axpy.json");
    std::fs::write(&wire_file, AXPY_WIRE).expect("write wire file");
    let wire_path = wire_file.to_str().expect("utf-8 path");

    // `tauhls explore` locally computes the same body the service
    // answers for the same knobs.
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args([
            "explore",
            wire_path,
            "--max-muls",
            "2",
            "--max-adds",
            "1",
            "--trials",
            "200",
            "--p",
            "0.5",
            "--threads",
            "1",
        ])
        .output()
        .expect("run tauhls explore");
    assert!(
        output.status.success(),
        "explore failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let printed = String::from_utf8(output.stdout).expect("utf-8 explore output");

    let server = start_server(Some(2), None);
    let addr = server.local_addr().to_string();
    let served = post(
        &addr,
        "/v1/explore",
        &format!(r#"{{"dfg":{AXPY_WIRE},"max_muls":2,"max_adds":1,"trials":200,"p":[0.5]}}"#),
    );
    assert_eq!(served.status, 200, "{}", served.body);
    assert_eq!(
        printed.trim_end(),
        served.body.trim_end(),
        "CLI explore diverged from the service"
    );
    server.shutdown();

    // `tauhls dfg validate` prints the summary with the content hash.
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(["dfg", "validate", wire_path])
        .output()
        .expect("run tauhls dfg validate");
    assert!(output.status.success());
    let summary = String::from_utf8(output.stdout).expect("utf-8 summary");
    assert!(summary.contains("\"axpy\""), "{summary}");
    assert!(summary.contains("\"hash\""), "{summary}");

    // `tauhls dfg dot` renders Graphviz from the wire document.
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(["dfg", "dot", wire_path])
        .output()
        .expect("run tauhls dfg dot");
    assert!(output.status.success());
    let dot = String::from_utf8(output.stdout).expect("utf-8 dot");
    assert!(dot.starts_with("digraph \"axpy\""), "{dot}");
    assert!(dot.contains("->"), "{dot}");

    // `tauhls dfg convert` round-trips wire -> text -> wire.
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(["dfg", "convert", wire_path])
        .output()
        .expect("run tauhls dfg convert");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).expect("utf-8 text form");
    assert!(text.contains("input a"), "{text}");
    let text_file = dir.path().join("axpy.dfg");
    std::fs::write(&text_file, &text).expect("write text form");
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(["dfg", "convert", text_file.to_str().expect("utf-8 path")])
        .output()
        .expect("run tauhls dfg convert back");
    assert!(output.status.success());
    let back = String::from_utf8(output.stdout).expect("utf-8 wire form");
    assert!(back.trim_start().starts_with('{'), "{back}");
    assert!(back.contains("\"nodes\""), "{back}");

    // A corrupt file reports the byte-offset diagnostic on stderr.
    let bad_file = dir.path().join("bad.json");
    std::fs::write(&bad_file, r#"{"nodes":[{"id":"a","op":"warp"}]}"#).expect("write bad file");
    let output = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args(["dfg", "validate", bad_file.to_str().expect("utf-8 path")])
        .output()
        .expect("run tauhls dfg validate on bad input");
    assert!(!output.status.success());
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("byte "), "{err}");
}
