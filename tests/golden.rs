//! Golden-file snapshot tests: the checked-in machine-readable artifacts
//! under `results/` must be byte-for-byte reproducible from the current
//! code. Regenerate with `./regen_results.sh` after an intentional change
//! and review the diff.
//!
//! The Table 2 snapshot deliberately runs on all available cores: the
//! batch engine's determinism guarantee is what makes a parallel run
//! byte-identical to the file a (possibly differently-sized) machine
//! produced.

use tauhls::core::experiments::{table1, table2};
use tauhls::fsm::Encoding;
use tauhls::logic::AreaModel;
use tauhls::sim::BatchRunner;
use tauhls_json::ToJson;

fn golden(name: &str) -> String {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden file {path}: {e}"))
}

#[test]
fn table1_json_matches_golden() {
    let rendered = table1(Encoding::Binary, &AreaModel::default())
        .to_json()
        .to_pretty();
    assert_eq!(
        rendered,
        golden("table1.json"),
        "table1.json drifted; run ./regen_results.sh and review"
    );
}

#[test]
fn table2_json_matches_golden() {
    // Same parameters regen_results.sh uses; thread count intentionally
    // machine-dependent.
    let rendered = table2(6000, 2003, &BatchRunner::available())
        .to_json()
        .to_pretty();
    assert_eq!(
        rendered,
        golden("table2.json"),
        "table2.json drifted; run ./regen_results.sh and review"
    );
}

#[test]
fn table2_text_matches_golden() {
    let rendered = format!("{}", table2(6000, 2003, &BatchRunner::available()));
    assert_eq!(
        rendered.trim_end(),
        golden("table2.txt").trim_end(),
        "table2.txt drifted; run ./regen_results.sh and review"
    );
}
