//! Cross-crate integration tests for the beyond-the-paper subsystems:
//! RTL emission, register allocation, force-directed scheduling, chain
//! binding, multi-level controllers, and pipelined simulation — all driven
//! through the public facade on the paper benchmarks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tauhls::core::experiments::paper_benchmarks;
use tauhls::dfg::ResourceClass;
use tauhls::fsm::{
    control_unit_to_verilog, unit_controller_multilevel, DistributedControlUnit, Encoding,
};
use tauhls::logic::AreaModel;
use tauhls::sched::{allocate_registers, fds_schedule, BoundDfg, UnitId};
use tauhls::sim::{simulate_distributed, simulate_pipelined, CompletionModel};

#[test]
fn rtl_emission_for_every_benchmark() {
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let v = control_unit_to_verilog(&cu, Encoding::Binary, &AreaModel::default());
        // One module per controller plus the top.
        assert_eq!(
            v.matches("\nendmodule").count() + usize::from(v.starts_with("endmodule")),
            cu.controllers().len() + 1,
            "{name}"
        );
        // Every RE output of every op appears somewhere.
        for op in dfg.op_ids() {
            assert!(v.contains(&format!("re{}", op.0)), "{name}: re{}", op.0);
        }
        // The top module wires the internal completion signals.
        let top = v.split("module control_unit").nth(1).unwrap();
        assert!(
            top.contains("wire c_co_") || cu.signal_wiring().is_empty(),
            "{name}"
        );
    }
}

#[test]
fn register_allocation_for_every_benchmark() {
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let regs = allocate_registers(&bound);
        assert!(regs.verify(), "{name}");
        assert!(regs.num_registers() <= dfg.num_ops(), "{name}");
        assert!(regs.num_registers() >= 1, "{name}");
    }
}

#[test]
fn fds_matches_or_beats_paper_allocations() {
    // At the latency the paper's allocation achieves (best case), FDS must
    // find an allocation no larger in the multiplier class.
    let mut rng = StdRng::seed_from_u64(1);
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let best = simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
            .expect("fault-free simulation");
        let s = fds_schedule(&dfg, best.cycles);
        assert!(s.verify(&dfg), "{name}");
        let implied = s.implied_allocation(&dfg);
        let muls = implied
            .get(&ResourceClass::Multiplier)
            .copied()
            .unwrap_or(0);
        assert!(
            muls <= alloc.count(ResourceClass::Multiplier) + 1,
            "{name}: FDS implied {muls} multipliers"
        );
    }
}

#[test]
fn chain_binding_simulates_equivalently() {
    // Chain-bound designs must execute legally and compute the same
    // values; latency may differ slightly from left-edge but stays within
    // the same best/worst envelope.
    let mut rng = StdRng::seed_from_u64(2);
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let chains = BoundDfg::bind_chains(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&chains);
        for model in [CompletionModel::AlwaysShort, CompletionModel::AlwaysLong] {
            let r = simulate_distributed(&chains, &cu, &model, None, &mut rng)
                .expect("fault-free simulation");
            r.verify(&chains).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn multilevel_controllers_work_on_diffeq() {
    let (dfg, alloc, _) = paper_benchmarks().swap_remove(4);
    let bound = BoundDfg::bind(&dfg, &alloc);
    // Per-unit generation for the telescopic units.
    for u in 0..bound.allocation().units().len() {
        let unit = UnitId(u);
        if bound.sequence(unit).is_empty() || !bound.allocation().units()[u].telescopic {
            continue;
        }
        for levels in 2..=4 {
            let fsm = unit_controller_multilevel(&bound, unit, levels);
            fsm.check().unwrap();
            // 1 exec + (levels-1) extension states per op, plus R states.
            let ops = bound.sequence(unit).len();
            assert!(fsm.num_states() >= ops * levels as usize);
        }
    }
    // Whole-design multilevel simulation.
    let cu3 = DistributedControlUnit::generate_multilevel(&bound, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let r = simulate_distributed(
        &bound,
        &cu3,
        &CompletionModel::Bernoulli { p: 0.5 },
        None,
        &mut rng,
    )
    .expect("fault-free simulation");
    r.verify(&bound).unwrap();
}

#[test]
fn pipelined_throughput_across_benchmarks() {
    let mut rng = StdRng::seed_from_u64(4);
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let bound = BoundDfg::bind(&dfg, &alloc);
        let cu = DistributedControlUnit::generate(&bound);
        let single =
            simulate_distributed(&bound, &cu, &CompletionModel::AlwaysShort, None, &mut rng)
                .expect("fault-free simulation");
        let piped = simulate_pipelined(&bound, &cu, &CompletionModel::AlwaysShort, 10, &mut rng)
            .expect("fault-free simulation");
        assert!(
            piped.initiation_interval() <= single.cycles as f64 + 1e-9,
            "{name}: II {} vs latency {}",
            piped.initiation_interval(),
            single.cycles
        );
        // The bottleneck unit's op count lower-bounds the II.
        let bottleneck = bound.sequences().iter().map(Vec::len).max().unwrap_or(1);
        assert!(
            piped.initiation_interval() >= bottleneck as f64 - 1e-9,
            "{name}: II {} below bottleneck {bottleneck}",
            piped.initiation_interval()
        );
    }
}
