//! Integration tests for the resilience sweep driver: each fault kind is
//! demonstrably detected as a structured `SimError` through the full
//! core-driver stack, and the report (including its canonical JSON bytes)
//! is bit-identical for any thread count.

use tauhls::core::experiments::paper_benchmarks;
use tauhls::core::resilience::{resilience_sweep, FAULT_KINDS};
use tauhls::dfg::benchmarks::{diffeq, fir5};
use tauhls::sched::BoundDfg;
use tauhls::sim::BatchRunner;
use tauhls::Allocation;
use tauhls_json::ToJson;

#[test]
fn every_fault_kind_is_detected_somewhere() {
    // Across two benchmarks and a healthy trial budget, every kind of
    // injected fault must surface at least once as a structured error —
    // the sweep is not allowed to be blind to a whole fault class.
    let designs: Vec<_> = paper_benchmarks()
        .into_iter()
        .filter(|(g, _, _)| g.name() == "fir5" || g.name() == "diffeq")
        .map(|(g, alloc, _)| (g, alloc))
        .collect();
    assert_eq!(designs.len(), 2, "canonical suite covers both benchmarks");
    let mut detected = std::collections::BTreeMap::new();
    for (g, alloc) in designs {
        let bound = BoundDfg::bind(&g, &alloc);
        let report = resilience_sweep(&bound, 0.5, 150, 2003, &BatchRunner::available());
        for row in &report.rows {
            *detected.entry(row.kind.clone()).or_insert(0u64) +=
                row.detected_deadlock + row.detected_desync;
            assert_eq!(
                row.detected_deadlock + row.detected_desync + row.survived,
                row.trials,
                "{}: outcomes must partition trials",
                row.kind
            );
        }
    }
    for kind in FAULT_KINDS {
        assert!(
            detected.get(kind).copied().unwrap_or(0) > 0,
            "fault kind {kind} was never detected: {detected:?}"
        );
    }
}

#[test]
fn detection_latency_is_reported_for_detected_faults() {
    let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
    let report = resilience_sweep(&bound, 0.5, 150, 7, &BatchRunner::serial());
    let stuck_long = report
        .rows
        .iter()
        .find(|r| r.kind == "stuck_long")
        .expect("stuck_long row");
    assert!(stuck_long.detected_deadlock > 0);
    // A deadlock is diagnosed by watchdog expiry, strictly after injection.
    assert!(stuck_long.mean_detection_latency > 0.0);
    assert!(stuck_long.detection_rate() <= 1.0);
    assert!(stuck_long.survival_fraction() <= 1.0);
}

#[test]
fn report_json_is_bit_identical_across_thread_counts() {
    let bound = BoundDfg::bind(&diffeq(), &Allocation::paper(2, 1, 1));
    let reference = resilience_sweep(&bound, 0.5, 64, 2003, &BatchRunner::serial())
        .to_json()
        .to_pretty();
    for threads in [2usize, 8] {
        let got = resilience_sweep(&bound, 0.5, 64, 2003, &BatchRunner::new(threads))
            .to_json()
            .to_pretty();
        assert_eq!(reference, got, "threads = {threads}");
    }
    // Sanity: the artifact names every fault kind.
    for kind in FAULT_KINDS {
        assert!(reference.contains(kind));
    }
}

#[test]
fn elastic_columns_partition_trials_and_bisimulate_at_zero_spec() {
    use tauhls::core::resilience::{resilience_sweep_with, ResilienceOptions};
    use tauhls::sim::{ControlStyleSet, ElasticSpec};

    let bound = BoundDfg::bind(&fir5(), &Allocation::paper(2, 1, 0));
    // Default options: all three styles, the default elastic spec. The
    // elastic outcomes must partition the trials of every row.
    let report = resilience_sweep_with(
        &bound,
        0.5,
        96,
        2003,
        &ResilienceOptions::default(),
        &BatchRunner::available(),
    );
    for row in &report.rows {
        assert_eq!(
            row.elastic_deadlock + row.elastic_desync + row.elastic_survived,
            row.trials,
            "{}: elastic outcomes must partition trials",
            row.kind
        );
    }
    // Zero spec: the elastic engine is bisimilar to the distributed one,
    // so the elastic columns must equal the dist columns row for row.
    let zero = resilience_sweep_with(
        &bound,
        0.5,
        96,
        2003,
        &ResilienceOptions {
            elastic: ElasticSpec::zero(),
            ..ResilienceOptions::default()
        },
        &BatchRunner::available(),
    );
    for row in &zero.rows {
        assert_eq!(row.elastic_deadlock, row.detected_deadlock, "{}", row.kind);
        assert_eq!(row.elastic_desync, row.detected_desync, "{}", row.kind);
        assert_eq!(row.elastic_survived, row.survived, "{}", row.kind);
    }
    // Styles filter: a dist-only sweep keeps the dist columns bit-equal
    // and zeroes everything gated off.
    let dist_only = resilience_sweep_with(
        &bound,
        0.5,
        96,
        2003,
        &ResilienceOptions {
            styles: ControlStyleSet::DIST,
            ..ResilienceOptions::default()
        },
        &BatchRunner::available(),
    );
    for (full, lean) in report.rows.iter().zip(&dist_only.rows) {
        assert_eq!(full.detected_deadlock, lean.detected_deadlock);
        assert_eq!(full.detected_desync, lean.detected_desync);
        assert_eq!(full.survived, lean.survived);
        assert_eq!(lean.cent_agreement, 0);
        assert_eq!(
            lean.elastic_deadlock + lean.elastic_desync + lean.elastic_survived,
            0
        );
    }
}
