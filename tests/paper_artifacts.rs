//! Regression tests for the paper's worked examples (figures) and
//! headline table shapes: changes to any pipeline stage that would break
//! the reproduction are caught here.

use tauhls::core::experiments::{fig4_explosion, table1, table2};
use tauhls::core::figures;
use tauhls::fsm::Encoding;
use tauhls::logic::AreaModel;
use tauhls::sim::BatchRunner;

#[test]
fn fig_reports_regenerate() {
    let f1 = figures::fig1_report();
    assert!(f1.contains("telescopic arithmetic unit"));
    assert!(f1.contains("completion signal generator"));

    let f2 = figures::fig2_report();
    assert!(f2.contains("best 4 cycles, worst 6 cycles"));
    assert!(f2.contains("TAUBM FSM"));

    let f3 = figures::fig3_report();
    assert!(f3.contains("minimum clique cover"));
    assert!(f3.contains("3 TAU multipliers required"));

    let f6 = figures::fig6_report();
    assert!(f6.contains("D-FSM-M1"));
    assert!(f6.contains("5 states"));
    assert!(f6.contains("10 transitions"));

    let f7 = figures::fig7_report();
    assert!(f7.contains("CONT_M2"));
    assert!(f7.contains("C_CO("));
}

#[test]
fn table1_reproduces_paper_ordering() {
    let t = table1(Encoding::Binary, &AreaModel::default());
    let total = |name: &str| {
        let r = t.rows.iter().find(|r| r.name == name).unwrap();
        r.area_com + r.area_seq
    };
    // The paper's qualitative ordering:
    //   CENT-SYNC < DIST < CENT (total area),
    // with DIST ~3x CENT-SYNC and CENT ~1.6x DIST in the paper.
    let sync = total("CENT-SYNC-FSM");
    let dist = total("DIST-FSM");
    let cent = total("CENT-FSM");
    assert!(sync < dist, "sync {sync} dist {dist}");
    assert!(dist < cent, "dist {dist} cent {cent}");
    let ratio_dist_sync = dist / sync;
    let ratio_cent_dist = cent / dist;
    assert!(
        (1.3..8.0).contains(&ratio_dist_sync),
        "DIST/SYNC ratio {ratio_dist_sync}"
    );
    assert!(
        (1.05..6.0).contains(&ratio_cent_dist),
        "CENT/DIST ratio {ratio_cent_dist}"
    );
    // The paper's per-controller flip-flop counts: D-FSM-M1/M2 have 3 FFs,
    // the adder controller 2 (paper lists 2-3 FFs per component).
    for r in &t.rows {
        if r.name.starts_with("D-FSM") {
            assert!((1..=4).contains(&r.ffs), "{}: {} FFs", r.name, r.ffs);
        }
    }
    // Exact matches against the paper's legible Table 1 cells
    // (sequential area at 22 GE per flip-flop):
    let exact = |name: &str, ffs: usize, seq: f64| {
        let r = t.rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!(r.ffs, ffs, "{name} FFs");
        assert_eq!(r.area_seq, seq, "{name} sequential area");
    };
    exact("CENT-FSM", 5, 110.0); // paper: 110
    exact("CENT-SYNC-FSM", 3, 66.0); // paper: 66
    exact("D-FSM-M1", 3, 66.0); // paper: 66
    exact("D-FSM-M2", 3, 66.0); // paper: 66
    exact("D-FSM-A1", 2, 44.0); // paper: 44
}

#[test]
fn table2_reproduces_paper_shape() {
    let t = table2(600, 7, &BatchRunner::available()).expect("fault-free table2");
    // Best/worst columns in ns are exact, deterministic reproductions.
    let by_name = |n: &str| t.rows.iter().find(|r| r.name == n).unwrap();
    let fir3 = by_name("fir3");
    assert_eq!(fir3.lt_tau.best_ns, 45.0);
    assert_eq!(fir3.lt_tau.worst_ns, 75.0);
    assert_eq!(fir3.lt_dist.best_ns, 45.0);
    let fir5 = by_name("fir5");
    assert_eq!(fir5.lt_tau.best_ns, 75.0);
    // Paper prints 105 ns here, but with 5 multiplications on 2 TAUs the
    // schedule necessarily has 3 multiply steps, each extendable by one
    // fast cycle: worst = 75 + 3*15 = 120 ns. Our value is the
    // self-consistent one (see EXPERIMENTS.md).
    assert_eq!(fir5.lt_tau.worst_ns, 120.0);
    assert_eq!(fir5.lt_dist.worst_ns, 105.0);
    let diff = by_name("diffeq");
    assert_eq!(diff.lt_tau.best_ns, 60.0);
    assert_eq!(diff.lt_tau.worst_ns, 105.0);
    // Enhancement grows with shrinking P for the multi-TAU benchmarks.
    for r in &t.rows {
        if r.name != "fir3" && r.name != "diffeq" {
            assert!(
                r.enhancement[2] + 0.7 >= r.enhancement[0],
                "{}: {:?}",
                r.name,
                r.enhancement
            );
        }
        // Everything is nonnegative (coupled draws).
        for e in &r.enhancement {
            assert!(*e >= 0.0, "{}: {e}", r.name);
        }
    }
    // FIR5 and IIR2 have the same structure in the paper (identical
    // LT_DIST cells); ours agree on best/worst.
    let iir2 = by_name("iir2");
    assert_eq!(fir5.lt_dist.best_ns, iir2.lt_dist.best_ns);
    assert_eq!(fir5.lt_dist.worst_ns, iir2.lt_dist.worst_ns);
}

#[test]
fn fig4_sweep_shapes() {
    let pts = fig4_explosion(6);
    // Exponential centralized growth, linear distributed growth, constant
    // synchronized size.
    for w in pts.windows(2) {
        assert_eq!(w[1].cent_states, 2 * w[0].cent_states);
        assert_eq!(w[1].dist_states - w[0].dist_states, 2);
        assert_eq!(w[1].sync_states, w[0].sync_states);
    }
}
