//! Functional correctness across the full stack: the datapath sequenced
//! by the generated controllers must compute exactly what the dataflow
//! semantics specify, under every completion model, and the bit-level
//! telescopic units must agree with the synthesized completion generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tauhls::datapath::{
    ArrayMultiplier, CompletionGenerator, FunctionalUnit, RippleCarryAdder, RippleCarrySubtractor,
    Tau,
};
use tauhls::dfg::benchmarks;
use tauhls::fsm::DistributedControlUnit;
use tauhls::sim::{simulate_distributed, CompletionModel, TauLibrary};
use tauhls::{Allocation, Synthesis};

#[test]
fn datapath_results_match_reference_semantics() {
    let mut rng = StdRng::seed_from_u64(5);
    let design = Synthesis::new(benchmarks::diffeq())
        .allocation(Allocation::paper(2, 1, 1))
        .run()
        .unwrap();
    let cu = DistributedControlUnit::generate(design.bound());
    for _ in 0..20 {
        let inputs: Vec<i64> = (0..5).map(|_| rng.random_range(-1000..1000)).collect();
        let model = CompletionModel::OperandDriven(TauLibrary::multiplier_only(16, 20));
        let r = simulate_distributed(design.bound(), &cu, &model, Some(&inputs), &mut rng)
            .expect("fault-free simulation");
        r.verify(design.bound()).unwrap();
        // Architectural outputs equal the reference evaluation.
        let reference = design.bound().dfg().evaluate(&inputs);
        for (name, op) in design.bound().dfg().outputs() {
            assert_eq!(r.values[op.0], reference[name], "output {name}");
        }
        // Completion cycles define a valid execution order for the values:
        // every op completed after its operands were available.
        for v in design.bound().dfg().op_ids() {
            for p in design.bound().dfg().preds(v) {
                assert!(r.completion_cycle[p.0] < r.start_cycle[v.0]);
            }
        }
    }
}

#[test]
fn bitlevel_units_match_integer_semantics() {
    let mut rng = StdRng::seed_from_u64(6);
    let add = RippleCarryAdder::new(16);
    let sub = RippleCarrySubtractor::new(16);
    let mul = ArrayMultiplier::new(16);
    for _ in 0..2000 {
        let a: u64 = rng.random::<u64>() & 0xFFFF;
        let b: u64 = rng.random::<u64>() & 0xFFFF;
        assert_eq!(add.compute(a, b), (a + b) & 0xFFFF);
        assert_eq!(sub.compute(a, b), a.wrapping_sub(b) & 0xFFFF);
        assert_eq!(mul.compute(a, b), (a * b) & 0xFFFF);
        // Signed comparison through the subtractor.
        let sa = (a as i16) as i64;
        let sb = (b as i16) as i64;
        assert_eq!(sub.less_than(a, b), sa < sb, "{sa} < {sb}");
        // Delays never exceed the worst case.
        assert!(add.delay_levels(a, b) <= add.worst_delay_levels());
        assert!(mul.delay_levels(a, b) <= mul.worst_delay_levels());
    }
}

#[test]
fn synthesized_completion_generator_equals_oracle() {
    // Paper §2.1's automatic generator: for every 4-bit unit and every
    // threshold, the minimized two-level circuit must agree with the
    // delay-model oracle on the entire operand space.
    let add = RippleCarryAdder::new(4);
    let mul = ArrayMultiplier::new(4);
    for k in 1..add.worst_delay_levels() {
        let gen = CompletionGenerator::synthesize(&add, k);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(gen.predict(a, b), add.delay_levels(a, b) <= k);
            }
        }
    }
    for k in 1..mul.worst_delay_levels() {
        let gen = CompletionGenerator::synthesize(&mul, k);
        let tau = Tau::new(mul, k);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(gen.predict(a, b), tau.completion(a, b));
            }
        }
    }
}

#[test]
fn all_benchmarks_compute_correctly_under_all_models() {
    let mut rng = StdRng::seed_from_u64(7);
    for (dfg, alloc, _) in tauhls::core::experiments::paper_benchmarks() {
        let n_inputs = dfg.num_inputs();
        let design = Synthesis::new(dfg).allocation(alloc).run().unwrap();
        let cu = DistributedControlUnit::generate(design.bound());
        let inputs: Vec<i64> = (0..n_inputs).map(|_| rng.random_range(-50..50)).collect();
        for model in [
            CompletionModel::AlwaysShort,
            CompletionModel::AlwaysLong,
            CompletionModel::Bernoulli { p: 0.5 },
            CompletionModel::OperandDriven(TauLibrary::multiplier_only(16, 18)),
        ] {
            let r = simulate_distributed(design.bound(), &cu, &model, Some(&inputs), &mut rng)
                .expect("fault-free simulation");
            r.verify(design.bound()).unwrap();
            let reference = design.bound().dfg().evaluate(&inputs);
            for (name, op) in design.bound().dfg().outputs() {
                assert_eq!(r.values[op.0], reference[name]);
            }
        }
    }
}
