//! Determinism regression tests for the batch simulation engine: the same
//! base seed must produce byte-identical artifacts regardless of how many
//! worker threads execute the trials, and independent of chunking. This is
//! the contract that makes the checked-in golden files in `results/`
//! meaningful on any machine.

use tauhls::core::experiments::table2;
use tauhls::dfg::benchmarks;
use tauhls::sched::BoundDfg;
use tauhls::sim::{latency_pair_batch, BatchRunner};
use tauhls::Allocation;
use tauhls_json::ToJson;

#[test]
fn latency_summaries_identical_across_thread_counts() {
    let bound = BoundDfg::bind(&benchmarks::diffeq(), &Allocation::paper(2, 1, 1));
    let ps = [0.9, 0.7, 0.5];
    let reference =
        latency_pair_batch(&bound, &ps, 500, 2003, &BatchRunner::serial()).expect("fault-free");
    for threads in [2usize, 8] {
        let got = latency_pair_batch(&bound, &ps, 500, 2003, &BatchRunner::new(threads))
            .expect("fault-free");
        assert_eq!(reference, got, "threads = {threads}");
    }
    // Chunk geometry is equally irrelevant.
    let ragged = latency_pair_batch(
        &bound,
        &ps,
        500,
        2003,
        &BatchRunner::new(4).with_chunk_size(17),
    )
    .expect("fault-free");
    assert_eq!(reference, ragged);
}

#[test]
fn table2_json_identical_across_thread_counts() {
    // The full paper artifact, rendered to its canonical byte form.
    let reference = table2(200, 7, &BatchRunner::serial())
        .expect("fault-free table2")
        .to_json()
        .to_pretty();
    for threads in [2usize, 8] {
        let got = table2(200, 7, &BatchRunner::new(threads))
            .expect("fault-free table2")
            .to_json()
            .to_pretty();
        assert_eq!(reference, got, "threads = {threads}");
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the determinism is not vacuous (e.g. the engine
    // ignoring the seed entirely).
    let bound = BoundDfg::bind(&benchmarks::diffeq(), &Allocation::paper(2, 1, 1));
    let a = latency_pair_batch(&bound, &[0.5], 400, 1, &BatchRunner::serial()).expect("fault-free");
    let b = latency_pair_batch(&bound, &[0.5], 400, 2, &BatchRunner::serial()).expect("fault-free");
    assert_ne!(a, b, "seeds 1 and 2 produced identical averages");
}
