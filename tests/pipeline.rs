//! End-to-end pipeline integration tests: every paper benchmark through
//! scheduling, binding, controller generation, synthesis and simulation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tauhls::core::experiments::paper_benchmarks;
use tauhls::fsm::{synthesize, verify_synthesis, DistributedControlUnit, Encoding};
use tauhls::logic::AreaModel;
use tauhls::sim::{latency_pair, simulate_distributed, CompletionModel};
use tauhls::{Allocation, Synthesis};

#[test]
fn all_paper_benchmarks_synthesize_and_simulate() {
    let mut rng = StdRng::seed_from_u64(1);
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let design = Synthesis::new(dfg).allocation(alloc).run().unwrap();
        // Every controller is a valid deterministic Mealy machine.
        for (_, fsm) in design.distributed().controllers() {
            fsm.check().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        design.cent_sync().check().unwrap();
        // Simulation is legal at both extremes and in between.
        let cu = DistributedControlUnit::generate(design.bound());
        for model in [
            CompletionModel::AlwaysShort,
            CompletionModel::AlwaysLong,
            CompletionModel::Bernoulli { p: 0.7 },
        ] {
            let r = simulate_distributed(design.bound(), &cu, &model, None, &mut rng)
                .expect("fault-free simulation");
            r.verify(design.bound())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn distributed_dominates_sync_on_every_benchmark() {
    let mut rng = StdRng::seed_from_u64(2);
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let design = Synthesis::new(dfg).allocation(alloc).run().unwrap();
        let (sync, dist) = latency_pair(design.bound(), &[0.9, 0.5], 300, &mut rng)
            .expect("fault-free simulation");
        assert!(dist.best_cycles <= sync.best_cycles, "{name} best");
        assert!(dist.worst_cycles <= sync.worst_cycles, "{name} worst");
        for (s, d) in sync.average_cycles.iter().zip(&dist.average_cycles) {
            assert!(d <= s, "{name}: dist {d} > sync {s}");
        }
    }
}

#[test]
fn every_controller_synthesizes_correctly_in_all_encodings() {
    for (dfg, alloc, _) in paper_benchmarks() {
        let name = dfg.name().to_string();
        let design = Synthesis::new(dfg).allocation(alloc).run().unwrap();
        for (_, fsm) in design.distributed().controllers() {
            for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
                let syn = synthesize(fsm, enc, &AreaModel::default());
                assert!(
                    verify_synthesis(fsm, &syn, enc),
                    "{name}/{}/{enc:?}: synthesized logic diverges",
                    fsm.name()
                );
            }
        }
        // The synchronized controller synthesizes too.
        let syn = synthesize(design.cent_sync(), Encoding::Binary, &AreaModel::default());
        assert!(verify_synthesis(design.cent_sync(), &syn, Encoding::Binary));
    }
}

#[test]
fn paper_latency_cells_reproduce_within_tolerance() {
    // The paper's Diff row: LT_TAU [60][68.6, 82.9, 93.8][105],
    // LT_DIST [60][68.1, 80.7, 90.6][105]. Our reproduction should land
    // within ~2 ns of every average cell.
    let mut rng = StdRng::seed_from_u64(3);
    let design = Synthesis::new(tauhls::dfg::benchmarks::diffeq())
        .allocation(Allocation::paper(2, 1, 1))
        .run()
        .unwrap();
    let (sync, dist) = latency_pair(design.bound(), &[0.9, 0.7, 0.5], 6000, &mut rng)
        .expect("fault-free simulation");
    let clk = 15.0;
    let paper_tau = [68.6, 82.9, 93.8];
    let paper_dist = [68.1, 80.7, 90.6];
    for (ours, paper) in sync.average_cycles.iter().zip(paper_tau) {
        assert!(
            (ours * clk - paper).abs() < 2.0,
            "LT_TAU {:.1} vs paper {paper}",
            ours * clk
        );
    }
    for (ours, paper) in dist.average_cycles.iter().zip(paper_dist) {
        assert!(
            (ours * clk - paper).abs() < 2.0,
            "LT_DIST {:.1} vs paper {paper}",
            ours * clk
        );
    }
    assert_eq!(sync.best_cycles * 15, 60);
    assert_eq!(sync.worst_cycles * 15, 105);
    assert_eq!(dist.worst_cycles * 15, 105);
}

#[test]
fn unused_units_get_no_controllers() {
    // Allocate more units than needed: surplus units stay controller-less.
    let design = Synthesis::new(tauhls::dfg::benchmarks::fir3())
        .allocation(Allocation::paper(4, 2, 1))
        .run()
        .unwrap();
    // 3 mults fit in 3 units, 2 adds in 2 -> at most 5 controllers and no
    // controller for the subtractor.
    assert!(design.distributed().controllers().len() <= 5);
    let units = design.bound().allocation().units();
    for (u, _) in design.distributed().controllers() {
        assert!(!design.bound().sequence(*u).is_empty());
        let _ = &units[u.0];
    }
}
