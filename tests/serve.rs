//! Integration tests for the simulation service: in-process servers on
//! ephemeral ports for the cache and backpressure invariants, and a real
//! `tauhls serve` subprocess for the SIGTERM drain contract.

use std::io::BufRead;
use std::process::{Command, Stdio};
use std::thread;
use std::time::Duration;

use tauhls::serve::{client, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(120);

fn start(workers: usize, queue_capacity: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        sim_threads: Some(1),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

#[test]
fn concurrent_cache_hits_are_byte_identical_to_the_cold_run() {
    let server = start(4, 64);
    let addr = server.local_addr().to_string();
    let spec = r#"{"dfg":"fir3","trials":60,"p":[0.5],"seed":9}"#;

    let cold =
        client::request(&addr, "POST", "/v1/simulate", Some(spec), TIMEOUT).expect("cold response");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    // N concurrent clients replaying the same spec: every response must
    // be a cache hit carrying the cold run's exact bytes.
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                client::request(&addr, "POST", "/v1/simulate", Some(spec), TIMEOUT)
            })
        })
        .collect();
    for handle in workers {
        let hot = handle.join().expect("client thread").expect("hot response");
        assert_eq!(hot.status, 200);
        assert_eq!(hot.header("x-cache"), Some("hit"));
        assert_eq!(hot.body, cold.body, "cache hit diverged from cold run");
    }

    // A reordered spelling of the same spec canonicalizes to the same
    // content address.
    let reordered = r#"{"seed":9,"p":[0.5],"trials":60,"dfg":"fir3"}"#;
    let same = client::request(&addr, "POST", "/v1/simulate", Some(reordered), TIMEOUT)
        .expect("reordered response");
    assert_eq!(same.header("x-cache"), Some("hit"));
    assert_eq!(same.body, cold.body);

    // A different seed is a different job.
    let other = r#"{"dfg":"fir3","trials":60,"p":[0.5],"seed":10}"#;
    let miss = client::request(&addr, "POST", "/v1/simulate", Some(other), TIMEOUT)
        .expect("other-seed response");
    assert_eq!(miss.header("x-cache"), Some("miss"));
    assert_ne!(miss.body, cold.body);

    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert!(
        metrics.body.contains("tauhls_serve_cache_hits_total 9"),
        "{}",
        metrics.body
    );
    server.shutdown();
}

#[test]
fn synth_reuses_cached_stage_prefix_across_encodings() {
    let server = start(2, 64);
    let addr = server.local_addr().to_string();

    // Cold run: every stage executes (6 stage-cache misses).
    let cold = client::request(
        &addr,
        "POST",
        "/v1/synth",
        Some(r#"{"dfg":"fir3","encoding":"binary"}"#),
        TIMEOUT,
    )
    .expect("cold synth");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache"), Some("miss"));
    assert!(cold.body.contains("\"stages\""), "{}", cold.body);
    assert!(cold.body.contains("\"canonicalize\""), "{}", cold.body);

    // A different spelling of the same spec is a response-cache hit:
    // byte-identical to the cold run (this is what `tauhls call synth`
    // observes), and it never touches the stage pipeline.
    let respelled = client::request(
        &addr,
        "POST",
        "/v1/synth",
        Some(r#"{"encoding":"binary","dfg":"fir3"}"#),
        TIMEOUT,
    )
    .expect("respelled synth");
    assert_eq!(respelled.header("x-cache"), Some("hit"));
    assert_eq!(respelled.body, cold.body, "hot body diverged from cold run");

    // Changing only the encoding is a new response, but the encoding
    // enters the pipeline at the logic stage — canonicalize, order, bind
    // and controllers are all served from the stage cache.
    let gray = client::request(
        &addr,
        "POST",
        "/v1/synth",
        Some(r#"{"dfg":"fir3","encoding":"gray"}"#),
        TIMEOUT,
    )
    .expect("gray synth");
    assert_eq!(gray.header("x-cache"), Some("miss"));
    assert_ne!(gray.body, cold.body);

    let metrics = client::request(&addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    for needle in [
        // The front of the pipeline ran once (cold) and was reused once.
        "tauhls_serve_stage_cache_hits_total{stage=\"canonicalize\"} 1",
        "tauhls_serve_stage_cache_hits_total{stage=\"order\"} 1",
        "tauhls_serve_stage_cache_hits_total{stage=\"bind\"} 1",
        "tauhls_serve_stage_cache_hits_total{stage=\"controllers\"} 1",
        // The encoding-dependent tail ran in both jobs.
        "tauhls_serve_stage_cache_hits_total{stage=\"logic\"} 0",
        "tauhls_serve_stage_cache_misses_total{stage=\"logic\"} 2",
        "tauhls_serve_stage_cache_misses_total{stage=\"canonicalize\"} 1",
        // Latency histograms cover every executed stage.
        "tauhls_serve_stage_seconds_count{stage=\"bind\"} 2",
        "tauhls_serve_stage_seconds_count{stage=\"logic\"} 2",
        "tauhls_serve_request_seconds_count{endpoint=\"synth\"} 2",
    ] {
        assert!(
            metrics.body.contains(needle),
            "missing {needle}:\n{}",
            metrics.body
        );
    }
    server.shutdown();
}

#[test]
fn overloaded_queue_answers_503_instead_of_hanging() {
    // Diagnostic mode: no workers ever pop, so the 1-slot queue stays
    // occupied by the first request and every later one must bounce.
    let server = start(0, 1);
    let addr = server.local_addr().to_string();

    let occupant = {
        let addr = addr.clone();
        thread::spawn(move || {
            client::request(
                &addr,
                "POST",
                "/v1/simulate",
                Some(r#"{"dfg":"fir3","trials":5}"#),
                Duration::from_secs(30),
            )
        })
    };

    // Retry until the occupant's connection holds the queue slot; the
    // bounce is immediate (written by the acceptor), never a hang. An
    // attempt that itself wins the slot simply times out and retries.
    let mut bounced = None;
    for _ in 0..200 {
        match client::request(&addr, "GET", "/healthz", None, Duration::from_secs(1)) {
            Ok(r) if r.status == 503 => {
                bounced = Some(r);
                break;
            }
            _ => thread::sleep(Duration::from_millis(10)),
        }
    }
    let bounced = bounced.expect("no 503 within 2 s of overload");
    // Retry-After is derived from queue depth and measured drain rate;
    // with nothing completed yet it floors at 1 second, but the contract
    // is only "a positive number of seconds".
    let retry_after: u64 = bounced
        .header("retry-after")
        .expect("503 carries Retry-After")
        .parse()
        .expect("Retry-After is numeric seconds");
    assert!((1..=60).contains(&retry_after), "{retry_after}");
    assert!(bounced.body.contains("queue is full"), "{}", bounced.body);

    // Shutdown flushes whatever is still queued with a 503 — nothing
    // hangs, nothing gets a partial answer.
    server.shutdown();
    let parked = occupant
        .join()
        .expect("occupant thread")
        .expect("occupant response");
    assert_eq!(parked.status, 503);
}

#[test]
fn sigterm_drains_the_inflight_job_and_exits_zero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tauhls"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tauhls serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("read banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("banner format")
        .to_string();

    // A job slow enough (tens of thousands of trial runs) to still be in
    // flight when the signal lands, but comfortably inside the server's
    // 30 s drain budget even in a debug build.
    let job = {
        let addr = addr.clone();
        thread::spawn(move || {
            client::request(
                &addr,
                "POST",
                "/v1/simulate",
                Some(r#"{"dfg":"ewf","trials":25000,"p":[0.9,0.5],"seed":3}"#),
                TIMEOUT,
            )
        })
    };

    // Wait until the job is being processed: healthz reports itself plus
    // the simulation as in-flight. Bounded — if the job somehow finishes
    // first, the drain assertions below still hold.
    for _ in 0..100 {
        match client::request(&addr, "GET", "/healthz", None, Duration::from_secs(2)) {
            Ok(r) if r.body.contains("\"inflight\":2") => break,
            _ => thread::sleep(Duration::from_millis(20)),
        }
    }

    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success());

    let status = child.wait().expect("wait for server");
    assert!(status.success(), "server exited non-zero: {status:?}");
    let drained = job.join().expect("client thread").expect("job response");
    assert_eq!(
        drained.status, 200,
        "in-flight job was dropped: {}",
        drained.body
    );
    assert!(drained.body.contains("\"lt_dist\""), "{}", drained.body);
}
