//! # tauhls — distributed synchronous control units for telescopic datapaths
//!
//! Umbrella crate of the `tauhls` workspace, a from-scratch Rust
//! reproduction of *"Distributed Synchronous Control Units for Dataflow
//! Graphs under Allocation of Telescopic Arithmetic Units"* (DATE 2003).
//!
//! Re-exports every subsystem under a stable module path:
//!
//! * [`logic`] — two-level boolean minimization and the gate-area model;
//! * [`dfg`] — dataflow graphs, TAUBM transformation, benchmark suite;
//! * [`datapath`] — bit-level arithmetic with telescopic completion;
//! * [`sched`] — list scheduling, clique covers, binding, schedule arcs;
//! * [`fsm`] — Algorithm 1 controllers, TAUBM/CENT styles, synthesis;
//! * [`sim`] — cycle-accurate simulation and latency statistics;
//! * [`core`] — the end-to-end [`Synthesis`] pipeline and the paper's
//!   experiment drivers;
//! * [`serve`] — the concurrent HTTP simulation service with
//!   content-addressed result caching.
//!
//! # Examples
//!
//! ```
//! use tauhls::{Synthesis, Allocation};
//! use tauhls::dfg::benchmarks::fir5;
//!
//! let design = Synthesis::new(fir5())
//!     .allocation(Allocation::paper(2, 1, 0))
//!     .run()?;
//! assert_eq!(design.distributed().controllers().len(), 3);
//! # Ok::<(), tauhls::core::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tauhls_core as core;
pub use tauhls_datapath as datapath;
pub use tauhls_dfg as dfg;
pub use tauhls_fsm as fsm;
pub use tauhls_logic as logic;
pub use tauhls_sched as sched;
pub use tauhls_serve as serve;
pub use tauhls_sim as sim;

pub use tauhls_core::{Design, Synthesis, SynthesisError, Timing};
pub use tauhls_sched::Allocation;
