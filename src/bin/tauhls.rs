//! `tauhls` — command-line front end for the telescopic-controller
//! synthesis pipeline.
//!
//! ```text
//! tauhls synth      <file> [options]       staged pipeline: controllers + area table
//!                                          (--json: artifact-hash chain + timings)
//! tauhls simulate   <file> [options]       latency: distributed vs centralized styles
//! tauhls table2     [options]              paper Table 2 (LT_TAU/LT_DIST/LT_CENT)
//! tauhls resilience <file> [options]       fault-injection sweep (JSON report)
//! tauhls report     <file> [options]       whole-system area breakdown
//! tauhls verilog    <file> [options]       emit the control unit as Verilog
//! tauhls dot        <file> [options]       emit the bound DFG as Graphviz DOT
//! tauhls explore    <file> [explore opts]  latency/area Pareto design-space sweep
//! tauhls dfg        <verb> <file>          wire-format tooling:
//!                                          validate (summary + content hash)
//!                                          dot (Graphviz) | convert (wire <-> text)
//! tauhls serve      [serve options]        run the HTTP simulation service
//! tauhls call       <endpoint> [spec.json] query a running service
//! tauhls jobs       <verb> ...             async jobs against a service:
//!                                          submit <endpoint> [spec.json]
//!                                          status|result|cancel <job-id>
//! tauhls cluster    status                 a coordinator's worker table and
//!                                          partition counters
//!
//! Every <file> accepts both DFG formats: the classic `.dfg` text and
//! the JSON wire format (`{"nodes":[...],"edges":[...],...}`) — the
//! loader sniffs a leading `{`.
//!
//! options:
//!   --muls N --adds N --subs N   allocation (default 2/1/1; × telescopic)
//!   --binding left-edge|chains   binding strategy (default left-edge)
//!   --encoding binary|gray|onehot  state encoding (default binary)
//!   --p LIST                     comma-separated P sweep (default 0.9,0.7,0.5)
//!   --trials N                   Monte-Carlo trials (default 2000)
//!   --seed N                     RNG seed (default 2003)
//!   --threads N                  simulation worker threads (default: all
//!                                cores; results identical for any N)
//!   --skew N --sync-latency N    elastic (GALS) clocking spec for the
//!                                LT_ELAS leg and the resilience elastic
//!                                columns (defaults 1/1; 0/0 bisimulates
//!                                the distributed style)
//!   --styles LIST                resilience only: comma-separated styles
//!                                to sweep (dist,cent,elastic; must
//!                                include dist; default all three)
//!   --json                       synth only: emit the artifact-hash chain
//!                                and per-stage wall times as JSON
//!
//! explore options (the same knobs as `POST /v1/explore`):
//!   --max-muls N --max-adds N --max-subs N   allocation maxima (default 4/2/2)
//!   --encodings LIST             comma-separated encodings (default binary)
//!   --p LIST                     completion probabilities (default 0.9,0.7,0.5)
//!   --sd-ld LIST                 short/long clock ratios in [0.5,1] (default 0.75)
//!   --skew LIST                  elastic skew bounds to sweep (default 0;
//!                                0 = synchronous distributed control)
//!   --trials N --width N --seed N --threads N  as above (defaults 400/16/2003)
//!
//! serve options:
//!   --addr HOST:PORT             listen address (default 127.0.0.1:7203)
//!   --workers N                  job worker threads (default 4)
//!   --queue N                    job queue capacity (default 64)
//!   --cache-mb N                 response cache budget in MiB (default 32)
//!   --stage-cache N              synthesis stage-cache entries (default
//!                                1024; 0 disables)
//!   --threads N                  simulation threads per job (default: all)
//!   --data-dir PATH              durable job store (journal + artifacts;
//!                                replayed on restart; default: memory only)
//!   --job-workers N              async-job worker threads (default 2)
//!   --job-queue N                async-job queue capacity (default 256)
//!   --max-attempts N             attempts per async job (default 3)
//!   --backoff-ms N               retry backoff base in ms (default 250)
//!   --rate R --burst B           per-client admission token bucket
//!                                (default 20/s, burst 40)
//!   --max-pending N              per-client pending-job quota (default 64)
//!
//! call: endpoint is simulate|table2|resilience|synth|area|explore|
//! status|healthz|metrics; the optional spec.json is POSTed as the job
//! spec (status/healthz/metrics are GETs). --addr as above.
//!
//! jobs: submit POSTs `/v1/jobs` (options: --client NAME, --priority 0..9,
//! --wait to poll until the job is terminal and print its result);
//! status/result/cancel address `/v1/jobs/<id>`. --addr as above.
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;
use tauhls::core::jobspec::{Endpoint, JobSpec};
use tauhls::core::resilience::{resilience_sweep_with, ResilienceOptions};
use tauhls::core::stages::{self, BindStrategy, PipelineTrace, SynthesisInput};
use tauhls::dfg::{canonical_wire, dfg_to_text, parse_dfg, parse_wire_dfg, wire_hash, Dfg};
use tauhls::fsm::{control_unit_to_verilog, DistributedControlUnit, Encoding};
use tauhls::logic::AreaModel;
use tauhls::sched::BoundDfg;
use tauhls::serve::{client, signal, ServeConfig, Server};
use tauhls::sim::{latency_quad_batch, BatchRunner, ControlStyleSet, ElasticSpec};
use tauhls::Allocation;
use tauhls_json::{Json, ToJson};

struct Options {
    muls: usize,
    adds: usize,
    subs: usize,
    chains: bool,
    encoding: Encoding,
    p_values: Vec<f64>,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
    json: bool,
    elastic: ElasticSpec,
    styles: ControlStyleSet,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            muls: 2,
            adds: 1,
            subs: 1,
            chains: false,
            encoding: Encoding::Binary,
            p_values: vec![0.9, 0.7, 0.5],
            trials: 2000,
            seed: 2003,
            threads: None,
            json: false,
            elastic: ElasticSpec::default(),
            styles: ControlStyleSet::DIST | ControlStyleSet::CENT | ControlStyleSet::ELASTIC,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tauhls <synth|simulate|resilience|report|verilog|dot> <file> \
         [--muls N] [--adds N] [--subs N] [--binding left-edge|chains] \
         [--encoding binary|gray|onehot] [--p 0.9,0.5] [--trials N] [--seed N] \
         [--threads N] [--skew N] [--sync-latency N] [--styles dist,cent,elastic] \
         [--json]\n       tauhls table2 [--trials N] [--seed N] [--threads N]\
         \n       tauhls explore <file> [--max-muls N] [--max-adds N] [--max-subs N] \
         [--encodings binary,gray] [--p 0.9,0.5] [--sd-ld 0.75,1.0] [--skew 0,2] \
         [--trials N] [--width N] [--seed N] [--threads N]\
         \n       tauhls dfg <validate|dot|convert> <file>\
         \n       tauhls serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--cache-mb N] [--stage-cache N] [--threads N] [--data-dir PATH] \
         [--job-workers N] [--job-queue N] [--max-attempts N] [--backoff-ms N] \
         [--rate R] [--burst B] [--max-pending N] \
         [--coordinator] [--workers-file PEERS.json] [--worker-of HOST:PORT] \
         [--heartbeat-ms N] [--partition-timeout-ms N] [--cluster-attempts N] \
         [--cluster-partitions N]\
         \n       tauhls call <simulate|table2|resilience|synth|area|explore|status|\
healthz|metrics> [spec.json] [--addr HOST:PORT]\
         \n       tauhls jobs submit <endpoint> [spec.json] [--addr HOST:PORT] \
         [--client NAME] [--priority 0..9] [--wait]\
         \n       tauhls jobs <status|result|cancel> <job-id> [--addr HOST:PORT]\
         \n       tauhls cluster status [--addr HOST:PORT]\
         \n\nDFG files may be classic `.dfg` text or the JSON wire format."
    );
    ExitCode::from(2)
}

/// Parses a DFG from either on-disk format: a leading `{` selects the
/// JSON wire format, anything else the classic `.dfg` text. Wire errors
/// carry their byte offset, exactly as the service's `400` bodies do.
fn parse_dfg_any(text: &str) -> Result<Dfg, String> {
    if text.trim_start().starts_with('{') {
        parse_wire_dfg(text).map_err(|e| e.to_string())
    } else {
        parse_dfg(text).map_err(|e| e.to_string())
    }
}

fn load_dfg(path: &str) -> Result<Dfg, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_dfg_any(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--muls" => o.muls = value()?.parse().map_err(|e| format!("--muls: {e}"))?,
            "--adds" => o.adds = value()?.parse().map_err(|e| format!("--adds: {e}"))?,
            "--subs" => o.subs = value()?.parse().map_err(|e| format!("--subs: {e}"))?,
            "--binding" => {
                o.chains = match value()?.as_str() {
                    "chains" => true,
                    "left-edge" => false,
                    other => return Err(format!("unknown binding {other}")),
                }
            }
            "--encoding" => {
                o.encoding = match value()?.as_str() {
                    "binary" => Encoding::Binary,
                    "gray" => Encoding::Gray,
                    "onehot" => Encoding::OneHot,
                    other => return Err(format!("unknown encoding {other}")),
                }
            }
            "--p" => {
                o.p_values = value()?
                    .split(',')
                    .map(|t| t.parse::<f64>().map_err(|e| format!("--p: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--trials" => o.trials = value()?.parse().map_err(|e| format!("--trials: {e}"))?,
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                o.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--json" => o.json = true,
            "--skew" => {
                o.elastic.skew_bound = value()?.parse().map_err(|e| format!("--skew: {e}"))?
            }
            "--sync-latency" => {
                o.elastic.sync_latency = value()?
                    .parse()
                    .map_err(|e| format!("--sync-latency: {e}"))?
            }
            "--styles" => {
                let set = ControlStyleSet::parse(value()?).map_err(|e| format!("--styles: {e}"))?;
                if set.contains(ControlStyleSet::TAU) {
                    return Err("--styles supports dist, cent, and elastic".to_string());
                }
                if !set.contains(ControlStyleSet::DIST) {
                    return Err("--styles must include 'dist' (the engine under test)".to_string());
                }
                o.styles = set;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

/// One `--threads` mapping for every subcommand (and, via
/// [`BatchRunner::sized`], the `serve` worker pool too).
fn runner_for(threads: Option<usize>) -> BatchRunner {
    BatchRunner::sized(threads)
}

fn bind(path: &str, o: &Options) -> Result<BoundDfg, String> {
    let dfg = load_dfg(path)?;
    let alloc = Allocation::paper(o.muls, o.adds, o.subs);
    if !alloc.covers(&dfg) {
        return Err("allocation lacks a unit for a used operation class".to_string());
    }
    Ok(if o.chains {
        BoundDfg::bind_chains(&dfg, &alloc)
    } else {
        BoundDfg::bind(&dfg, &alloc)
    })
}

/// `tauhls synth`: the full staged pipeline, from parsed DFG to gate-level
/// controllers, with the artifact-hash chain and per-stage wall times.
fn cmd_synth(path: &str, o: &Options) -> Result<(), String> {
    let dfg = load_dfg(path)?;
    let input = SynthesisInput {
        dfg,
        allocation: Allocation::paper(o.muls, o.adds, o.subs),
        strategy: if o.chains {
            BindStrategy::Chains
        } else {
            BindStrategy::LeftEdge
        },
    };
    let mut trace = PipelineTrace::default();
    let (logic, _reports) = stages::run_full(
        &input,
        false,
        o.encoding,
        &AreaModel::default(),
        None,
        &mut trace,
    )
    .map_err(|e| e.to_string())?;
    let bound = logic.controls().design().bound();
    let units = bound.allocation().units();
    if o.json {
        let stage_rows: Vec<Json> = trace
            .records
            .iter()
            .map(|r| {
                Json::object([
                    ("stage", Json::from(r.stage)),
                    (
                        "input_hash",
                        Json::from(format!("{:016x}", r.input_hash).as_str()),
                    ),
                    (
                        "output_hash",
                        Json::from(format!("{:016x}", r.output_hash).as_str()),
                    ),
                    ("wall_us", Json::from(r.wall.as_micros() as u64)),
                ])
            })
            .collect();
        let controllers: Vec<Json> = logic
            .controllers()
            .iter()
            .map(|(u, syn)| {
                Json::object([
                    ("unit", Json::from(units[u.0].display_name().as_str())),
                    ("states", Json::from(syn.num_states())),
                    ("flip_flops", Json::from(syn.flip_flops())),
                    ("area", Json::Float(syn.area().total())),
                ])
            })
            .collect();
        let body = Json::object([
            ("dfg", Json::from(bound.dfg().name())),
            (
                "binding",
                Json::from(if o.chains { "chains" } else { "left-edge" }),
            ),
            (
                "encoding",
                Json::from(format!("{:?}", o.encoding).to_lowercase().as_str()),
            ),
            ("stages", Json::array(stage_rows)),
            ("controllers", Json::array(controllers)),
        ]);
        println!("{}", body.to_pretty());
        return Ok(());
    }
    println!(
        "DFG '{}': {} ops, {} schedule arcs inserted",
        bound.dfg().name(),
        bound.dfg().num_ops(),
        bound.schedule_arcs().len()
    );
    let mut total = 0.0;
    println!(
        "{:<10} {:<24} {:>7} {:>5} {:>14}",
        "unit", "sequence", "states", "FFs", "area (GE)"
    );
    for (u, syn) in logic.controllers() {
        total += syn.area().total();
        println!(
            "{:<10} {:<24} {:>7} {:>5} {:>14.0}",
            units[u.0].display_name(),
            format!("{:?}", bound.sequence(*u)),
            syn.num_states(),
            syn.flip_flops(),
            syn.area().total()
        );
    }
    println!(
        "total control area: {total:.0} GE ({:?} encoding)",
        o.encoding
    );
    println!("{:<14} {:>16}  {:>9}", "stage", "artifact hash", "wall");
    for r in &trace.records {
        println!(
            "{:<14} {:016x}  {:>6} us",
            r.stage,
            r.output_hash,
            r.wall.as_micros()
        );
    }
    Ok(())
}

fn cmd_simulate(bound: &BoundDfg, o: &Options) {
    let runner = runner_for(o.threads);
    let (sync, dist, cent, elas) = latency_quad_batch(
        bound,
        &o.p_values,
        o.trials as u64,
        o.seed,
        o.elastic,
        &runner,
    )
    .expect("fault-free simulation");
    let clk = 15.0;
    println!(
        "clock 15 ns, {} coupled trials at P = {:?}",
        o.trials, o.p_values
    );
    println!("LT_TAU  (synchronized) : {}", sync.to_ns_string(clk));
    println!("LT_DIST (distributed)  : {}", dist.to_ns_string(clk));
    println!("LT_CENT (centralized)  : {}", cent.to_ns_string(clk));
    println!(
        "LT_ELAS (elastic s={},l={}) : {}",
        o.elastic.skew_bound,
        o.elastic.sync_latency,
        elas.to_ns_string(clk)
    );
    for (p, (s, d)) in o
        .p_values
        .iter()
        .zip(sync.average_cycles.iter().zip(&dist.average_cycles))
    {
        println!("  P = {p}: {:+.1}% enhancement", (s - d) / s * 100.0);
    }
}

fn cmd_resilience(bound: &BoundDfg, o: &Options) -> Result<(), String> {
    if o.trials == 0 {
        return Err("resilience sweep needs --trials >= 1".to_string());
    }
    let p = *o
        .p_values
        .first()
        .ok_or("resilience sweep needs a --p value")?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--p {p} is not a probability"));
    }
    let runner = runner_for(o.threads);
    let opts = ResilienceOptions {
        styles: o.styles,
        elastic: o.elastic,
    };
    let report = resilience_sweep_with(bound, p, o.trials as u64, o.seed, &opts, &runner);
    print!("{}", report.to_json().to_pretty());
    Ok(())
}

/// `tauhls explore`: the Pareto design-space sweep, locally. The flags
/// assemble the exact `POST /v1/explore` job spec, so the printed body
/// is byte-identical to what the service would answer for the same
/// graph and knobs.
fn cmd_explore(path: &str, args: &[String]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut pairs: Vec<(&str, Json)> = Vec::new();
    if text.trim_start().starts_with('{') {
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        pairs.push(("dfg", doc));
    } else {
        pairs.push(("dfg_text", Json::from(text.as_str())));
    }
    let mut threads = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        let uint = |key: &'static str, v: &str| -> Result<(&'static str, Json), String> {
            let n: u64 = v.parse().map_err(|e| format!("{flag}: {e}"))?;
            Ok((key, Json::from(n)))
        };
        let floats = |key: &'static str, v: &str| -> Result<(&'static str, Json), String> {
            let vals = v
                .split(',')
                .map(|t| t.parse::<f64>().map_err(|e| format!("{flag}: {e}")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((
                key,
                Json::Array(vals.into_iter().map(Json::Float).collect()),
            ))
        };
        match flag.as_str() {
            "--max-muls" => pairs.push(uint("max_muls", value()?)?),
            "--max-adds" => pairs.push(uint("max_adds", value()?)?),
            "--max-subs" => pairs.push(uint("max_subs", value()?)?),
            "--trials" => pairs.push(uint("trials", value()?)?),
            "--width" => pairs.push(uint("width", value()?)?),
            "--seed" => pairs.push(uint("seed", value()?)?),
            "--p" => pairs.push(floats("p", value()?)?),
            "--sd-ld" => pairs.push(floats("sd_ld", value()?)?),
            "--skew" => {
                let vals = value()?
                    .split(',')
                    .map(|t| t.parse::<u64>().map_err(|e| format!("--skew: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                pairs.push((
                    "skew",
                    Json::Array(vals.into_iter().map(Json::from).collect()),
                ));
            }
            "--encodings" => pairs.push((
                "encodings",
                Json::Array(value()?.split(',').map(Json::from).collect()),
            )),
            "--threads" => threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?),
            other => return Err(format!("unknown explore option {other}")),
        }
    }
    let spec =
        JobSpec::from_json(Endpoint::Explore, &Json::object(pairs)).map_err(|e| e.to_string())?;
    let runner = runner_for(threads);
    let (body, _records) = spec.run_with(&runner, None).map_err(|e| e.to_string())?;
    println!("{}", body.to_pretty());
    Ok(())
}

/// `tauhls dfg`: wire-format tooling. `validate` answers the same
/// summary (and the same byte-offset diagnostics) as
/// `POST /v1/dfg/validate`; `dot` renders Graphviz; `convert` flips a
/// document between the wire format and the classic text format.
fn cmd_dfg(args: &[String]) -> Result<(), String> {
    let (Some(verb), Some(path)) = (args.first(), args.get(1)) else {
        return Err("dfg needs a verb (validate|dot|convert) and a file".to_string());
    };
    if args.len() > 2 {
        return Err(format!("too many arguments to dfg {verb}"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match verb.as_str() {
        "validate" => {
            let dfg = parse_dfg_any(&text).map_err(|e| format!("{path}: {e}"))?;
            let canonical = canonical_wire(&dfg);
            let body = Json::object([
                ("ok", Json::from(true)),
                ("name", Json::from(dfg.name())),
                ("ops", Json::from(dfg.num_ops())),
                ("inputs", Json::from(dfg.input_names().len())),
                ("outputs", Json::from(dfg.outputs().len())),
                (
                    "hash",
                    Json::from(format!("{:016x}", wire_hash(&canonical)).as_str()),
                ),
            ]);
            println!("{}", body.to_pretty());
        }
        "dot" => {
            let dfg = parse_dfg_any(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", tauhls::dfg::to_dot(&dfg, &[]));
        }
        "convert" => {
            let dfg = parse_dfg_any(&text).map_err(|e| format!("{path}: {e}"))?;
            if text.trim_start().starts_with('{') {
                print!("{}", dfg_to_text(&dfg));
            } else {
                println!("{canonical}", canonical = canonical_wire(&dfg));
            }
        }
        other => return Err(format!("unknown dfg verb '{other}' (validate|dot|convert)")),
    }
    Ok(())
}

/// Parses `tauhls serve` flags onto a [`ServeConfig`].
fn parse_serve_options(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--addr" => config.addr = value()?.clone(),
            "--workers" => {
                config.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                config.queue_capacity = value()?.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--cache-mb" => {
                let mb: usize = value()?.parse().map_err(|e| format!("--cache-mb: {e}"))?;
                config.cache_bytes = mb * 1024 * 1024;
            }
            "--stage-cache" => {
                config.stage_cache_entries = value()?
                    .parse()
                    .map_err(|e| format!("--stage-cache: {e}"))?
            }
            "--threads" => {
                config.sim_threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--data-dir" => config.data_dir = Some(std::path::PathBuf::from(value()?)),
            "--job-workers" => {
                config.job_workers = value()?
                    .parse()
                    .map_err(|e| format!("--job-workers: {e}"))?
            }
            "--job-queue" => {
                config.job_queue_capacity =
                    value()?.parse().map_err(|e| format!("--job-queue: {e}"))?
            }
            "--max-attempts" => {
                config.job_max_attempts = value()?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?
            }
            "--backoff-ms" => {
                let ms: u64 = value()?.parse().map_err(|e| format!("--backoff-ms: {e}"))?;
                config.job_backoff_base = Duration::from_millis(ms);
            }
            "--rate" => {
                config.admission_rate = value()?.parse().map_err(|e| format!("--rate: {e}"))?
            }
            "--burst" => {
                config.admission_burst = value()?.parse().map_err(|e| format!("--burst: {e}"))?
            }
            "--max-pending" => {
                config.max_pending_per_client = value()?
                    .parse()
                    .map_err(|e| format!("--max-pending: {e}"))?
            }
            "--coordinator" => config.coordinator = true,
            "--workers-file" => {
                config.workers_file = Some(std::path::PathBuf::from(value()?));
            }
            "--worker-of" => config.worker_of = Some(value()?.clone()),
            "--heartbeat-ms" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?;
                config.heartbeat_interval = Duration::from_millis(ms);
            }
            "--partition-timeout-ms" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--partition-timeout-ms: {e}"))?;
                config.partition_timeout = Duration::from_millis(ms);
            }
            "--cluster-attempts" => {
                config.cluster_max_attempts = value()?
                    .parse()
                    .map_err(|e| format!("--cluster-attempts: {e}"))?
            }
            "--cluster-partitions" => {
                config.cluster_partitions = value()?
                    .parse()
                    .map_err(|e| format!("--cluster-partitions: {e}"))?
            }
            other => return Err(format!("unknown serve option {other}")),
        }
    }
    Ok(config)
}

/// `tauhls serve`: run the service until SIGTERM/ctrl-c, then drain.
fn cmd_serve(args: &[String]) -> ExitCode {
    let config = match parse_serve_options(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    signal::install_handlers();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts (and the integration tests) read the resolved address off
    // this line, so flush it out before blocking.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested: draining in-flight jobs");
    server.shutdown();
    ExitCode::SUCCESS
}

/// `tauhls cluster status`: the cluster section of a running server's
/// `/v1/status` — role, workers with health and heartbeat age, and the
/// partition lifecycle counters.
fn cmd_cluster(args: &[String]) -> ExitCode {
    let mut addr = ServeConfig::default().addr;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("error: missing value for --addr");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown cluster option {flag}");
                return ExitCode::FAILURE;
            }
            _ => positional.push(arg),
        }
    }
    if positional.len() != 1 || positional[0].as_str() != "status" {
        eprintln!("error: cluster needs the verb 'status'");
        return ExitCode::FAILURE;
    }
    match client::request(&addr, "GET", "/v1/status", None, Duration::from_secs(30)) {
        Ok(response) if response.status == 200 => {
            let section = Json::parse(&response.body).ok().and_then(|doc| {
                doc.as_object()?
                    .iter()
                    .find(|(k, _)| k == "cluster")
                    .map(|(_, v)| v.to_pretty())
            });
            match section {
                Some(body) => {
                    print!("{body}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("error: status body carries no cluster section");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(response) => {
            eprintln!(
                "error: HTTP {} from /v1/status: {}",
                response.status,
                response.body.trim()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tauhls call`: one request against a running service.
fn cmd_call(args: &[String]) -> ExitCode {
    let mut addr = ServeConfig::default().addr;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("error: missing value for --addr");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown call option {flag}");
                return ExitCode::FAILURE;
            }
            _ => positional.push(arg),
        }
    }
    let (Some(endpoint), spec_path) = (positional.first(), positional.get(1)) else {
        eprintln!(
            "error: call needs an endpoint \
             (simulate|table2|resilience|synth|area|explore|status|healthz|metrics)"
        );
        return ExitCode::FAILURE;
    };
    if positional.len() > 2 {
        eprintln!("error: too many arguments to call");
        return ExitCode::FAILURE;
    }
    let (method, path) = match endpoint.as_str() {
        "healthz" => ("GET", "/healthz".to_string()),
        "metrics" => ("GET", "/metrics".to_string()),
        "status" => ("GET", "/v1/status".to_string()),
        name if Endpoint::parse(name).is_some() => ("POST", format!("/v1/{name}")),
        other => {
            eprintln!(
                "error: unknown endpoint '{other}' \
                 (simulate|table2|resilience|synth|area|explore|status|healthz|metrics)"
            );
            return ExitCode::FAILURE;
        }
    };
    let body = match spec_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => "{}".to_string(),
    };
    let payload = (method == "POST").then_some(body.as_str());
    match client::request(&addr, method, &path, payload, Duration::from_secs(600)) {
        Ok(response) if response.status == 200 => {
            print!("{}", response.body);
            ExitCode::SUCCESS
        }
        Ok(response) => {
            eprintln!(
                "error: HTTP {} from {path}: {}",
                response.status,
                response.body.trim()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tauhls jobs`: submit to and poll the async job endpoints.
fn cmd_jobs(args: &[String]) -> ExitCode {
    let mut addr = ServeConfig::default().addr;
    let mut client_name: Option<String> = None;
    let mut priority: Option<String> = None;
    let mut wait = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => Ok(v.clone()),
            None => Err(format!("missing value for {flag}")),
        };
        let parsed = match arg.as_str() {
            "--addr" => value("--addr").map(|v| addr = v),
            "--client" => value("--client").map(|v| client_name = Some(v)),
            "--priority" => value("--priority").map(|v| priority = Some(v)),
            "--wait" => {
                wait = true;
                Ok(())
            }
            flag if flag.starts_with("--") => Err(format!("unknown jobs option {flag}")),
            _ => {
                positional.push(arg);
                Ok(())
            }
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(verb) = positional.first() else {
        eprintln!("error: jobs needs a verb (submit|status|result|cancel)");
        return ExitCode::FAILURE;
    };
    let timeout = Duration::from_secs(600);
    match verb.as_str() {
        "submit" => {
            let Some(endpoint) = positional.get(1) else {
                eprintln!(
                    "error: jobs submit needs an endpoint \
                     (simulate|table2|resilience|synth|area|explore)"
                );
                return ExitCode::FAILURE;
            };
            if Endpoint::parse(endpoint).is_none() {
                eprintln!("error: unknown endpoint '{endpoint}'");
                return ExitCode::FAILURE;
            }
            if positional.len() > 3 {
                eprintln!("error: too many arguments to jobs submit");
                return ExitCode::FAILURE;
            }
            let spec = match positional.get(2) {
                Some(p) => match std::fs::read_to_string(p) {
                    Ok(text) => match Json::parse(&text) {
                        Ok(_) => text,
                        Err(e) => {
                            eprintln!("error: {p}: invalid JSON: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    Err(e) => {
                        eprintln!("error: {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => "{}".to_string(),
            };
            let body = format!("{{\"endpoint\":\"{endpoint}\",\"spec\":{spec}}}");
            let mut headers: Vec<(&str, &str)> = Vec::new();
            if let Some(name) = client_name.as_deref() {
                headers.push(("X-Client", name));
            }
            if let Some(p) = priority.as_deref() {
                headers.push(("X-Priority", p));
            }
            let response = match client::request_with(
                &addr,
                "POST",
                "/v1/jobs",
                &headers,
                Some(&body),
                timeout,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if response.status != 200 && response.status != 202 {
                eprintln!(
                    "error: HTTP {} from /v1/jobs: {}",
                    response.status,
                    response.body.trim()
                );
                return ExitCode::FAILURE;
            }
            let id = Json::parse(&response.body)
                .ok()
                .and_then(|j| j.get("job").and_then(|v| v.as_str().map(String::from)));
            let Some(id) = id else {
                eprintln!("error: submit response has no job id: {}", response.body);
                return ExitCode::FAILURE;
            };
            if !wait {
                print!("{}", response.body);
                return ExitCode::SUCCESS;
            }
            jobs_wait_and_print(&addr, &id, timeout)
        }
        "status" | "result" | "cancel" => {
            let Some(id) = positional.get(1) else {
                eprintln!("error: jobs {verb} needs a job id");
                return ExitCode::FAILURE;
            };
            if positional.len() > 2 {
                eprintln!("error: too many arguments to jobs {verb}");
                return ExitCode::FAILURE;
            }
            let (method, path) = match verb.as_str() {
                "status" => ("GET", format!("/v1/jobs/{id}")),
                "result" => ("GET", format!("/v1/jobs/{id}/result")),
                _ => ("DELETE", format!("/v1/jobs/{id}")),
            };
            match client::request(&addr, method, &path, None, timeout) {
                Ok(r) if r.status == 200 => {
                    print!("{}", r.body);
                    ExitCode::SUCCESS
                }
                Ok(r) => {
                    eprintln!("error: HTTP {} from {path}: {}", r.status, r.body.trim());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("error: unknown jobs verb '{other}' (submit|status|result|cancel)");
            ExitCode::FAILURE
        }
    }
}

/// Polls a job until it reaches a terminal state, then prints its result
/// body (the `--wait` path of `tauhls jobs submit`).
fn jobs_wait_and_print(addr: &str, id: &str, timeout: Duration) -> ExitCode {
    let path = format!("/v1/jobs/{id}");
    loop {
        let response = match client::request(addr, "GET", &path, None, timeout) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if response.status != 200 {
            eprintln!(
                "error: HTTP {} from {path}: {}",
                response.status,
                response.body.trim()
            );
            return ExitCode::FAILURE;
        }
        let state = Json::parse(&response.body)
            .ok()
            .and_then(|j| j.get("state").and_then(|v| v.as_str().map(String::from)))
            .unwrap_or_default();
        match state.as_str() {
            "done" => break,
            "failed" | "cancelled" => {
                eprintln!("error: job {id} ended {state}: {}", response.body.trim());
                return ExitCode::FAILURE;
            }
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
    match client::request(addr, "GET", &format!("{path}/result"), None, timeout) {
        Ok(r) if r.status == 200 => {
            print!("{}", r.body);
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!(
                "error: HTTP {} from {path}/result: {}",
                r.status,
                r.body.trim()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    // The service subcommands parse their own flags.
    if cmd == "serve" {
        return cmd_serve(&args[1..]);
    }
    if cmd == "call" {
        return cmd_call(&args[1..]);
    }
    if cmd == "jobs" {
        return cmd_jobs(&args[1..]);
    }
    if cmd == "cluster" {
        return cmd_cluster(&args[1..]);
    }
    if cmd == "dfg" {
        return match cmd_dfg(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "explore" {
        let Some(path) = args.get(1) else {
            return usage();
        };
        return match cmd_explore(path, &args[2..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // `table2` runs the built-in paper suite and takes no DFG file.
    if cmd == "table2" {
        let options = match parse_options(&args[1..]) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        let runner = runner_for(options.threads);
        let table = match tauhls::core::experiments::table2(options.trials, options.seed, &runner) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{table}");
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.get(1) else {
        return usage();
    };
    let options = match parse_options(&args[2..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    // `synth` routes through the staged pipeline, which does its own
    // binding and validation.
    if cmd == "synth" {
        return match cmd_synth(path, &options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let bound = match bind(path, &options) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "simulate" => cmd_simulate(&bound, &options),
        "resilience" => {
            if let Err(e) = cmd_resilience(&bound, &options) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "verilog" => {
            let cu = DistributedControlUnit::generate(&bound);
            print!(
                "{}",
                control_unit_to_verilog(&cu, options.encoding, &AreaModel::default())
            );
        }
        "report" => {
            // The system report needs a Design; rebuild through the
            // pipeline (same binding strategy as requested).
            let dfg = load_dfg(path).expect("loadable (already parsed)");
            let design = tauhls::Synthesis::new(dfg)
                .allocation(Allocation::paper(options.muls, options.adds, options.subs))
                .run()
                .expect("synthesizable (already bound)");
            print!(
                "{}",
                tauhls::core::report::system_area(
                    &design,
                    options.encoding,
                    &AreaModel::default(),
                    16,
                )
            );
        }
        "dot" => {
            print!(
                "{}",
                tauhls::dfg::to_dot(bound.dfg(), bound.schedule_arcs())
            );
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse_options(&[]).unwrap();
        assert_eq!((o.muls, o.adds, o.subs), (2, 1, 1));
        assert!(!o.chains);
        let o = parse_options(&args(
            "--muls 3 --adds 2 --subs 0 --binding chains --encoding onehot --p 0.8,0.4 --trials 10 --seed 5 --threads 2",
        ))
        .unwrap();
        assert_eq!((o.muls, o.adds, o.subs), (3, 2, 0));
        assert!(o.chains);
        assert_eq!(o.encoding, Encoding::OneHot);
        assert_eq!(o.p_values, vec![0.8, 0.4]);
        assert_eq!(o.trials, 10);
        assert_eq!(o.seed, 5);
        assert_eq!(o.threads, Some(2));
    }

    #[test]
    fn elastic_and_styles_flags_parse_and_reject() {
        let o = parse_options(&[]).unwrap();
        assert_eq!(o.elastic, ElasticSpec::default());
        assert!(o.styles.contains(ControlStyleSet::ELASTIC));
        let o = parse_options(&args("--skew 3 --sync-latency 2 --styles dist,elastic")).unwrap();
        assert_eq!(o.elastic.skew_bound, 3);
        assert_eq!(o.elastic.sync_latency, 2);
        assert!(o.styles.contains(ControlStyleSet::DIST));
        assert!(o.styles.contains(ControlStyleSet::ELASTIC));
        assert!(!o.styles.contains(ControlStyleSet::CENT));
        // The GALS alias resolves to the elastic style.
        let o = parse_options(&args("--styles dist,gals")).unwrap();
        assert!(o.styles.contains(ControlStyleSet::ELASTIC));
        assert!(parse_options(&args("--skew x")).is_err());
        assert!(parse_options(&args("--styles cent,elastic")).is_err());
        assert!(parse_options(&args("--styles tau,dist")).is_err());
        assert!(parse_options(&args("--styles nope")).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_options(&args("--muls")).is_err());
        assert!(parse_options(&args("--muls x")).is_err());
        assert!(parse_options(&args("--binding sideways")).is_err());
        assert!(parse_options(&args("--encoding hex")).is_err());
        assert!(parse_options(&args("--p 0.9,oops")).is_err());
        assert!(parse_options(&args("--wat 1")).is_err());
    }

    #[test]
    fn bind_reports_missing_file_and_bad_alloc() {
        let o = Options::default();
        assert!(bind("/nonexistent/x.dfg", &o).is_err());
    }

    #[test]
    fn serve_options_parse_and_reject() {
        let c = parse_serve_options(&args(
            "--addr 0.0.0.0:9000 --workers 2 --queue 8 --cache-mb 4 --stage-cache 16 --threads 1",
        ))
        .unwrap();
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!((c.workers, c.queue_capacity), (2, 8));
        assert_eq!(c.cache_bytes, 4 * 1024 * 1024);
        assert_eq!(c.stage_cache_entries, 16);
        assert_eq!(c.sim_threads, Some(1));
        assert!(parse_serve_options(&args("--workers")).is_err());
        assert!(parse_serve_options(&args("--cache-mb x")).is_err());
        assert!(parse_serve_options(&args("--stage-cache x")).is_err());
        assert!(parse_serve_options(&args("--wat 1")).is_err());
    }

    #[test]
    fn serve_job_options_parse_and_reject() {
        let c = parse_serve_options(&args(
            "--data-dir /tmp/tauhls-jobs --job-workers 3 --job-queue 32 \
             --max-attempts 5 --backoff-ms 100 --rate 2.5 --burst 10 --max-pending 7",
        ))
        .unwrap();
        assert_eq!(
            c.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/tauhls-jobs"))
        );
        assert_eq!((c.job_workers, c.job_queue_capacity), (3, 32));
        assert_eq!(c.job_max_attempts, 5);
        assert_eq!(c.job_backoff_base, Duration::from_millis(100));
        assert_eq!((c.admission_rate, c.admission_burst), (2.5, 10.0));
        assert_eq!(c.max_pending_per_client, 7);
        // Defaults keep the durable store off.
        assert!(parse_serve_options(&[]).unwrap().data_dir.is_none());
        assert!(parse_serve_options(&args("--data-dir")).is_err());
        assert!(parse_serve_options(&args("--job-workers x")).is_err());
        assert!(parse_serve_options(&args("--max-attempts -1")).is_err());
        assert!(parse_serve_options(&args("--rate fast")).is_err());
    }

    #[test]
    fn serve_cluster_options_parse_and_reject() {
        let c = parse_serve_options(&args(
            "--coordinator --workers-file peers.json --heartbeat-ms 250 \
             --partition-timeout-ms 5000 --cluster-attempts 4 --cluster-partitions 6",
        ))
        .unwrap();
        assert!(c.coordinator);
        assert_eq!(
            c.workers_file.as_deref(),
            Some(std::path::Path::new("peers.json"))
        );
        assert_eq!(c.heartbeat_interval, Duration::from_millis(250));
        assert_eq!(c.partition_timeout, Duration::from_millis(5000));
        assert_eq!(c.cluster_max_attempts, 4);
        assert_eq!(c.cluster_partitions, 6);
        let w = parse_serve_options(&args("--worker-of 127.0.0.1:8080")).unwrap();
        assert_eq!(w.worker_of.as_deref(), Some("127.0.0.1:8080"));
        // Defaults stay single-node.
        let d = parse_serve_options(&[]).unwrap();
        assert!(!d.coordinator && d.workers_file.is_none() && d.worker_of.is_none());
        assert!(parse_serve_options(&args("--worker-of")).is_err());
        assert!(parse_serve_options(&args("--heartbeat-ms soon")).is_err());
        assert!(parse_serve_options(&args("--cluster-partitions x")).is_err());
    }
}
