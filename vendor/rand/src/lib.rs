//! A vendored, dependency-free subset of the `rand` 0.9 API.
//!
//! The tauhls workspace builds in fully offline environments, so instead of
//! the crates.io `rand` it uses this drop-in replacement covering exactly
//! the surface the workspace calls:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator, seeded from
//!   a `u64` through SplitMix64 (the same construction the xoshiro authors
//!   recommend);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`], [`Rng::random_bool`], [`Rng::random_range`].
//!
//! Determinism is a feature here, not an accident: the batch simulation
//! engine (`tauhls_sim::batch`) derives one `StdRng` per Monte-Carlo trial
//! from `(base_seed, job_id, trial_index)` and relies on this crate
//! producing identical streams on every platform and thread. Nothing in
//! this crate reads OS entropy; there is no `from_os_rng`.
//!
//! Integer range sampling uses Lemire's unbiased widening-multiply
//! rejection method, and `f64` generation uses the standard 53-bit
//! mantissa construction, so statistical quality matches what the paper's
//! Monte-Carlo sweeps need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The SplitMix64 finalizer: a strong 64-bit mixing function.
///
/// Used to expand `u64` seeds into full generator states and exposed for
/// seed-derivation schemes that need a cheap, high-quality hash.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 sequence generator (state advances by the golden gamma).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The core random-number interface: a source of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`
/// (the `random::<T>()` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 mantissa bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased uniform draw from `0..span` (`span >= 1`) via Lemire's
/// widening-multiply method with rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Ranges a uniform value can be drawn from (`random_range`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Convenience sampling methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full domain; `[0, 1)` for floats).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic, portable, and fast; seeded from a `u64` through
    /// SplitMix64 per the xoshiro reference implementation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = SplitMix64::new(seed);
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = sm.next_u64();
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-1000..1000);
            assert!((-1000..1000).contains(&v));
            let u = rng.random_range(3..=5usize);
            assert!((3..=5).contains(&u));
            let w: u64 = rng.random_range(0..1u64 << 17);
            assert!(w < 1 << 17);
        }
    }

    #[test]
    fn range_sampling_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "{counts:?}"
            );
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(13);
        // Must not loop forever or panic on the span-overflow path.
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn splitmix_mix_differs_on_close_inputs() {
        let a = splitmix64_mix(1);
        let b = splitmix64_mix(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
    }
}
